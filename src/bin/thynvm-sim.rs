//! `thynvm-sim` — command-line driver for the ThyNVM simulator.
//!
//! Runs any workload × system combination from the paper's evaluation and
//! prints a performance/traffic report, optionally with trace
//! characterization and epoch-length histograms.
//!
//! ```bash
//! thynvm-sim --workload random --system all --accesses 200000
//! thynvm-sim --workload kv-hash --ops 20000 --request-bytes 256
//! thynvm-sim --workload spec:lbm --system thynvm --histograms
//! thynvm-sim --workload sliding --analyze
//! ```

use thynvm::bench::runner::{run_with_caches, SystemKind};
use thynvm::cache::CoreModel;
use thynvm::core::ThyNvm;
use thynvm::types::{MemorySystem, SystemConfig, TraceEvent};
use thynvm::workloads::analysis::TraceStats;
use thynvm::workloads::kv::{btree::BTreeKv, hash::HashKv, rbtree::RbTreeKv, KvConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};
use thynvm::workloads::spec::{profile, SpecWorkload};

const USAGE: &str = "\
thynvm-sim — ThyNVM persistent-memory simulator

USAGE:
    thynvm-sim [OPTIONS]

OPTIONS:
    --workload <W>        random | streaming | sliding | kv-hash | kv-rbtree
                          | kv-btree | spec:<name>  [default: random]
    --system <S>          ideal-dram | ideal-nvm | journal | shadow | thynvm
                          | block-only | page-only | no-overlap | all
                                                 [default: all]
    --accesses <N>        trace length for micro/spec workloads
                                                 [default: 200000]
    --ops <N>             transactions for KV workloads [default: 20000]
    --request-bytes <N>   KV value size            [default: 256]
    --btt <N>             BTT entries              [default: 2048]
    --ptt <N>             PTT entries              [default: 4096]
    --epoch-ms <N>        max epoch length in ms   [default: 10]
    --save-trace <PATH>   save the generated trace (binary .thyt format)
    --load-trace <PATH>   replay a saved trace instead of generating one
    --analyze             print trace characterization before running
    --histograms          print ThyNVM epoch/checkpoint histograms
    --help                this text
";

#[derive(Debug)]
struct Args {
    workload: String,
    system: String,
    accesses: u64,
    ops: u64,
    request_bytes: u32,
    btt: usize,
    ptt: usize,
    epoch_ms: u64,
    analyze: bool,
    histograms: bool,
    save_trace: Option<String>,
    load_trace: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            workload: "random".into(),
            system: "all".into(),
            accesses: 200_000,
            ops: 20_000,
            request_bytes: 256,
            btt: 2048,
            ptt: 4096,
            epoch_ms: 10,
            analyze: false,
            histograms: false,
            save_trace: None,
            load_trace: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--workload" => args.workload = value("--workload")?,
                "--system" => args.system = value("--system")?,
                "--accesses" => {
                    args.accesses =
                        value("--accesses")?.parse().map_err(|e| format!("--accesses: {e}"))?
                }
                "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
                "--request-bytes" => {
                    args.request_bytes = value("--request-bytes")?
                        .parse()
                        .map_err(|e| format!("--request-bytes: {e}"))?
                }
                "--btt" => args.btt = value("--btt")?.parse().map_err(|e| format!("--btt: {e}"))?,
                "--ptt" => args.ptt = value("--ptt")?.parse().map_err(|e| format!("--ptt: {e}"))?,
                "--epoch-ms" => {
                    args.epoch_ms =
                        value("--epoch-ms")?.parse().map_err(|e| format!("--epoch-ms: {e}"))?
                }
                "--save-trace" => args.save_trace = Some(value("--save-trace")?),
                "--load-trace" => args.load_trace = Some(value("--load-trace")?),
                "--analyze" => args.analyze = true,
                "--histograms" => args.histograms = true,
                "--help" | "-h" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(args)
    }
}

/// Builds the workload trace and its transaction count (1 per access for
/// non-KV workloads).
fn build_trace(args: &Args) -> Result<(Vec<TraceEvent>, u64, String), String> {
    let w = args.workload.as_str();
    if let Some(name) = w.strip_prefix("spec:") {
        let p = profile(name).ok_or_else(|| format!("unknown SPEC profile: {name}"))?;
        let events = SpecWorkload::new(p).events(args.accesses).collect();
        return Ok((events, args.accesses, format!("spec:{name}")));
    }
    match w {
        "random" | "streaming" | "sliding" => {
            let pattern = match w {
                "random" => MicroPattern::Random,
                "streaming" => MicroPattern::Streaming,
                _ => MicroPattern::Sliding,
            };
            let events = MicroConfig::new(pattern).events(args.accesses).collect();
            Ok((events, args.accesses, w.to_owned()))
        }
        "kv-hash" => {
            let cfg = KvConfig::new(args.request_bytes);
            let mut store = HashKv::new(16 * 1024);
            cfg.populate(&mut store, args.ops / 4);
            let (events, ops) = cfg.trace(&mut store, args.ops);
            Ok((events, ops, format!("kv-hash ({} B values)", args.request_bytes)))
        }
        "kv-rbtree" => {
            let cfg = KvConfig::new(args.request_bytes);
            let mut store = RbTreeKv::new();
            cfg.populate(&mut store, args.ops / 4);
            let (events, ops) = cfg.trace(&mut store, args.ops);
            Ok((events, ops, format!("kv-rbtree ({} B values)", args.request_bytes)))
        }
        "kv-btree" => {
            let cfg = KvConfig::new(args.request_bytes);
            let mut store = BTreeKv::new();
            cfg.populate(&mut store, args.ops / 4);
            let (events, ops) = cfg.trace(&mut store, args.ops);
            Ok((events, ops, format!("kv-btree ({} B values)", args.request_bytes)))
        }
        other => Err(format!("unknown workload: {other}")),
    }
}

fn systems_for(selector: &str) -> Result<Vec<SystemKind>, String> {
    Ok(match selector {
        "all" => vec![
            SystemKind::IdealDram,
            SystemKind::IdealNvm,
            SystemKind::Journal,
            SystemKind::Shadow,
            SystemKind::ThyNvm,
        ],
        "ideal-dram" => vec![SystemKind::IdealDram],
        "ideal-nvm" => vec![SystemKind::IdealNvm],
        "journal" => vec![SystemKind::Journal],
        "shadow" => vec![SystemKind::Shadow],
        "thynvm" => vec![SystemKind::ThyNvm],
        "block-only" => vec![SystemKind::ThyNvmBlockOnly],
        "page-only" => vec![SystemKind::ThyNvmPageOnly],
        "no-overlap" => vec![SystemKind::ThyNvmNoOverlap],
        other => return Err(format!("unknown system: {other}")),
    })
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut cfg = SystemConfig::paper();
    cfg.thynvm.btt_entries = args.btt;
    cfg.thynvm.ptt_entries = args.ptt;
    cfg.thynvm.epoch_max_ms = args.epoch_ms;

    let (events, transactions, label) = if let Some(path) = &args.load_trace {
        match thynvm::workloads::tracefile::load(path) {
            Ok(events) => {
                let n = events.len() as u64;
                (events, n, format!("trace:{path}"))
            }
            Err(e) => {
                eprintln!("error: cannot load trace {path}: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match build_trace(&args) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    };
    if let Some(path) = &args.save_trace {
        match thynvm::workloads::tracefile::save(path, events.iter().copied()) {
            Ok(n) => println!("saved {n} events to {path}"),
            Err(e) => {
                eprintln!("error: cannot save trace {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    println!("workload: {label} — {} events, {} transactions", events.len(), transactions);
    if args.analyze {
        let stats = TraceStats::from_events(events.iter().copied());
        println!("{}", stats.report(&label));
    }
    println!();

    let systems = match systems_for(&args.system) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    println!(
        "{:<12} {:>10} {:>8} {:>11} {:>11} {:>11} {:>8} {:>8}",
        "system", "ms", "IPC", "KTPS", "NVM-wr MB", "DRAM-wr MB", "ckpts", "stall%"
    );
    for kind in systems {
        let res = run_with_caches(kind, cfg, events.iter().copied());
        println!(
            "{:<12} {:>10.3} {:>8.3} {:>11.1} {:>11.2} {:>11.2} {:>8} {:>8.2}",
            res.system,
            res.cycles.as_secs() * 1e3,
            res.ipc(),
            res.throughput_tps(transactions) / 1e3,
            res.mem.nvm_write_bytes_total() as f64 / 1e6,
            res.mem.dram_write_bytes as f64 / 1e6,
            res.mem.epochs_completed,
            res.ckpt_stall_share(),
        );
    }

    if args.histograms {
        let mut sys = ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        core.run_trace(events.iter().copied(), &mut sys);
        let _ = MemorySystem::stats(&sys);
        println!("\nThyNVM epoch execution-phase lengths (cycles):");
        println!("{}", sys.epoch_length_histogram().render(40));
        println!("ThyNVM checkpointing-phase durations (cycles):");
        println!("{}", sys.job_duration_histogram().render(40));
    }
}
