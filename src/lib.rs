//! # ThyNVM — software-transparent crash consistency for persistent memory
//!
//! A full-system reproduction of *ThyNVM: Enabling Software-Transparent
//! Crash Consistency in Persistent Memory Systems* (Ren, Zhao, Khan, Choi,
//! Wu, Mutlu — MICRO-48, 2015), built as a Rust workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`types`] | addresses, cycles, requests, configuration (Table 2), statistics |
//! | [`mem`] | banked DRAM/NVM timing models, write queues, byte-accurate stores |
//! | [`cache`] | L1/L2/L3 writeback hierarchy + in-order core model |
//! | [`core`] | **the contribution**: BTT/PTT dual-scheme checkpointing controller |
//! | [`baselines`] | Ideal DRAM, Ideal NVM, Journaling, Shadow Paging |
//! | [`workloads`] | micro patterns, instrumented KV stores, SPEC-like traces |
//! | [`bench`] | the experiment harness regenerating every paper figure |
//!
//! This facade crate re-exports everything and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! ## Quick start
//!
//! ```
//! use thynvm::core::ThyNvm;
//! use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};
//!
//! // A hybrid DRAM+NVM system with transparent crash consistency.
//! let mut sys = ThyNvm::new(SystemConfig::small_test());
//!
//! // Unmodified "application" code just stores data…
//! sys.store_bytes(PhysAddr::new(0x100), b"hello, persistent world", Cycle::ZERO);
//!
//! // …the hardware checkpoints it on epoch boundaries…
//! let t = sys.force_checkpoint(Cycle::new(10_000));
//! let t = sys.drain(t);
//!
//! // …and a power failure cannot hurt it.
//! let _ = sys.crash_and_recover(t);
//! let mut buf = [0u8; 23];
//! sys.load_bytes(PhysAddr::new(0x100), &mut buf, t);
//! assert_eq!(&buf, b"hello, persistent world");
//! ```

#![warn(missing_docs)]

pub use thynvm_baselines as baselines;
pub use thynvm_bench as bench;
pub use thynvm_cache as cache;
pub use thynvm_core as core;
pub use thynvm_mem as mem;
pub use thynvm_types as types;
pub use thynvm_workloads as workloads;
