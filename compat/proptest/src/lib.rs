//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the property-testing surface its test suites use: the [`proptest!`]
//! macro, [`Strategy`] with [`Strategy::prop_map`], integer-range and
//! [`any`] strategies, [`collection::vec`], [`prop_oneof!`], [`Just`], and
//! the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: each test derives its RNG seed from the test name
//!   and case index, so a failure reproduces on every run and in CI.
//! * **No shrinking**: the failing input is printed verbatim instead.
//!   Shrunk counterexamples from the upstream engine are preserved by
//!   committing them as explicit regression tests (see
//!   `tests/crash_consistency.rs`), which this crate cannot re-derive from
//!   `proptest-regressions` seed hashes.
//! * `.proptest-regressions` files are ignored (their `cc` lines are RNG
//!   seeds of the upstream engine).

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Derives the deterministic per-case generator for `test`/`case`.
    pub fn for_case(test: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw from an empty range");
        self.next_u64() % n
    }
}

/// Error carried by a failing property: the formatted assertion message.
pub type TestCaseError = String;

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test inputs.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a value from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Weighted union of same-valued strategies (the [`prop_oneof!`] backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Self { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop driving each property.

    use super::{Strategy, TestCaseResult, TestRng};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Subset of upstream `ProptestConfig`: the number of cases to run.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Runs `body` against `cases` deterministic samples of `strategy`,
    /// panicking with the offending input on the first failure.
    pub fn run<S: Strategy>(
        name: &str,
        config: &Config,
        strategy: &S,
        body: impl Fn(S::Value) -> TestCaseResult,
    ) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| body(value)));
            let failure = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(msg)) => Some(msg),
                Err(panic) => Some(
                    panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "test panicked".to_string()),
                ),
            };
            if let Some(msg) = failure {
                panic!(
                    "property '{name}' failed at case {case}/{total}:\n  {msg}\n  input: {repr}",
                    total = config.cases,
                );
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

/// Weighted choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::{Strategy, TestRng};
        let s = crate::collection::vec(0u64..100, 1..10);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        use crate::{Strategy, TestRng};
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_positive_arm() {
        use crate::{Strategy, TestRng};
        let s = prop_oneof![1 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::new(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(xs in crate::collection::vec(any::<u8>(), 1..20), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.len(), xs.len());
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "property 'failing' failed")]
    fn failures_report_input() {
        use crate::test_runner::{run, Config};
        run("failing", &Config::with_cases(5), &(0u64..10), |v| {
            prop_assert!(v > 100, "v was {v}");
            Ok(())
        });
    }
}
