//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small benchmarking surface `benches/substrate_criterion.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! wall-clock estimate (warmup + fixed sample count) with no statistical
//! analysis, HTML reports, or CLI filtering.

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints a per-iteration estimate.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{id:<32} {:>12.1?}/iter over {} iters", per_iter, b.iters);
        self
    }
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: a short warmup, then a fixed measured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..1_000 {
            std::hint::black_box(routine());
        }
        const MEASURED: u64 = 20_000;
        let start = Instant::now();
        for _ in 0..MEASURED {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURED;
    }
}

/// Declares a benchmark group function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }
}
