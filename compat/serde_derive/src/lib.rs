//! Stub derive macros for the offline `serde` marker traits.
//!
//! Each derive emits an empty impl of the corresponding marker trait for
//! the annotated type. Only non-generic `struct`/`enum` items are
//! supported — that covers every derive site in this workspace, and the
//! macro fails loudly (rather than mis-expanding) on anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Finds the name of the `struct`/`enum` the derive is attached to,
/// panicking if the item is generic (unsupported by this stub).
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
                ) {
                    tokens.next();
                }
            }
            TokenTree::Ident(kw) if kw.to_string() == "struct" || kw.to_string() == "enum" => {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde stub derive: expected item name, got {other:?}"),
                };
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!(
                        "serde stub derive: generic type `{name}` is not supported; \
                         write the marker impl by hand"
                    );
                }
                return name;
            }
            // `pub`, `pub(crate)`, doc comments, etc. — keep scanning.
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum found in input");
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("stub Serialize impl parses")
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("stub Deserialize impl parses")
}
