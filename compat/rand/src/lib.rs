//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *exact* surface it consumes: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] range/bool
//! helpers, and [`seq::SliceRandom::shuffle`]. The stream differs from
//! upstream `rand`'s `StdRng` (this one is xoshiro256**), which is fine
//! for the workloads: they only require determinism for a fixed seed, not
//! a particular sequence.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a single `u64` (SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256**); stands in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
