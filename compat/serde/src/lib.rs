//! Offline stub of the `serde` crate.
//!
//! The build environment has no crates.io access. The workspace only uses
//! serde as a *marker* — types derive `Serialize`/`Deserialize` so a future
//! exporter can serialize stats/configs, and one test asserts the bounds
//! hold — but nothing actually serializes yet. This stub keeps those
//! derives and bounds compiling: the traits carry no methods, and the
//! derive macros (see `serde_derive`) emit empty impls.
//!
//! When a real serializer is needed, replace the `compat/serde*` path
//! dependencies with the registry crates; no call sites change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
