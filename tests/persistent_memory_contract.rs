//! The `PersistentMemory` contract, checked uniformly against every
//! persistent design in the workspace: ThyNVM, Journaling, and Shadow
//! Paging.
//!
//! All three promise the same thing through different mechanisms: data is
//! durable exactly from the first completed durability point after the
//! store; a power failure never exposes a torn or partial state.

use proptest::prelude::*;
use thynvm::baselines::{Journaling, ShadowPaging};
use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, PersistentMemory, PhysAddr, SystemConfig};

fn each_system(mut f: impl FnMut(&mut dyn PersistentMemory, &'static str)) {
    let cfg = SystemConfig::small_test();
    let mut thynvm = ThyNvm::new(cfg);
    let mut journal = Journaling::new(cfg);
    let mut shadow = ShadowPaging::new(cfg);
    f(&mut thynvm, "ThyNVM");
    f(&mut journal, "Journal");
    f(&mut shadow, "Shadow");
}

#[test]
fn persisted_data_survives_power_failure() {
    each_system(|sys, name| {
        let t = sys.store_bytes(PhysAddr::new(0x100), b"saved", Cycle::ZERO);
        let t = sys.persist(t);
        let t = sys.power_fail(t + Cycle::from_us(1));
        let mut buf = [0u8; 5];
        sys.load_bytes(PhysAddr::new(0x100), &mut buf, t);
        assert_eq!(&buf, b"saved", "{name} lost persisted data");
    });
}

#[test]
fn unpersisted_data_never_survives() {
    each_system(|sys, name| {
        let t = sys.store_bytes(PhysAddr::new(0x200), b"volatile", Cycle::ZERO);
        let t = sys.power_fail(t + Cycle::from_us(1));
        let mut buf = [0xffu8; 8];
        sys.load_bytes(PhysAddr::new(0x200), &mut buf, t);
        assert_eq!(buf, [0u8; 8], "{name} leaked unpersisted data through a crash");
    });
}

#[test]
fn overwrites_after_persist_roll_back() {
    each_system(|sys, name| {
        let t = sys.store_bytes(PhysAddr::new(0), &[1u8; 64], Cycle::ZERO);
        let t = sys.persist(t);
        let t = sys.store_bytes(PhysAddr::new(0), &[2u8; 64], t);
        let t = sys.power_fail(t + Cycle::from_us(1));
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [1u8; 64], "{name} exposed uncommitted overwrite");
    });
}

#[test]
fn atomic_batch_is_never_torn() {
    // The §1 motivating example, on every system: two locations updated
    // together must never be observed half-updated after a crash, no
    // matter how many persists or crashes interleave around them.
    each_system(|sys, name| {
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x2000);
        // Committed consistent state: (1, 1).
        let t = sys.store_bytes(a, &[1], Cycle::ZERO);
        let t = sys.store_bytes(b, &[1], t);
        let t = sys.persist(t);
        // Update both to (2, 2)… then crash without persisting.
        let t = sys.store_bytes(a, &[2], t);
        let t = sys.store_bytes(b, &[2], t);
        let t = sys.power_fail(t + Cycle::from_us(1));
        let mut va = [0u8; 1];
        let mut vb = [0u8; 1];
        sys.load_bytes(a, &mut va, t);
        sys.load_bytes(b, &mut vb, t);
        assert_eq!(
            (va[0], vb[0]),
            (1, 1),
            "{name} exposed a torn state ({}, {})",
            va[0],
            vb[0]
        );
    });
}

#[test]
fn repeated_persist_crash_cycles_are_stable() {
    each_system(|sys, name| {
        let mut t = Cycle::ZERO;
        for round in 1u8..=5 {
            t = sys.store_bytes(PhysAddr::new(64), &[round], t);
            t = sys.persist(t);
            t = sys.power_fail(t + Cycle::from_us(1));
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(64), &mut buf, t);
            assert_eq!(buf[0], round, "{name} diverged at round {round}");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized version of the contract: interleave writes, persists and
    /// crashes; every system must agree with a simple journal-of-committed
    /// model.
    #[test]
    fn all_persistent_systems_satisfy_the_model(
        steps in proptest::collection::vec(
            prop_oneof![
                5 => (0u64..2048, any::<u8>()).prop_map(|(a, v)| (0u8, a, v)),
                2 => Just((1u8, 0, 0)), // persist
                1 => Just((2u8, 0, 0)), // crash
            ],
            1..40,
        )
    ) {
        each_system(|sys, name| {
            use std::collections::HashMap;
            let mut committed: HashMap<u64, u8> = HashMap::new();
            let mut live: HashMap<u64, u8> = HashMap::new();
            let mut t = Cycle::ZERO;
            for &(op, addr, value) in &steps {
                match op {
                    0 => {
                        t = t.max(sys.store_bytes(PhysAddr::new(addr), &[value], t));
                        live.insert(addr, value);
                    }
                    1 => {
                        t = sys.persist(t);
                        committed = live.clone();
                    }
                    _ => {
                        t = sys.power_fail(t + Cycle::from_us(1));
                        live = committed.clone();
                    }
                }
            }
            // Final crash: observable state must equal the committed model.
            t = sys.power_fail(t + Cycle::from_us(1));
            live = committed.clone();
            let _ = &live;
            for (&addr, &want) in &committed {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                assert_eq!(
                    buf[0], want,
                    "{name} at {addr:#x}: got {}, committed model says {want}",
                    buf[0]
                );
            }
        });
    }
}
