//! Integration tests for the richer workloads: the vacation reservation
//! system, the B+ tree store, trace files, and the multi-core platform —
//! all driven end-to-end against real memory systems.

use thynvm::bench::runner::{run_with_caches, SystemKind};
use thynvm::cache::MulticorePlatform;
use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig, TraceEvent};
use thynvm::workloads::analysis::TraceStats;
use thynvm::workloads::kv::{btree::BTreeKv, KvConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};
use thynvm::workloads::tracefile;
use thynvm::workloads::vacation::{Vacation, VacationConfig};

#[test]
fn vacation_runs_on_all_persistent_systems() {
    let mut v = Vacation::new(VacationConfig { relations: 512, ..VacationConfig::default() });
    let (events, txns) = v.trace(1_000);
    assert_eq!(txns, 1_000);
    let cfg = SystemConfig::paper();
    let mut throughputs = Vec::new();
    for kind in [SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm] {
        let res = run_with_caches(kind, cfg, events.iter().copied());
        let tps = res.throughput_tps(txns);
        assert!(tps > 0.0, "{:?} produced no throughput", kind);
        throughputs.push((kind, tps));
    }
    // The §2.1 motivation: ThyNVM must not lose to the software approaches
    // on a transactional composite workload.
    let thynvm = throughputs.iter().find(|(k, _)| *k == SystemKind::ThyNvm).unwrap().1;
    let journal = throughputs.iter().find(|(k, _)| *k == SystemKind::Journal).unwrap().1;
    assert!(thynvm > journal, "ThyNVM {thynvm} !> Journal {journal}");
}

#[test]
fn vacation_trace_characteristics_are_transactional() {
    let mut v = Vacation::new(VacationConfig { relations: 512, ..VacationConfig::default() });
    let (events, _) = v.trace(2_000);
    let stats = TraceStats::from_events(events.iter().copied());
    // Reservation transactions are read-mostly (queries) with bursts of
    // updates across four tables.
    let wf = stats.write_fraction();
    assert!((0.1..0.8).contains(&wf), "write fraction {wf}");
    assert!(stats.unique_pages > 50, "footprint too small: {}", stats.unique_pages);
}

#[test]
fn btree_store_runs_through_thynvm_with_crash() {
    // End-to-end: build a B+ tree workload, replay it functionally through
    // ThyNVM, checkpoint, crash — the trace replays without panics and the
    // system stays recoverable.
    let kv_cfg = KvConfig::new(128);
    let mut store = BTreeKv::new();
    kv_cfg.populate(&mut store, 500);
    let (events, _) = kv_cfg.trace(&mut store, 500);

    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let mut now = Cycle::ZERO;
    for e in events.iter().take(2_000) {
        if e.req.kind.is_write() {
            let data = vec![0x42u8; e.req.bytes as usize];
            now = now.max(sys.store_bytes(e.req.addr, &data, now));
        }
    }
    let t = sys.force_checkpoint(now);
    let t = sys.drain(t);
    let report = sys.crash_and_recover(t);
    assert!(report.recovered_checkpoints >= 1);
}

#[test]
fn trace_files_roundtrip_through_a_simulation() {
    let dir = std::env::temp_dir().join("thynvm-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.thyt");

    let events: Vec<TraceEvent> =
        MicroConfig::new(MicroPattern::Sliding).events(20_000).collect();
    tracefile::save(&path, events.iter().copied()).unwrap();
    let loaded = tracefile::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The reloaded trace must simulate identically.
    let cfg = SystemConfig::paper();
    let a = run_with_caches(SystemKind::ThyNvm, cfg, events);
    let b = run_with_caches(SystemKind::ThyNvm, cfg, loaded);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem, b.mem);
}

#[test]
fn multicore_platform_drives_thynvm_end_to_end() {
    let cfg = SystemConfig::paper();
    let traces: Vec<Vec<TraceEvent>> = (0..2u64)
        .map(|c| {
            MicroConfig::new(MicroPattern::Sliding)
                .events(15_000)
                .map(|mut e| {
                    e.req.addr = PhysAddr::new(e.req.addr.raw() + (c << 30));
                    e
                })
                .collect()
        })
        .collect();
    let mut platform = MulticorePlatform::new(cfg.cache, 2);
    let mut mem = ThyNvm::new(cfg);
    let results = platform.run(traces, &mut mem);
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(r.ipc() > 0.0);
    }
    // The shared controller checkpointed everything: nothing left volatile.
    assert!(!mem.has_uncheckpointed_writes());
    assert!(MemorySystem::stats(&mem).epochs_completed >= 1);
    // Hardware budget respected even with two cores' flushes.
    assert!(mem.btt().peak() <= cfg.thynvm.btt_entries);
}

#[test]
fn multicore_ideal_dram_scales_aggregate_ipc() {
    let cfg = SystemConfig::paper();
    let make_traces = |n: u64| -> Vec<Vec<TraceEvent>> {
        (0..n)
            .map(|c| {
                MicroConfig::new(MicroPattern::Random)
                    .events(20_000 / n)
                    .map(|mut e| {
                        e.req.addr = PhysAddr::new(e.req.addr.raw() + (c << 30));
                        e
                    })
                    .collect()
            })
            .collect()
    };
    let agg = |n: usize| -> f64 {
        let mut platform = MulticorePlatform::new(cfg.cache, n);
        let mut mem = SystemKind::IdealDram.build(cfg);
        platform.run(make_traces(n as u64), mem.as_mut()).iter().map(|r| r.ipc()).sum()
    };
    let one = agg(1);
    let four = agg(4);
    assert!(
        four > one * 1.3,
        "4 cores should beat 1 core in aggregate: {four:.4} vs {one:.4}"
    );
}
