//! Long-horizon endurance soak: the graceful-degradation health ladder
//! under continuous fault streams crossing all four fault domains — NVM
//! media wear, DRAM ECC faults, crash/power-loss, and adversarial tampering
//! — validated against the rung-aware persistence oracle.
//!
//! The ladder's claim: under sustained, compounding faults the controller
//! degrades *monotonically and observably* (Healthy → Wounded → ReadOnly →
//! FailSafe), never loses crash consistency while doing so, and recovers
//! the rung that was durable alongside the image it restores. This suite
//! stress-tests that claim four ways:
//!
//! 1. **Randomized soak**: ≥ 500 seeded trials over a multi-million-cycle
//!    workload whose wear deterministically drains the spare pool, each
//!    crashing at a random cycle with 0–2 stacked crash points. Every
//!    recovered image must match the persistence oracle byte-for-byte and
//!    the post-recovery rung must match the rung the oracle saw persisted
//!    with the restored checkpoint (tamper and fallback overrides
//!    accounted for exactly).
//! 2. **Ladder discipline**: per reference run, promotions climb one rung
//!    at a time (hysteresis) while demotions may skip; per trial the
//!    ledger conserves (`promotions <= demotions`) and every media/DRAM
//!    retry is a RetryPolicy-issued attempt.
//! 3. **Bounded footprint**: after multi-million-cycle trials the
//!    functional stores' page count stays proportional to the touched
//!    working set, never to simulated time.
//! 4. **Disabled twin**: with `HealthConfig.enabled = false` (thresholds
//!    configured but the ladder off) the timeline and visible fingerprint
//!    are bit-identical to a default-config run — the subsystem adds zero
//!    cost when off.
//!
//! Seeds come from `ENDURANCE_SOAK_SEED` (CI runs a small fixed matrix);
//! the default seed keeps local runs deterministic.

use thynvm::core::{MediaFault, PersistenceOracle, TamperFault, ThyNvm};
use thynvm::types::{
    rng, Cycle, DramFaultConfig, Error, HealthConfig, HealthRung, MediaFaultConfig, MemorySystem,
    PhysAddr, SecurityConfig, SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// Read `len` bytes at `addr` (drives CRC retries and DRAM ECC).
    Read { addr: u64, len: usize },
    /// End the epoch (checkpoint start; execution overlaps the job).
    Checkpoint,
    /// Let simulated time pass.
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;
/// Epochs in the endurance workload — enough repeated writes per hot row
/// to cross the wear threshold mid-run, so the media domain degrades the
/// system *during* the soak, not in a warm-up.
const EPOCHS: u64 = 6;
/// Traffic-free cool-down epochs after the stress phase: the wear and ECC
/// bursts slide out of the monitor's window and the promotion streak can
/// build, so the soak exercises *both* directions of the hysteresis.
const QUIET_EPOCHS: u64 = 7;

/// A multi-million-cycle workload touching both schemes (hot PTT pages and
/// scattered BTT blocks), reading its data back every epoch, and ending
/// with uncheckpointed tail writes no recovery may ever surface. With the
/// endurance media config each hot row is written ~12 times — past the
/// stuck-at threshold — so wear, scrubbing, spare-pool drain and the
/// ladder's responses all happen on the clock.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0..EPOCHS {
        for rep in 0..2u64 {
            for page in 0..3u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 40 + page * 11 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        for i in 0..8u64 {
            let block = (i * 13 + epoch * 7) % 64;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 17 + i) as u8,
            });
        }
        // Read the hot pages back: CRC retries on worn rows, ECC checks on
        // DRAM copies.
        for page in 0..3u64 {
            for blk in 0..4u64 {
                ops.push(Op::Read { addr: page * PAGE + blk * 128, len: 64 });
            }
        }
        ops.push(Op::Checkpoint);
        ops.push(Op::Advance { cycles: 600_000 });
    }
    // Cool-down: epochs with no traffic at all. Wounded systems whose
    // firing signals were windowed rates (not standing levels) climb back.
    for _ in 0..QUIET_EPOCHS {
        ops.push(Op::Checkpoint);
        ops.push(Op::Advance { cycles: 600_000 });
    }
    ops.push(Op::Advance { cycles: 2_000_000 });
    for blk in 0..6u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

/// Applies one op, returning the advanced timeline. Rejected stores (the
/// ladder at `ReadOnly` or worse) advance time like served ones but write
/// nothing — `record_ok` reports whether a write landed so the caller can
/// keep the oracle aligned.
fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle, record_ok: &mut bool) -> Cycle {
    *record_ok = true;
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            match sys.try_store_bytes(PhysAddr::new(*addr), &data, now) {
                Ok(done) => now.max(done),
                Err(Error::Degraded { .. }) => {
                    *record_ok = false;
                    now
                }
                Err(e) => panic!("store failed for a non-degradation reason: {e}"),
            }
        }
        Op::Read { addr, len } => {
            let mut buf = vec![0u8; *len];
            now.max(sys.load_bytes(PhysAddr::new(*addr), &mut buf, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint completion times learned from the crash-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    done_at: Cycle,
}

/// Maps a rung onto its ladder level for step arithmetic.
fn level(r: HealthRung) -> u64 {
    match r {
        HealthRung::Healthy => 0,
        HealthRung::Wounded => 1,
        HealthRung::ReadOnly => 2,
        HealthRung::FailSafe => 3,
    }
}

/// Runs the workload crash-free, feeding the oracle: writes that landed,
/// quarantines in op order, checkpoint windows, and — the soak's novelty —
/// the rung each checkpoint's 64 B health record persisted. Also returns
/// the rung trace observed after every op, for the hysteresis checks.
fn reference_run(
    ops: &[Op],
    cfg: SystemConfig,
) -> (PersistenceOracle, Vec<CkptTimes>, Cycle, Vec<HealthRung>, thynvm::types::HealthStats) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut rungs = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        let before = now;
        let mut record_ok = true;
        now = apply(&mut sys, op, now, &mut record_ok);
        if let Op::Write { addr, len, fill } = op {
            if record_ok {
                oracle.record_write(*addr, &vec![*fill; *len]);
            }
        }
        for (base, len) in sys.take_quarantine_events() {
            oracle.record_quarantine(base, len);
        }
        if matches!(op, Op::Checkpoint) {
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => CkptTimes { done_at: j.done_at },
                None => CkptTimes { done_at: now },
            };
            let started = sys.epoch_state().job.as_ref().map_or(before, |j| j.started);
            oracle.record_checkpoint(started, times.done_at);
            // The rung riding this checkpoint's health record: still
            // pending while the job is in flight, already rotated into
            // `C_last` if it completed instantly.
            let rung = match sys.epoch_state().job.as_ref() {
                Some(_) => sys.pending_health_rung().unwrap_or(HealthRung::Healthy),
                None => sys.clast_health_rung(),
            };
            oracle.record_health(times.done_at, rung);
            ckpts.push(times);
        }
        rungs.push(sys.health_rung());
    }
    let health = sys.stats().health;
    (oracle, ckpts, now, rungs, health)
}

/// Replays the workload with optional latent media fault and tamper armed
/// plus a crash at `at` (and `extra` stacked points), drains every
/// leftover point, and returns the settled system.
fn crash_replay(
    ops: &[Op],
    cfg: SystemConfig,
    media: Option<MediaFault>,
    tamper: Option<TamperFault>,
    at: Cycle,
    extra: &[Cycle],
) -> ThyNvm {
    let mut sys = ThyNvm::new(cfg);
    if let Some(f) = media {
        sys.inject_media_fault(f);
    }
    if let Some(t) = tamper {
        sys.inject_tamper(t);
    }
    sys.arm_crash_point(at);
    for &p in extra {
        assert!(p > at, "stacked points must lie past the first crash");
        sys.queue_crash_point(p);
    }
    let mut now = Cycle::ZERO;
    let mut fired = false;
    for op in ops {
        let mut record_ok = true;
        now = apply(&mut sys, op, now, &mut record_ok);
        if sys.take_crash_report().is_some() {
            fired = true;
            break;
        }
    }
    if !fired {
        sys.poll_crash(now.max(at) + Cycle::new(1));
        sys.take_crash_report().expect("armed crash must fire");
    }
    while let Some(p) = sys.armed_crash_point() {
        now = sys.poll_crash(now.max(p) + Cycle::new(1)).expect("leftover point fires");
        sys.take_crash_report().expect("leftover crash reported");
    }
    sys
}

/// Per-trial conservation: the ladder ledger balances, every bounded retry
/// across the media / recovery / DRAM paths is a RetryPolicy-issued
/// attempt, and the DRAM poison lifecycle closes.
fn assert_conservation(sys: &ThyNvm, label: &str) {
    let s = sys.stats();
    assert!(
        s.health.promotions <= s.health.demotions,
        "{label}: more promotions than demotions ({:?})",
        s.health
    );
    assert_eq!(
        s.retry.media_attempts + s.retry.recovery_attempts,
        s.media.retries,
        "{label}: media retries not conserved ({:?} vs {:?})",
        s.retry,
        s.media
    );
    assert_eq!(
        s.retry.dram_attempts, s.dram.refetch_retries,
        "{label}: DRAM retries not conserved"
    );
    let outstanding = sys.dram_ecc().map_or(0, |e| e.outstanding() as u64);
    assert_eq!(
        s.dram.poisoned_blocks,
        s.dram.poison_accounted() + outstanding,
        "{label}: poison leaked from the lifecycle accounting"
    );
}

/// The soak's hysteresis discipline, checked on a rung trace: recovery is
/// earned one rung at a time (a promotion never skips), while demotion may
/// jump straight to the firing signal's rung.
fn assert_hysteresis(rungs: &[HealthRung], label: &str) {
    for w in rungs.windows(2) {
        if w[1] < w[0] {
            assert_eq!(
                level(w[0]) - level(w[1]),
                1,
                "{label}: promotion skipped a rung ({:?} -> {:?})",
                w[0],
                w[1]
            );
        }
    }
}

fn soak_seed() -> u64 {
    std::env::var("ENDURANCE_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE0D0_5A0C)
}

/// One config combo of the soak population. Crash is in every trial; the
/// other three fault domains toggle per combo.
#[derive(Debug, Clone, Copy)]
struct Combo {
    media: bool,
    dram: bool,
    tamper: bool,
}

const COMBOS: &[Combo] = &[
    Combo { media: true, dram: false, tamper: false }, // wear × crash
    Combo { media: false, dram: true, tamper: false }, // ECC × crash
    Combo { media: false, dram: false, tamper: true }, // tamper × crash
    Combo { media: true, dram: true, tamper: false },  // wear × ECC × crash
    Combo { media: true, dram: true, tamper: true },   // all four domains
    Combo { media: false, dram: false, tamper: false }, // ladder-on control
];

/// The endurance health posture: a tight window and low thresholds so the
/// deterministic wear schedule actually walks the ladder, plus a short
/// promotion streak so quiet epochs climb back.
fn soak_health() -> HealthConfig {
    HealthConfig {
        window_epochs: 4,
        wounded_retry_rate: 2,
        wounded_refetch_rate: 2,
        readonly_scrub_backlog: 4,
        promote_clean_epochs: 2,
        ..HealthConfig::hardened()
    }
}

fn combo_cfg(c: Combo, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.health = soak_health();
    if c.media {
        cfg.media = MediaFaultConfig {
            stuck_at_threshold: 8,
            spare_blocks: 4,
            ..MediaFaultConfig::hardened()
        };
    }
    if c.dram {
        // A flip rate high enough that the refetch-rate signal actually
        // wounds the ladder during the stress epochs — and, being a
        // windowed rate rather than a standing level, lets the cool-down
        // epochs earn the promotion back.
        cfg.dram_fault =
            DramFaultConfig { flip_rate: 0.2, poison_rate: 0.02, seed, ..DramFaultConfig::hardened() };
    }
    if c.tamper {
        // Distinct from the DRAM seed: the config validator insists the
        // fault streams stay independent.
        cfg.security = SecurityConfig { seed: seed.wrapping_add(1), ..SecurityConfig::hardened() };
    }
    cfg.validate().expect("valid soak config");
    cfg
}

/// The tamper kinds the soak draws from (addresses vary per trial).
fn tamper_kind(kind: usize, addr: u64) -> TamperFault {
    match kind {
        0 => TamperFault::ClastData { addr },
        1 => TamperFault::StaleCounterTable,
        2 => TamperFault::TornRootMeta,
        _ => TamperFault::BothImages { addr },
    }
}

/// Validates one settled trial: image vs the oracle, rung vs the rung the
/// oracle saw persisted with the restored image (with tamper / fallback /
/// WAL-redo overrides applied exactly), and the conservation ledgers.
#[allow(clippy::too_many_lines)]
fn verify_trial(
    oracle: &PersistenceOracle,
    sys: &mut ThyNvm,
    seq: &[Cycle],
    media_inject: bool,
    tamper: Option<TamperFault>,
    label: &str,
) {
    let t = Cycle::new(u64::MAX / 2);
    let tamper_applied = tamper.is_some() && sys.armed_tamper().is_none();
    // --- image ---
    let read = |sys: &mut ThyNvm, addr: u64| {
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
        buf[0]
    };
    if tamper_applied {
        let diffs =
            oracle.diff_with_tampered_region(seq[0], tamper.expect("applied"), |a| read(sys, a));
        assert!(
            diffs.is_empty(),
            "{label}: {} divergent byte(s) vs tamper-aware oracle, first {:?}",
            diffs.len(),
            diffs.first()
        );
    } else {
        let diffs = oracle.diff_after_crash_sequence(seq, media_inject, |a| read(sys, a));
        assert!(
            diffs.is_empty(),
            "{label}: {} divergent byte(s) vs oracle, first {:?}",
            diffs.len(),
            diffs.first()
        );
    }
    // --- post-recovery rung ---
    let s = sys.stats();
    let rung = sys.health_rung();
    let exact = oracle.expected_rung_at(seq[0]);
    let fallback = oracle.expected_fallback_rung_at(seq[0]);
    let tampered = s.security.tampers_detected > 0;
    let unrecoverable = s.security.unrecoverable > 0;
    let redo_escalated =
        s.media.wal_redos >= sys.config().health.readonly_wal_redos && rung >= HealthRung::ReadOnly;
    if tampered || unrecoverable {
        assert_eq!(
            rung,
            HealthRung::FailSafe,
            "{label}: detected tamper / unrecoverable verdict must land FailSafe"
        );
    } else if s.media.integrity_fallbacks == 0 && !redo_escalated {
        // The clean case is exact: recovery rehydrates precisely the rung
        // persisted with the checkpoint it restored.
        assert_eq!(rung, exact, "{label}: rehydrated rung diverges from the oracle");
    } else {
        // A fallback restores the penultimate image (and its rung); a
        // WAL-redo burst escalates to at least ReadOnly. Either way the
        // rung must still be one the durable history can explain.
        assert!(
            rung == exact || rung == fallback || redo_escalated,
            "{label}: rung {rung} explained by neither C_last ({exact}) nor C_penult ({fallback})"
        );
    }
    // FailSafe never serves new stores.
    if rung >= HealthRung::ReadOnly {
        let err = sys.try_store_bytes(PhysAddr::new(63 * PAGE), &[1u8; 64], t).unwrap_err();
        assert!(matches!(err, Error::Degraded { .. }), "{label}: degraded rung accepted a store");
    }
    assert_conservation(sys, label);
}

/// Randomized endurance soak: ≥ 500 seeded trials over multi-million-cycle
/// runs crossing media wear, DRAM ECC faults, crashes and tampering, with
/// zero oracle divergence at sampled crash points, exact post-recovery
/// rungs, per-trial conservation, and a bounded functional footprint.
#[test]
fn seeded_endurance_soak_degrades_gracefully_without_divergence() {
    let ops = workload();
    let base_seed = soak_seed();

    let mut demotions = 0u64;
    let mut promotions = 0u64;

    let refs: Vec<(SystemConfig, PersistenceOracle, Vec<CkptTimes>, Cycle)> = COMBOS
        .iter()
        .map(|&c| {
            let cfg = combo_cfg(c, base_seed | 1);
            let (oracle, ckpts, end, rungs, health) = reference_run(&ops, cfg);
            assert_eq!(
                ckpts.len(),
                (EPOCHS + QUIET_EPOCHS) as usize,
                "workload must reach every checkpoint"
            );
            assert!(end >= Cycle::new(5_000_000), "endurance runs span multiple million cycles");
            assert_hysteresis(&rungs, &format!("reference combo {c:?}"));
            assert!(
                health.promotions <= health.demotions,
                "reference combo {c:?}: ladder ledger out of balance ({health:?})"
            );
            demotions += health.demotions;
            promotions += health.promotions;
            (cfg, oracle, ckpts, end)
        })
        .collect();

    let mut rng_state = base_seed;
    let mut rejected = 0u64;
    let mut rehydrations = 0u64;
    let mut failsafes = 0u64;
    let mut fallbacks = 0u64;
    let mut max_footprint = 0usize;
    const TRIALS: usize = 510;
    for trial in 0..TRIALS {
        let ci = (rng::next(&mut rng_state) % COMBOS.len() as u64) as usize;
        let combo = COMBOS[ci];
        let (cfg, oracle, ckpts, end) = &refs[ci];
        let media_inject = combo.media && rng::next(&mut rng_state).is_multiple_of(3);
        let inject = media_inject.then_some(if trial.is_multiple_of(2) {
            MediaFault::TornCommitRecord
        } else {
            MediaFault::ClastBitFlip { addr: 64 * PAGE }
        });
        let tamper = combo.tamper.then(|| {
            let kind = (rng::next(&mut rng_state) % 4) as usize;
            let addr = (rng::next(&mut rng_state) % (3 * PAGE)) & !63;
            tamper_kind(kind, addr)
        });
        // Latent faults and tampers only matter once a commit exists.
        let lo = if media_inject || tamper.is_some() { ckpts[0].done_at.raw() + 1 } else { 1 };
        let at = Cycle::new(lo + rng::next(&mut rng_state) % (end.raw() - lo));
        let depth = (rng::next(&mut rng_state) % 3) as usize; // 0–2 stacked points
        let mut extra = Vec::new();
        while extra.len() < depth {
            let p = at + Cycle::new(1 + rng::next(&mut rng_state) % 2_000_000);
            if !extra.contains(&p) {
                extra.push(p);
            }
        }
        extra.sort_unstable();
        let mut sys = crash_replay(&ops, *cfg, inject, tamper, at, &extra);
        let mut seq = vec![at];
        seq.extend_from_slice(&extra);
        let label = format!("trial {trial} combo {ci} at {at} depth {depth} inject {inject:?} tamper {tamper:?}");
        verify_trial(oracle, &mut sys, &seq, media_inject, tamper, &label);
        let h = sys.stats().health;
        demotions += h.demotions;
        promotions += h.promotions;
        rejected += h.stores_rejected;
        rehydrations += h.rehydrations;
        failsafes += u64::from(sys.health_rung() == HealthRung::FailSafe);
        fallbacks += sys.stats().media.integrity_fallbacks;
        max_footprint = max_footprint.max(sys.functional_footprint_pages());
    }
    // Coverage floor: the soak exercised every rung transition class.
    assert!(demotions > 0, "soak never demoted");
    assert!(promotions > 0, "soak never promoted back (hysteresis untested)");
    assert!(rejected > 0, "soak never rejected a degraded store");
    assert!(rehydrations > 0, "soak never rehydrated a rung after crash");
    assert!(failsafes > 0, "soak never reached FailSafe");
    assert!(fallbacks > 0, "soak never fell back to C_penult");
    // Bounded footprint: the workload touches ~10 pages of address space;
    // the functional stores (visible + committed + penult + archive) must
    // stay proportional to that, not to the millions of simulated cycles.
    assert!(
        max_footprint <= 256,
        "functional footprint grew past the working-set bound: {max_footprint} pages"
    );
}

/// Disabled twin: with `HealthConfig.enabled = false` (thresholds set, the
/// ladder off) the timeline and the visible fingerprint are bit-identical
/// to a default-config run, including across a crash — the subsystem adds
/// zero cost when off.
#[test]
fn disabled_health_config_is_bit_identical_to_default() {
    let ops = workload();
    let plain = SystemConfig::small_test();
    let mut disabled = SystemConfig::small_test();
    disabled.health = HealthConfig { enabled: false, ..soak_health() };
    disabled.validate().expect("disabled ladder with thresholds set is still valid");

    let run = |cfg: SystemConfig| {
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for op in &ops {
            let mut record_ok = true;
            now = apply(&mut sys, op, now, &mut record_ok);
            assert!(record_ok, "a disabled ladder must never reject a store");
        }
        now = sys.drain(now);
        let report = sys.crash_and_recover(now);
        (now + report.recovery_cycles, sys.visible_fingerprint(), sys.stats().clone())
    };
    let (t_plain, fp_plain, s_plain) = run(plain);
    let (t_off, fp_off, s_off) = run(disabled);
    assert_eq!(t_plain, t_off, "disabled ladder changed the timeline");
    assert_eq!(fp_plain, fp_off, "disabled ladder changed the contents");
    assert_eq!(s_off.health, thynvm::types::HealthStats::default());
    assert_eq!(s_plain.nvm_writes, s_off.nvm_writes);
    assert_eq!(s_plain.nvm_write_bytes_ckpt, s_off.nvm_write_bytes_ckpt);
    assert_eq!(s_plain.service_cycles, s_off.service_cycles);
}

/// Determinism: the same seed reproduces the same trial schedule, the same
/// health ledgers, and the same recovered fingerprints.
#[test]
fn endurance_soak_prefix_replays_deterministically() {
    let ops = workload();
    let base_seed = soak_seed();
    let refs: Vec<SystemConfig> =
        COMBOS.iter().map(|&c| combo_cfg(c, base_seed | 1)).collect();

    let run_prefix = || {
        let mut rng_state = base_seed;
        (0..10)
            .map(|trial| {
                let ci = (rng::next(&mut rng_state) % COMBOS.len() as u64) as usize;
                let combo = COMBOS[ci];
                let media_inject = combo.media && rng::next(&mut rng_state).is_multiple_of(3);
                let inject = media_inject.then_some(if trial % 2 == 0 {
                    MediaFault::TornCommitRecord
                } else {
                    MediaFault::ClastBitFlip { addr: 64 * PAGE }
                });
                let tamper = combo.tamper.then(|| {
                    let kind = (rng::next(&mut rng_state) % 4) as usize;
                    let addr = (rng::next(&mut rng_state) % (3 * PAGE)) & !63;
                    tamper_kind(kind, addr)
                });
                let at = Cycle::new(1_000_000 + rng::next(&mut rng_state) % 4_000_000);
                let sys = crash_replay(&ops, refs[ci], inject, tamper, at, &[]);
                (sys.stats().health, sys.health_rung(), sys.visible_fingerprint())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run_prefix(), run_prefix(), "same seed must replay identically");
}
