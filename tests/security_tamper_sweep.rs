//! Secure-mode soak: seeded adversarial tampers crossed with crash cycles,
//! stacked crash points, and the NVM media-fault model, validated against
//! the tamper-aware persistence oracle.
//!
//! The secure persistent memory mode's claim: recovery never replays
//! unauthenticated data. A MAC mismatch or stale counter table on `C_last`
//! is detected, classified (tamper vs. torn vs. media) and degraded to the
//! authenticated `C_penult`, exactly as CRC failures are; when *both*
//! images fail authentication the system resets to the provably-empty
//! image and surfaces `IntegrityUnrecoverable` — there are no silent
//! recoveries. This suite stress-tests that claim three ways:
//!
//! 1. **Randomized sweep**: ≥ 500 seeded trials across eight config combos
//!    (four tamper kinds × media model on/off), each crashing at a random
//!    cycle with 0–2 stacked crash points, asserting the recovered image
//!    is byte-identical to the tamper-aware oracle and that the per-trial
//!    tamper ledger conserves: every detection is classified exactly once
//!    and resolved exactly once, and every *applied* tamper is detected.
//! 2. **Disabled twin**: with `SecurityConfig.enabled = false` (even with
//!    a tamper rate configured) the timeline and visible fingerprint are
//!    bit-identical to a default-config run — the model adds zero cost
//!    when off.
//! 3. **Determinism**: replaying a prefix of the sweep from the same seed
//!    reproduces identical ledgers and fingerprints.
//!
//! Seeds come from `SECURITY_SWEEP_SEED` (CI runs a small fixed matrix);
//! the default seed keeps local runs deterministic.

use thynvm::core::{PersistenceOracle, TamperFault, ThyNvm};
use thynvm::types::{
    rng, Cycle, MediaFaultConfig, MemorySystem, PhysAddr, SecurityConfig, SecurityStats,
    SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// End the epoch (checkpoint start; execution overlaps the job).
    Checkpoint,
    /// Let simulated time pass.
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;

/// A three-epoch workload touching both schemes: hot pages that cross the
/// promotion threshold (PTT) plus scattered cold blocks (BTT), ending with
/// uncheckpointed tail writes no recovery may ever surface.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0u64..3 {
        for rep in 0..4u64 {
            for page in 0..3u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 50 + page * 11 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        for i in 0..10u64 {
            let block = (i * 13 + epoch * 7) % 64;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 17 + i) as u8,
            });
        }
        ops.push(Op::Checkpoint);
        ops.push(Op::Advance { cycles: 400_000 });
    }
    ops.push(Op::Advance { cycles: 2_000_000 });
    for blk in 0..6u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

/// Applies one op, returning the advanced timeline.
fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint completion times learned from the crash-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    done_at: Cycle,
}

/// Runs the workload crash-free, feeding the oracle.
fn reference_run(ops: &[Op], cfg: SystemConfig) -> (PersistenceOracle, Vec<CkptTimes>, Cycle) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        if let Op::Write { addr, len, fill } = op {
            oracle.record_write(*addr, &vec![*fill; *len]);
        }
        let before = now;
        now = apply(&mut sys, op, now);
        if matches!(op, Op::Checkpoint) {
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => CkptTimes { done_at: j.done_at },
                None => CkptTimes { done_at: now },
            };
            let started = sys.epoch_state().job.as_ref().map_or(before, |j| j.started);
            oracle.record_checkpoint(started, times.done_at);
            ckpts.push(times);
        }
    }
    (oracle, ckpts, now)
}

/// Replays the workload with a tamper armed and a crash at `at` (plus
/// `extra` stacked points), drains every leftover point, and returns the
/// settled system.
fn crash_replay(
    ops: &[Op],
    cfg: SystemConfig,
    tamper: TamperFault,
    at: Cycle,
    extra: &[Cycle],
) -> ThyNvm {
    let mut sys = ThyNvm::new(cfg);
    sys.inject_tamper(tamper);
    sys.arm_crash_point(at);
    for &p in extra {
        assert!(p > at, "stacked points must lie past the first crash");
        sys.queue_crash_point(p);
    }
    let mut now = Cycle::ZERO;
    let mut fired = false;
    for op in ops {
        now = apply(&mut sys, op, now);
        if sys.take_crash_report().is_some() {
            fired = true;
            break;
        }
    }
    if !fired {
        sys.poll_crash(now.max(at) + Cycle::new(1));
        sys.take_crash_report().expect("armed crash must fire");
    }
    while let Some(p) = sys.armed_crash_point() {
        now = sys.poll_crash(now.max(p) + Cycle::new(1)).expect("leftover point fires");
        sys.take_crash_report().expect("leftover crash reported");
    }
    sys
}

/// Asserts the per-trial tamper-ledger conservation invariants.
fn assert_conservation(s: &SecurityStats, label: &str) {
    assert_eq!(
        s.classified_total(),
        s.tampers_detected,
        "{label}: detection classified other than exactly once ({s:?})"
    );
    assert_eq!(
        s.detections_accounted(),
        s.tampers_detected,
        "{label}: detection resolved other than exactly once ({s:?})"
    );
    assert!(
        s.tampers_injected + s.classified_media >= s.tampers_detected,
        "{label}: more detections than injections ({s:?})"
    );
}

fn sweep_seed() -> u64 {
    std::env::var("SECURITY_SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EC0_31A7)
}

/// The four tamper kinds the sweep draws from (addresses vary per trial).
fn tamper_kind(kind: usize, addr: u64) -> TamperFault {
    match kind {
        0 => TamperFault::ClastData { addr },
        1 => TamperFault::StaleCounterTable,
        2 => TamperFault::TornRootMeta,
        _ => TamperFault::BothImages { addr },
    }
}

fn combo_cfg(media: bool, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.security = SecurityConfig { seed, ..SecurityConfig::hardened() };
    if media {
        cfg.media = MediaFaultConfig::hardened();
    }
    cfg.validate().expect("valid sweep config");
    cfg
}

/// Runs one trial and returns the settled system plus its label.
#[allow(clippy::too_many_arguments)]
fn run_trial(
    ops: &[Op],
    refs: &[(SystemConfig, PersistenceOracle, Vec<CkptTimes>, Cycle)],
    rng_state: &mut u64,
    trial: usize,
) -> (ThyNvm, TamperFault, Vec<Cycle>, String, usize) {
    let kind = (rng::next(rng_state) % 4) as usize;
    let media = rng::next(rng_state) % 2 == 1;
    let ci = usize::from(media);
    let (cfg, _, _, end) = &refs[ci];
    let addr = (rng::next(rng_state) % (3 * PAGE)) & !63;
    let tamper = tamper_kind(kind, addr);
    let at = Cycle::new(1 + rng::next(rng_state) % (end.raw() - 1));
    let depth = (rng::next(rng_state) % 3) as usize; // 0–2 stacked points
    let mut extra = Vec::new();
    while extra.len() < depth {
        let p = at + Cycle::new(1 + rng::next(rng_state) % 2_000_000);
        if !extra.contains(&p) {
            extra.push(p);
        }
    }
    extra.sort_unstable();
    let sys = crash_replay(ops, *cfg, tamper, at, &extra);
    let mut seq = vec![at];
    seq.extend_from_slice(&extra);
    let label = format!("trial {trial} kind {kind} media {media} at {at} depth {depth}");
    (sys, tamper, seq, label, ci)
}

/// Randomized sweep: ≥ 500 seeded trials crossing tamper kinds, crash
/// cycles, stacked crash points and the media model. Every recovered image
/// must match the tamper-aware oracle byte-for-byte, every applied tamper
/// must be detected (zero silent recoveries), and every trial's tamper
/// ledger must conserve.
#[test]
fn seeded_tamper_sweep_never_replays_unauthenticated_data() {
    let ops = workload();
    let base_seed = sweep_seed();

    // One crash-free reference per media setting: the deterministic
    // workload gives both combos the same logical write history.
    let refs: Vec<(SystemConfig, PersistenceOracle, Vec<CkptTimes>, Cycle)> = [false, true]
        .iter()
        .map(|&media| {
            let cfg = combo_cfg(media, base_seed | 1);
            let (oracle, ckpts, end) = reference_run(&ops, cfg);
            assert_eq!(ckpts.len(), 3, "workload must reach all three checkpoints");
            (cfg, oracle, ckpts, end)
        })
        .collect();

    let mut rng_state = base_seed;
    let mut fallbacks = 0u64;
    let mut unrecoverables = 0u64;
    let mut still_armed = 0u64;
    let mut kinds_detected = [0u64; 3]; // tamper / torn / (tamper again for stale)
    const TRIALS: usize = 510;
    for trial in 0..TRIALS {
        let (mut sys, tamper, seq, label, ci) = run_trial(&ops, &refs, &mut rng_state, trial);
        let (_, oracle, _, _) = &refs[ci];
        let s = sys.stats().security;
        assert_conservation(&s, &label);

        let applied = sys.armed_tamper().is_none();
        let t = Cycle::new(u64::MAX / 2);
        let read = |sys: &mut ThyNvm, addr: u64| {
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
            buf[0]
        };
        if applied {
            // Zero silent recoveries: the applied tamper was detected and
            // resolved (fallback or unrecoverable), never replayed.
            assert_eq!(s.tampers_injected, 1, "{label}: applied tamper not counted");
            assert_eq!(
                s.tampers_detected,
                s.tampers_injected + s.classified_media,
                "{label}: silent recovery — applied tamper went undetected ({s:?})"
            );
            let diffs =
                oracle.diff_with_tampered_region(seq[0], tamper, |a| read(&mut sys, a));
            assert!(
                diffs.is_empty(),
                "{label}: {} divergent byte(s) vs tamper-aware oracle, first {:?}",
                diffs.len(),
                diffs.first()
            );
            match tamper {
                TamperFault::BothImages { .. } => {
                    assert_eq!(s.unrecoverable, 1, "{label}: both-images must be terminal");
                    assert!(
                        sys.take_security_error().is_some(),
                        "{label}: unrecoverable must surface an error"
                    );
                    unrecoverables += 1;
                }
                TamperFault::ClastData { .. } | TamperFault::StaleCounterTable => {
                    assert!(s.classified_tamper >= 1, "{label}: misclassified ({s:?})");
                    kinds_detected[0] += 1;
                    fallbacks += s.verify_fallbacks;
                }
                TamperFault::TornRootMeta => {
                    assert!(s.classified_torn >= 1, "{label}: misclassified ({s:?})");
                    kinds_detected[1] += 1;
                    fallbacks += s.verify_fallbacks;
                }
            }
        } else {
            // Crash before any completed checkpoint: nothing to forge yet.
            assert_eq!(s.tampers_injected, 0, "{label}: armed tamper counted early");
            assert_eq!(s.tampers_detected, s.classified_media, "{label}: phantom detection");
            still_armed += 1;
            let diffs =
                oracle.diff_after_crash_sequence(&seq, false, |a| read(&mut sys, a));
            assert!(
                diffs.is_empty(),
                "{label}: {} divergent byte(s) vs clean-crash oracle, first {:?}",
                diffs.len(),
                diffs.first()
            );
        }
    }
    // Coverage floor: the sweep exercised every path in the population.
    assert!(fallbacks > 0, "sweep never fell back to C_penult");
    assert!(unrecoverables > 0, "sweep never hit the unrecoverable path");
    assert!(still_armed > 0, "sweep never crashed before the first checkpoint");
    assert!(kinds_detected[0] > 0, "no adversarial classification exercised");
    assert!(kinds_detected[1] > 0, "no torn-metadata classification exercised");
}

/// Disabled twin: with `enabled = false` the model must be absent, not
/// merely quiet — even with a tamper rate configured, the timeline and the
/// visible fingerprint are bit-identical to a default-config run.
#[test]
fn disabled_security_config_is_bit_identical_to_default() {
    let ops = workload();
    let plain = SystemConfig::small_test();
    let mut disabled = SystemConfig::small_test();
    disabled.security = SecurityConfig { enabled: false, tamper_rate: 0.9, ..Default::default() };
    disabled.validate().expect("disabled model with a rate set is still valid");

    let run = |cfg: SystemConfig| {
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for op in &ops {
            now = apply(&mut sys, op, now);
        }
        now = sys.drain(now);
        // A crash exercises the recovery path with verification off.
        let report = sys.crash_and_recover(now);
        (now + report.recovery_cycles, sys.visible_fingerprint(), sys.stats().clone())
    };
    let (t_plain, fp_plain, s_plain) = run(plain);
    let (t_off, fp_off, s_off) = run(disabled);
    assert_eq!(t_plain, t_off, "disabled model changed the timeline");
    assert_eq!(fp_plain, fp_off, "disabled model changed the contents");
    assert!(!s_off.security.any(), "disabled model left security counters");
    assert_eq!(s_plain.nvm_writes, s_off.nvm_writes);
    assert_eq!(s_plain.dram_reads, s_off.dram_reads);
    assert_eq!(s_plain.service_cycles, s_off.service_cycles);
}

/// Determinism: the same seed reproduces the same trial schedule, the same
/// tamper ledgers, and the same recovered fingerprints.
#[test]
fn tamper_sweep_prefix_replays_deterministically() {
    let ops = workload();
    let base_seed = sweep_seed();
    let refs: Vec<(SystemConfig, PersistenceOracle, Vec<CkptTimes>, Cycle)> = [false, true]
        .iter()
        .map(|&media| {
            let cfg = combo_cfg(media, base_seed | 1);
            let (oracle, ckpts, end) = reference_run(&ops, cfg);
            (cfg, oracle, ckpts, end)
        })
        .collect();

    let run_prefix = || {
        let mut rng_state = base_seed;
        (0..12)
            .map(|trial| {
                let (sys, _, _, _, _) = run_trial(&ops, &refs, &mut rng_state, trial);
                (sys.stats().security, sys.visible_fingerprint())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run_prefix(), run_prefix(), "same seed must replay identically");
}
