//! DRAM fault-domain soak: seeded ECC faults (corrected flips + poisoned
//! blocks) crossed with crash cycles and NVM media faults, validated
//! against the quarantine-aware persistence oracle.
//!
//! The DRAM fault domain's containment claim: an uncorrectable DRAM error
//! never becomes durable corruption. Poison under *clean* data heals
//! transparently (re-fetch from the NVM checkpoint copy); poison under
//! *dirty* data is quarantined — the dirty range rolls back to the last
//! checkpoint and the loss is surfaced, never silently persisted. This
//! suite stress-tests that claim three ways:
//!
//! 1. **Randomized sweep**: ≥ 500 seeded trials across six config combos
//!    (poison only, flips only, both, poison × NVM media faults, both ×
//!    media, and a rates-zero control), each crashing at a random cycle
//!    and asserting the recovered image is byte-identical to the
//!    quarantine-aware oracle — so no recovered byte ever comes from a
//!    poisoned block — plus per-trial poison-lifecycle conservation:
//!    `poisoned_blocks == refetched + dropped + overwritten +
//!    crash_cleared + outstanding`.
//! 2. **Disabled twin**: with `DramFaultConfig.enabled = false` (even with
//!    nonzero rates configured) the timeline and visible fingerprint are
//!    bit-identical to a default-config run — the model adds zero cost
//!    when off.
//! 3. **Containment floor**: the sweep must actually exercise the
//!    machinery — corrected flips, transparent refetches and quarantines
//!    all occur across the population.
//!
//! Seeds come from `DRAM_FAULT_SEED` (CI runs a small fixed matrix); the
//! default seed keeps local runs deterministic.

use thynvm::core::{MediaFault, PersistenceOracle, ThyNvm};
use thynvm::types::{
    Cycle, DramFaultConfig, MediaFaultConfig, MemorySystem, PhysAddr, SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// Read `len` bytes at `addr` (drives the ECC check on DRAM copies).
    Read { addr: u64, len: usize },
    /// End the epoch (checkpoint start; execution overlaps the job).
    Checkpoint,
    /// Let simulated time pass.
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;

/// A three-epoch workload touching both schemes — hot pages that cross the
/// promotion threshold (PTT) plus scattered cold blocks (BTT) — and, unlike
/// the crash-storm workload, *reading its own data back* every epoch so the
/// DRAM ECC check runs against dirty and clean working copies alike.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0u64..3 {
        for rep in 0..4u64 {
            for page in 0..3u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 50 + page * 11 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        for i in 0..10u64 {
            let block = (i * 13 + epoch * 7) % 64;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 17 + i) as u8,
            });
        }
        // Read the hot pages back mid-epoch: ECC checks on dirty data.
        for page in 0..3u64 {
            for blk in 0..8u64 {
                ops.push(Op::Read { addr: page * PAGE + blk * 64, len: 64 });
            }
        }
        ops.push(Op::Checkpoint);
        ops.push(Op::Advance { cycles: 400_000 });
        // Read again post-checkpoint: ECC checks on clean (refetchable) data.
        for page in 0..3u64 {
            ops.push(Op::Read { addr: page * PAGE, len: 64 });
        }
    }
    ops.push(Op::Advance { cycles: 2_000_000 });
    // Uncheckpointed tail writes no recovery may ever surface.
    for blk in 0..6u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

/// Applies one op, returning the advanced timeline.
fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now))
        }
        Op::Read { addr, len } => {
            let mut buf = vec![0u8; *len];
            now.max(sys.load_bytes(PhysAddr::new(*addr), &mut buf, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint completion times learned from the crash-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    done_at: Cycle,
}

/// Runs the workload crash-free, feeding the oracle — including every
/// quarantine the seeded DRAM fault schedule produces, drained through
/// [`ThyNvm::take_quarantine_events`] in op order so each lands before the
/// checkpoint snapshot it preceded.
fn reference_run(ops: &[Op], cfg: SystemConfig) -> (PersistenceOracle, Vec<CkptTimes>, Cycle) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        if let Op::Write { addr, len, fill } = op {
            oracle.record_write(*addr, &vec![*fill; *len]);
        }
        let before = now;
        now = apply(&mut sys, op, now);
        for (base, len) in sys.take_quarantine_events() {
            oracle.record_quarantine(base, len);
        }
        if matches!(op, Op::Checkpoint) {
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => CkptTimes { done_at: j.done_at },
                None => CkptTimes { done_at: now },
            };
            let started = sys.epoch_state().job.as_ref().map_or(before, |j| j.started);
            oracle.record_checkpoint(started, times.done_at);
            ckpts.push(times);
        }
    }
    (oracle, ckpts, now)
}

/// Replays the workload with a crash armed at `at` (plus `extra` stacked
/// points), drains every leftover point, and returns the settled system.
fn crash_replay(
    ops: &[Op],
    cfg: SystemConfig,
    inject: Option<MediaFault>,
    at: Cycle,
    extra: &[Cycle],
) -> ThyNvm {
    let mut sys = ThyNvm::new(cfg);
    if let Some(fault) = inject {
        sys.inject_media_fault(fault);
    }
    sys.arm_crash_point(at);
    for &p in extra {
        assert!(p > at, "stacked points must lie past the first crash");
        sys.queue_crash_point(p);
    }
    let mut now = Cycle::ZERO;
    let mut fired = false;
    for op in ops {
        now = apply(&mut sys, op, now);
        if sys.take_crash_report().is_some() {
            fired = true;
            break;
        }
    }
    if !fired {
        sys.poll_crash(now.max(at) + Cycle::new(1));
        sys.take_crash_report().expect("armed crash must fire");
    }
    while let Some(p) = sys.armed_crash_point() {
        now = sys.poll_crash(now.max(p) + Cycle::new(1)).expect("leftover point fires");
        sys.take_crash_report().expect("leftover crash reported");
    }
    sys
}

/// Asserts one settled trial: recovered bytes match the quarantine-aware
/// oracle (so no poisoned byte survived) and the poison lifecycle conserves.
fn verify_trial(
    oracle: &PersistenceOracle,
    sys: &mut ThyNvm,
    seq: &[Cycle],
    clast_corrupt: bool,
    label: &str,
) {
    let t = Cycle::new(u64::MAX / 2);
    let diffs = oracle.diff_after_crash_sequence(seq, clast_corrupt, |addr| {
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
        buf[0]
    });
    assert!(
        diffs.is_empty(),
        "{label}: {} divergent byte(s) vs quarantine-aware oracle, first {:?}",
        diffs.len(),
        diffs.first()
    );
    // Poison lifecycle conservation: every poisoned block met exactly one
    // fate (refetched, dropped by quarantine, overwritten whole, cleared by
    // power loss) or is still outstanding.
    let outstanding = sys.dram_ecc().map_or(0, |e| e.outstanding() as u64);
    let d = &sys.stats().dram;
    assert_eq!(
        d.poisoned_blocks,
        d.poison_accounted() + outstanding,
        "{label}: poison leaked from the lifecycle accounting ({d:?})"
    );
}

// The workspace's shared deterministic PRNG (splitmix64), so trials are
// reproducible from the seed alone.
use thynvm::types::rng::next as splitmix64;

fn sweep_seed() -> u64 {
    std::env::var("DRAM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD4A3_FA01)
}

/// One config combo of the sweep population.
#[derive(Debug, Clone, Copy)]
struct Combo {
    flip_rate: f64,
    poison_rate: f64,
    media: bool,
}

const COMBOS: &[Combo] = &[
    Combo { flip_rate: 0.0, poison_rate: 0.03, media: false }, // poison only
    Combo { flip_rate: 0.10, poison_rate: 0.0, media: false }, // flips only
    Combo { flip_rate: 0.05, poison_rate: 0.02, media: false }, // both
    Combo { flip_rate: 0.0, poison_rate: 0.03, media: true },  // poison × NVM faults
    Combo { flip_rate: 0.05, poison_rate: 0.02, media: true }, // both × NVM faults
    Combo { flip_rate: 0.0, poison_rate: 0.0, media: false },  // armed-but-quiet control
];

fn combo_cfg(c: Combo, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.dram_fault = DramFaultConfig {
        flip_rate: c.flip_rate,
        poison_rate: c.poison_rate,
        seed,
        ..DramFaultConfig::hardened()
    };
    if c.media {
        cfg.media = MediaFaultConfig::hardened();
    }
    cfg.validate().expect("valid sweep config");
    cfg
}

/// Randomized sweep: ≥ 500 seeded trials crossing DRAM poison, crash
/// cycles and NVM media faults. Every recovered image must match the
/// quarantine-aware oracle byte-for-byte — a recovered byte sourced from a
/// poisoned block would diverge — and every trial's poison counters must
/// conserve.
#[test]
fn seeded_dram_fault_sweep_never_persists_poison() {
    let ops = workload();
    let base_seed = sweep_seed();

    // One crash-free reference per combo: the oracle learns that combo's
    // deterministic quarantine schedule alongside the checkpoint times.
    let refs: Vec<(SystemConfig, PersistenceOracle, Vec<CkptTimes>, Cycle)> = COMBOS
        .iter()
        .map(|&c| {
            let cfg = combo_cfg(c, base_seed | 1);
            let (oracle, ckpts, end) = reference_run(&ops, cfg);
            assert_eq!(ckpts.len(), 3, "workload must reach all three checkpoints");
            (cfg, oracle, ckpts, end)
        })
        .collect();

    let mut rng = base_seed;
    let mut quarantines = 0u64;
    let mut refetches = 0u64;
    let mut corrected = 0u64;
    const TRIALS: usize = 510;
    for trial in 0..TRIALS {
        let ci = (splitmix64(&mut rng) % COMBOS.len() as u64) as usize;
        let combo = COMBOS[ci];
        let (cfg, oracle, ckpts, end) = &refs[ci];
        let inject = if combo.media {
            // Latent NVM faults void C_last at recovery — crossing the DRAM
            // quarantine rollback with the NVM integrity fallback.
            Some(if trial % 2 == 0 {
                MediaFault::TornCommitRecord
            } else {
                MediaFault::ClastBitFlip { addr: 0 }
            })
        } else {
            None
        };
        // Media faults only matter once a commit exists.
        let lo = if combo.media { ckpts[0].done_at.raw() + 1 } else { 1 };
        let at = Cycle::new(lo + splitmix64(&mut rng) % (end.raw() - lo));
        let depth = (splitmix64(&mut rng) % 3) as usize; // 0–2 stacked points
        let mut extra = Vec::new();
        while extra.len() < depth {
            let p = at + Cycle::new(1 + splitmix64(&mut rng) % 2_000_000);
            if !extra.contains(&p) {
                extra.push(p);
            }
        }
        extra.sort_unstable();
        let mut sys = crash_replay(&ops, *cfg, inject, at, &extra);
        let mut seq = vec![at];
        seq.extend_from_slice(&extra);
        verify_trial(
            oracle,
            &mut sys,
            &seq,
            inject.is_some(),
            &format!("trial {trial} combo {ci} at {at} depth {depth} fault {inject:?}"),
        );
        let d = &sys.stats().dram;
        quarantines += d.quarantined_pages + u64::from(!d.quarantine_dropped_bytes.is_multiple_of(PAGE));
        refetches += d.poison_refetched;
        corrected += d.corrected_flips;
        if combo.flip_rate == 0.0 && combo.poison_rate == 0.0 {
            assert!(!d.any(), "trial {trial}: quiet control produced DRAM fault counters");
        }
    }
    // Containment floor: the sweep exercised the whole machinery.
    assert!(quarantines > 0, "sweep never quarantined a dirty range");
    assert!(refetches > 0, "sweep never healed a clean block by refetch");
    assert!(corrected > 0, "sweep never corrected a single-bit flip");
}

/// Disabled twin: with `enabled = false` the model must be absent, not
/// merely quiet — even with aggressive rates configured, the timeline and
/// the visible fingerprint are bit-identical to a default-config run.
#[test]
fn disabled_dram_fault_config_is_bit_identical_to_default() {
    let ops = workload();
    let plain = SystemConfig::small_test();
    let mut disabled = SystemConfig::small_test();
    disabled.dram_fault =
        DramFaultConfig { enabled: false, flip_rate: 0.9, poison_rate: 0.9, ..Default::default() };
    disabled.validate().expect("disabled model with rates set is still valid");

    let run = |cfg: SystemConfig| {
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for op in &ops {
            now = apply(&mut sys, op, now);
        }
        now = sys.drain(now);
        (now, sys.visible_fingerprint(), sys.stats().clone())
    };
    let (t_plain, fp_plain, s_plain) = run(plain);
    let (t_off, fp_off, s_off) = run(disabled);
    assert_eq!(t_plain, t_off, "disabled model changed the timeline");
    assert_eq!(fp_plain, fp_off, "disabled model changed the contents");
    assert!(!s_off.dram.any(), "disabled model left DRAM fault counters");
    assert_eq!(s_plain.nvm_writes, s_off.nvm_writes);
    assert_eq!(s_plain.dram_reads, s_off.dram_reads);
    assert_eq!(s_plain.service_cycles, s_off.service_cycles);
}

/// Crash-while-poison-outstanding: arm fresh poison, crash before anything
/// observes it, and assert recovery lands on a consistent pre-poison image
/// with the loss accounted to `poison_cleared_by_crash`.
#[test]
fn crash_with_outstanding_poison_recovers_a_consistent_image() {
    let ops = workload();
    let cfg = combo_cfg(COMBOS[0], sweep_seed() | 1);
    let (oracle, ckpts, _end) = reference_run(&ops, cfg);

    // Crash shortly after the second checkpoint commits: whatever poison
    // the schedule had outstanding right then is lost with DRAM power.
    let at = ckpts[1].done_at + Cycle::new(10);
    let mut sys = crash_replay(&ops, cfg, None, at, &[]);
    verify_trial(&oracle, &mut sys, &[at], false, "outstanding-poison crash");
}
