//! Nested-crash-storm soak: crashes *during recovery* validated against the
//! sequence-aware persistence oracle.
//!
//! The restartable-recovery design claims idempotence: recovery restarted
//! from the persisted commit record — after any number of stacked power
//! failures at arbitrary recovery cycles — converges to the exact image an
//! uninterrupted recovery would have produced. This suite stress-tests that
//! claim three ways:
//!
//! 1. **Boundary-exhaustive**: for crash points straddling a complete
//!    checkpoint, queue a nested crash at every recovery-step boundary
//!    (learned from an identically-configured probe twin) and assert the
//!    storm image is *fingerprint-identical* to the probe's uninterrupted
//!    recovery, and oracle-identical byte-for-byte.
//! 2. **Randomized soak**: ≥ 500 seeded trials stacking 2–8 crashes at
//!    random mid-step cycles, with and without latent media faults armed
//!    (torn commit record / `C_last` bit flip — the crash-during-integrity-
//!    fallback path), each asserting convergence to
//!    [`PersistenceOracle::diff_after_crash_sequence`] plus counter
//!    conservation: every queued point fires exactly once, as either a
//!    top-level or a nested crash, and
//!    `crashes_injected == recoveries_to_clast + recoveries_to_cpenult`.
//! 3. **Fallback storm**: a torn commit record with nested crashes at the
//!    integrity-fallback step's boundaries — the second recovery must still
//!    pick `C_penult`, never compound the fallback.
//!
//! Seeds come from `CRASH_STORM_SEED` (CI runs a small fixed matrix); the
//! default seed keeps local runs deterministic.

use thynvm::core::{InjectedCrash, MediaFault, PersistenceOracle, ThyNvm};
use thynvm::types::{
    Cycle, MediaFaultConfig, MemorySystem, PhysAddr, RecoveryOutcome, SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// End the epoch (checkpoint start; execution overlaps the job).
    Checkpoint,
    /// Let simulated time pass.
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;

/// A compact three-epoch workload touching both schemes: hot pages that
/// cross the promotion threshold (PTT / page writeback) plus scattered cold
/// blocks (BTT / block remapping), with per-epoch distinct fills so the
/// three images (`W_active`, `C_last`, `C_penult`) all differ.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0u64..3 {
        for rep in 0..4u64 {
            for page in 0..3u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 50 + page * 11 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        for i in 0..10u64 {
            let block = (i * 13 + epoch * 7) % 64;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 17 + i) as u8,
            });
        }
        ops.push(Op::Checkpoint);
        if epoch < 1 {
            ops.push(Op::Advance { cycles: 400_000 });
        }
    }
    ops.push(Op::Advance { cycles: 2_000_000 });
    // Uncheckpointed tail writes no recovery may ever surface.
    for blk in 0..6u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

/// Applies one op, returning the advanced timeline.
fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint completion times learned from the fault-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    started: Cycle,
    done_at: Cycle,
}

/// Runs the workload fault-free, feeding the oracle.
fn reference_run(ops: &[Op], cfg: SystemConfig) -> (PersistenceOracle, Vec<CkptTimes>, Cycle) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        if let Op::Write { addr, len, fill } = op {
            oracle.record_write(*addr, &vec![*fill; *len]);
        }
        let before = now;
        now = apply(&mut sys, op, now);
        if matches!(op, Op::Checkpoint) {
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => CkptTimes { started: j.started, done_at: j.done_at },
                None => CkptTimes { started: before, done_at: now },
            };
            oracle.record_checkpoint(times.started, times.done_at);
            ckpts.push(times);
        }
    }
    (oracle, ckpts, now)
}

/// Replays the workload with the first crash armed at `at` and `nested`
/// extra points queued behind it; drains every leftover point after the
/// first recovery so all queued cycles fire before returning. Returns the
/// first crash's record and the settled system.
fn storm_replay(
    ops: &[Op],
    cfg: SystemConfig,
    inject: Option<MediaFault>,
    at: Cycle,
    nested: &[Cycle],
) -> (InjectedCrash, ThyNvm) {
    let mut sys = ThyNvm::new(cfg);
    if let Some(fault) = inject {
        sys.inject_media_fault(fault);
    }
    sys.arm_crash_point(at);
    for &p in nested {
        assert!(p > at, "nested points must lie past the first crash");
        sys.queue_crash_point(p);
    }
    let mut now = Cycle::ZERO;
    let mut first = None;
    for op in ops {
        now = apply(&mut sys, op, now);
        if let Some(crash) = sys.take_crash_report() {
            first = Some(crash);
            break;
        }
    }
    let first = first.unwrap_or_else(|| {
        // Armed cycle beyond the trace: power fails with the system idle.
        sys.poll_crash(now.max(at) + Cycle::new(1));
        sys.take_crash_report().expect("armed crash must fire")
    });
    // Queued points past the end of the first recovery stay armed (by
    // design); fire each as a later top-level crash. Recovery idempotence
    // means these extra power cycles must not change the image.
    let mut t = first.resume_at;
    while let Some(p) = sys.armed_crash_point() {
        t = sys.poll_crash(t.max(p) + Cycle::new(1)).expect("leftover point fires");
        sys.take_crash_report().expect("leftover crash reported");
    }
    (first, sys)
}

/// Asserts one settled storm trial against the sequence-aware oracle and
/// the conservation invariants. `seq` is every queued crash cycle, first
/// crash first.
fn verify_storm(
    oracle: &PersistenceOracle,
    first: &InjectedCrash,
    sys: &mut ThyNvm,
    seq: &[Cycle],
    clast_corrupt: bool,
    label: &str,
) {
    let expected = oracle.expected_outcome_after_crash_sequence(seq, clast_corrupt);
    assert_eq!(
        first.event.outcome, expected,
        "{label}: first-crash outcome disagrees with the sequence oracle"
    );
    let t = Cycle::new(u64::MAX / 2);
    let diffs = oracle.diff_after_crash_sequence(seq, clast_corrupt, |addr| {
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
        buf[0]
    });
    assert!(
        diffs.is_empty(),
        "{label}: {} divergent byte(s) vs sequence oracle, first {:?}",
        diffs.len(),
        diffs.first()
    );
    // Conservation: every queued point fired exactly once, either as a
    // top-level crash or as a nested crash during some recovery.
    let s = sys.stats();
    assert_eq!(
        s.crashes_injected + s.nested_crashes,
        seq.len() as u64,
        "{label}: queued points lost or double-fired"
    );
    assert_eq!(
        s.crashes_injected,
        s.recoveries_to_clast + s.recoveries_to_cpenult,
        "{label}: every top-level crash recovers to exactly one labeled image"
    );
    assert!(s.recovery_cycles >= first.report.recovery_cycles, "{label}: cycle accounting lost");
    assert!(first.report.recovery_cycles > Cycle::ZERO, "{label}: recovery was free");
}

/// Hardened-integrity config for the media-fault storm population: CRC
/// checking on, deterministic (no random flips, no wear) so only the
/// injected latent fault perturbs recovery.
fn storm_media_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.media = MediaFaultConfig::hardened();
    cfg.validate().expect("valid storm media config");
    cfg
}

// The workspace's shared deterministic PRNG (splitmix64), so trials are
// reproducible from the seed alone.
use thynvm::types::rng::next as splitmix64;

fn storm_seed() -> u64 {
    std::env::var("CRASH_STORM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// Boundary-exhaustive pass: for crash cycles straddling the second
/// checkpoint, a probe twin learns the recovery-step boundaries, then the
/// storm trial queues a nested crash at every boundary (and one cycle
/// before it). The storm must converge to the probe's byte-identical image.
#[test]
fn nested_crashes_at_every_step_boundary_converge_to_the_probe_image() {
    let ops = workload();
    let cfg = SystemConfig::small_test();
    let (oracle, ckpts, _end) = reference_run(&ops, cfg);
    assert_eq!(ckpts.len(), 3, "workload must reach all three checkpoints");

    let target = ckpts[1];
    let crash_cycles = [
        target.started.saturating_sub(Cycle::new(1)),
        target.started + Cycle::new(1),
        Cycle::new((target.started.raw() + target.done_at.raw()) / 2),
        target.done_at,
        target.done_at + Cycle::new(100),
    ];
    let mut storms_nested = 0u64;
    for &at in &crash_cycles {
        // Probe: identical config and workload, single crash, no storm.
        let (probe_crash, probe) = storm_replay(&ops, cfg, None, at, &[]);
        assert_eq!(probe_crash.report.nested_crashes, 0);
        assert_eq!(probe_crash.event.cycle, at);

        // Storm: nested points at every step boundary the probe observed.
        let mut nested = Vec::new();
        for &(_, end) in &probe_crash.report.steps {
            for p in [end.saturating_sub(Cycle::new(1)), end] {
                if p > at && !nested.contains(&p) {
                    nested.push(p);
                }
            }
        }
        let (first, mut sys) = storm_replay(&ops, cfg, None, at, &nested);
        assert_eq!(first.event.cycle, at);
        storms_nested += first.report.nested_crashes;

        // Idempotence: byte-identical to the uninterrupted recovery, and
        // both agree with the oracle.
        assert_eq!(
            sys.visible_fingerprint(),
            probe.visible_fingerprint(),
            "storm at {at} diverged from the uninterrupted recovery"
        );
        assert!(first.report.recovery_cycles >= probe_crash.report.recovery_cycles);
        let mut seq = vec![at];
        seq.extend_from_slice(&nested);
        verify_storm(&oracle, &first, &mut sys, &seq, false, &format!("boundary storm at {at}"));
    }
    assert!(storms_nested > 0, "no boundary point ever interrupted a recovery");
}

/// Randomized soak: ≥ 500 seeded trials, 2–8 stacked crashes each at random
/// mid-step cycles, plain and with latent media faults armed. Every trial
/// converges to the sequence oracle with conserved counters.
#[test]
fn randomized_crash_storms_converge_to_the_sequence_oracle() {
    let ops = workload();
    let plain_cfg = SystemConfig::small_test();
    let media_cfg = storm_media_cfg();
    let (plain_oracle, plain_ckpts, plain_end) = reference_run(&ops, plain_cfg);
    let (media_oracle, media_ckpts, media_end) = reference_run(&ops, media_cfg);

    // Learn a typical recovery span from one probe so random nested points
    // land both inside and past the recovery window.
    let (probe, _) = storm_replay(&ops, plain_cfg, None, plain_ckpts[1].done_at, &[]);
    let span = probe.report.recovery_cycles.raw().max(16);

    let mut rng = storm_seed();
    let mut nested_fired = 0u64;
    let mut fallbacks_seen = 0u64;
    const TRIALS: usize = 510;
    for trial in 0..TRIALS {
        // Trials 0..340 are plain; the rest arm a latent media fault that
        // voids C_last, exercising crash-during-integrity-fallback.
        let media = trial >= 340;
        let (cfg, oracle, ckpts, end) = if media {
            (media_cfg, &media_oracle, &media_ckpts, media_end)
        } else {
            (plain_cfg, &plain_oracle, &plain_ckpts, plain_end)
        };
        let inject = match trial % 2 {
            _ if !media => None,
            0 => Some(MediaFault::TornCommitRecord),
            _ => Some(MediaFault::ClastBitFlip { addr: 0 }),
        };
        // Media faults only matter once a commit exists; crash after the
        // first checkpoint completes so the fallback path is reachable.
        let lo = if media { ckpts[0].done_at.raw() + 1 } else { 1 };
        let at = Cycle::new(lo + splitmix64(&mut rng) % (end.raw() - lo));
        let depth = 2 + (splitmix64(&mut rng) % 7) as usize; // 2–8 stacked
        let mut nested = Vec::new();
        while nested.len() < depth {
            // Bias toward the recovery window (where nesting happens) but
            // let some points land beyond it, staying armed for later.
            let p = at + Cycle::new(1 + splitmix64(&mut rng) % (3 * span));
            if !nested.contains(&p) {
                nested.push(p);
            }
        }
        nested.sort_unstable();
        let (first, mut sys) = storm_replay(&ops, cfg, inject, at, &nested);
        assert_eq!(first.event.cycle, at, "trial {trial}");
        nested_fired += first.report.nested_crashes;
        if first.report.integrity_fallback {
            fallbacks_seen += 1;
        }
        let mut seq = vec![at];
        seq.extend_from_slice(&nested);
        let corrupt = inject.is_some();
        verify_storm(
            oracle,
            &first,
            &mut sys,
            &seq,
            corrupt,
            &format!("trial {trial} at {at} depth {depth} fault {inject:?}"),
        );
    }
    assert!(
        nested_fired >= TRIALS as u64 / 4,
        "storm too shallow: only {nested_fired} nested crashes over {TRIALS} trials"
    );
    assert!(fallbacks_seen > 0, "soak never exercised an integrity fallback");
}

/// Fallback storm: a torn commit record voids `C_last`, and power fails
/// again at every boundary of the fallback recovery. Every retry must land
/// on `C_penult` — the fallback applies exactly once, never compounds.
#[test]
fn crash_storms_during_integrity_fallback_never_compound() {
    let ops = workload();
    let cfg = storm_media_cfg();
    let (oracle, ckpts, end) = reference_run(&ops, cfg);
    let crash_cycles = [ckpts[1].done_at + Cycle::new(50), end + Cycle::new(1)];
    for &at in &crash_cycles {
        let (probe_crash, probe) =
            storm_replay(&ops, cfg, Some(MediaFault::TornCommitRecord), at, &[]);
        assert!(probe_crash.report.integrity_fallback, "probe at {at} must fall back");

        let mut nested = Vec::new();
        for &(_, stage_end) in &probe_crash.report.steps {
            for p in [stage_end.saturating_sub(Cycle::new(1)), stage_end] {
                if p > at && !nested.contains(&p) {
                    nested.push(p);
                }
            }
        }
        let (first, mut sys) =
            storm_replay(&ops, cfg, Some(MediaFault::TornCommitRecord), at, &nested);
        assert!(first.report.integrity_fallback, "storm at {at} must still fall back");
        assert_eq!(first.event.outcome, RecoveryOutcome::CPenultIntegrityFallback);
        assert_eq!(
            sys.visible_fingerprint(),
            probe.visible_fingerprint(),
            "fallback storm at {at} diverged from the single-crash fallback"
        );
        let mut seq = vec![at];
        seq.extend_from_slice(&nested);
        verify_storm(&oracle, &first, &mut sys, &seq, true, &format!("fallback storm at {at}"));
    }
}
