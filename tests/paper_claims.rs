//! The paper-claims regression manifest.
//!
//! Each test quotes one falsifiable claim from the ThyNVM paper and checks
//! its *direction* at test scale (full-scale magnitudes live in
//! EXPERIMENTS.md). If a refactor breaks one of the paper's findings, this
//! suite names the exact claim that regressed.

use thynvm::bench::experiments::{self, KvKind, Scale};
use thynvm::bench::runner::{run_with_caches, SystemKind};
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig, ThyNvmConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};

fn cell<'a>(
    cells: &'a [experiments::Cell],
    workload: &str,
    system: &str,
) -> &'a experiments::Cell {
    cells
        .iter()
        .find(|c| c.workload == workload && c.system == system)
        .unwrap_or_else(|| panic!("missing cell {workload}/{system}"))
}

/// §5.2: "ThyNVM consistently performs better than other consistency
/// mechanisms for all access patterns. It outperforms journaling and
/// shadow paging by 10.2% and 14.8% on average."
#[test]
fn claim_thynvm_beats_both_consistency_baselines_on_micro_average() {
    let (_, cells) = experiments::fig7_micro_exec_time(Scale::test());
    let avg = |sys: &str| -> f64 {
        MicroPattern::all()
            .iter()
            .map(|p| cell(&cells, p.as_str(), sys).result.cycles.raw() as f64)
            .sum::<f64>()
            / 3.0
    };
    assert!(avg("ThyNVM") < avg("Journal"), "vs journaling");
    assert!(avg("ThyNVM") < avg("Shadow"), "vs shadow paging");
}

/// §5.2: "shadow paging performs poorly with the random access pattern,
/// because even if only few blocks of a page are dirty in DRAM, it
/// checkpoints the entire page in NVM."
#[test]
fn claim_shadow_paging_is_pathological_under_random() {
    let (_, cells) = experiments::fig8_write_traffic(Scale::test());
    let shadow = cell(&cells, "Random", "Shadow").result.mem.nvm_write_bytes_total();
    let thynvm = cell(&cells, "Random", "ThyNVM").result.mem.nvm_write_bytes_total();
    assert!(
        shadow > thynvm * 3,
        "shadow {shadow} should dwarf ThyNVM {thynvm} under random"
    );
}

/// §5.2: "ThyNVM can effectively avoid stalling by overlapping
/// checkpointing with execution" (Journal/Shadow spend 18.9%/15.2% of time
/// checkpointing; ThyNVM 2.5%).
#[test]
fn claim_overlap_cuts_checkpoint_stall_versus_stop_the_world() {
    let (_, cells) = experiments::e9_overlap_ablation(Scale::test());
    for p in ["Streaming", "Sliding"] {
        let overlapped = cell(&cells, p, "ThyNVM").result.ckpt_stall_share();
        let stw = cell(&cells, p, "No-overlap").result.ckpt_stall_share();
        assert!(
            overlapped < stw / 2.0,
            "{p}: overlap {overlapped:.3}% should be far below stop-the-world {stw:.3}%"
        );
    }
}

/// §5.3: "ThyNVM's transaction throughput is close to that of the ideal
/// DRAM-based and NVM-based systems" (95.1% of Ideal DRAM for the hash
/// table).
#[test]
fn claim_kv_throughput_is_close_to_ideal() {
    // Needs a horizon long enough to amortize cold-start checkpoints.
    let scale = Scale { kv_ops: 20_000, ..Scale::test() };
    let (_, _, cells) = experiments::fig9_fig10_kv(scale, KvKind::HashTable);
    // 64 B requests, the center of the sweep.
    let ideal = cell(&cells, "64B", "Ideal DRAM").result.cycles.raw() as f64;
    let thynvm = cell(&cells, "64B", "ThyNVM").result.cycles.raw() as f64;
    assert!(
        thynvm <= ideal * 1.25,
        "ThyNVM within 25% of Ideal DRAM at this scale ({:.2}x; ~1.03x at full scale)",
        thynvm / ideal
    );
}

/// §5.4: "ThyNVM speeds up these benchmarks on average by 2.7% compared to
/// the ideal NVM-based system, thanks to the presence of DRAM."
#[test]
fn claim_spec_workloads_beat_ideal_nvm() {
    // Needs a horizon long enough for the DRAM tier's hot pages to pay off.
    let cfg = SystemConfig::paper();
    for name in ["gcc", "lbm"] {
        let p = thynvm::workloads::spec::profile(name).expect("known");
        let w = thynvm::workloads::spec::SpecWorkload::new(p);
        let nvm = run_with_caches(SystemKind::IdealNvm, cfg, w.events(250_000));
        let thy = run_with_caches(SystemKind::ThyNvm, cfg, w.events(250_000));
        assert!(
            thy.ipc() > nvm.ipc(),
            "{name}: ThyNVM {:.4} must beat Ideal NVM {:.4}",
            thy.ipc(),
            nvm.ipc()
        );
    }
}

/// §5.5: "The NVM write traffic reduces with a larger BTT, which reduces
/// the number of checkpoints."
#[test]
fn claim_bigger_btt_means_fewer_checkpoints() {
    let (_, cells) = experiments::fig12_btt_sensitivity(Scale::test());
    let first = cells.first().expect("sweep nonempty").result.mem.epochs_completed;
    let last = cells.last().expect("sweep nonempty").result.mem.epochs_completed;
    assert!(first >= last, "checkpoints must not increase with BTT size");
}

/// §4.2: "The total size of the BTT and PTT we use in our evaluations is
/// approximately 37KB."
#[test]
fn claim_metadata_is_about_37_kilobytes() {
    let kb = ThyNvmConfig::default().metadata_bytes() as f64 / 1024.0;
    assert!((35.0..40.0).contains(&kb), "metadata {kb:.1} KB");
}

/// §2.2: log replay "increases the recovery time… reducing the fast
/// recovery benefit of using NVM" — ThyNVM's recovery is metadata reload +
/// page restore and stays in the sub-millisecond range.
#[test]
fn claim_recovery_is_submillisecond() {
    let mut sys = thynvm::core::ThyNvm::new(SystemConfig::paper());
    let mut now = Cycle::ZERO;
    for i in 0..2_000u64 {
        now = now.max(sys.store_bytes(PhysAddr::new(i * 64), &[1u8; 64], now));
    }
    let t = sys.drain(now);
    let report = sys.crash_and_recover(t);
    assert!(
        report.recovery_cycles.as_ns() < 1_000_000.0,
        "recovery took {:.0} ns",
        report.recovery_cycles.as_ns()
    );
}

/// §3.1: "a system failure at time t can corrupt both the working copy
/// updated in Epoch 2 and the checkpoint updated in Epoch 1. This is
/// exactly why we need to maintain C_penult."
#[test]
fn claim_penultimate_checkpoint_saves_the_day() {
    let mut sys = thynvm::core::ThyNvm::new(SystemConfig::small_test());
    let t = sys.store_bytes(PhysAddr::new(0), b"safe", Cycle::ZERO);
    let t = sys.drain(t); // checkpoint 1 complete -> C_penult-to-be
    let t = sys.store_bytes(PhysAddr::new(0), b"torn", t);
    let resume = sys.force_checkpoint(t); // checkpoint 2 in flight
    assert!(sys.epoch_state().job_running(resume));
    let report = sys.crash_and_recover(resume); // crash corrupts W and C_last
    assert!(report.rolled_back_incomplete);
    let mut buf = [0u8; 4];
    sys.load_bytes(PhysAddr::new(0), &mut buf, resume);
    assert_eq!(&buf, b"safe", "C_penult must be the recovery target");
}

/// §2.3/Table 1: uniform block granularity needs hardware proportional to
/// the write set; the dual scheme stays within the fixed budget on dense
/// patterns by moving them to page granularity.
#[test]
fn claim_dual_scheme_respects_hardware_budget_on_dense_patterns() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Streaming);
    let mut sys = thynvm::core::ThyNvm::new(cfg);
    let mut core = thynvm::cache::CoreModel::new(cfg.cache);
    core.run_trace(micro.events(60_000), &mut sys);
    assert!(
        sys.btt().peak() <= cfg.thynvm.btt_entries,
        "dual scheme exceeded the BTT budget: {}",
        sys.btt().peak()
    );
    assert!(sys.stats().pages_promoted > 0, "the stream must promote pages");
}
