//! Cross-crate integration tests: the full platform (core + caches +
//! memory system) running real workloads on every evaluated system.

use thynvm::bench::experiments::Scale;
use thynvm::bench::runner::{run_raw, run_with_caches, SystemKind};
use thynvm::types::{Cycle, SystemConfig};
use thynvm::workloads::kv::{hash::HashKv, rbtree::RbTreeKv, KvConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};
use thynvm::workloads::spec::{SpecWorkload, SPEC_2006};

const ALL_SYSTEMS: [SystemKind; 8] = [
    SystemKind::IdealDram,
    SystemKind::IdealNvm,
    SystemKind::Journal,
    SystemKind::Shadow,
    SystemKind::ThyNvm,
    SystemKind::ThyNvmBlockOnly,
    SystemKind::ThyNvmPageOnly,
    SystemKind::ThyNvmNoOverlap,
];

#[test]
fn every_system_runs_every_micro_pattern() {
    let cfg = SystemConfig::paper();
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        for kind in ALL_SYSTEMS {
            let res = run_with_caches(kind, cfg, micro.events(20_000));
            assert!(res.cycles > Cycle::ZERO, "{:?}/{:?} no time", pattern, kind);
            assert!(res.instructions > 0);
            // Time accounting sanity: stall share within [0, 100].
            let share = res.ckpt_stall_share();
            assert!((0.0..=100.0).contains(&share), "{kind:?} share {share}");
        }
    }
}

#[test]
fn consistency_systems_write_nvm_ideal_dram_does_not() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    for kind in [SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm] {
        let res = run_with_caches(kind, cfg, micro.events(50_000));
        assert!(
            res.mem.nvm_write_bytes_total() > 0,
            "{:?} persisted nothing",
            kind
        );
    }
    let dram = run_with_caches(SystemKind::IdealDram, cfg, micro.events(50_000));
    assert_eq!(dram.mem.nvm_write_bytes_total(), 0);
    assert!(dram.mem.dram_write_bytes > 0);
}

#[test]
fn thynvm_beats_journaling_and_shadow_on_random() {
    // The paper's central micro-benchmark claim (§5.2): ThyNVM outperforms
    // both traditional mechanisms under random access.
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let events: Vec<_> = micro.events(60_000).collect();
    let thynvm = run_with_caches(SystemKind::ThyNvm, cfg, events.iter().copied());
    let journal = run_with_caches(SystemKind::Journal, cfg, events.iter().copied());
    let shadow = run_with_caches(SystemKind::Shadow, cfg, events.iter().copied());
    assert!(
        thynvm.cycles < journal.cycles,
        "ThyNVM {} !< Journal {}",
        thynvm.cycles,
        journal.cycles
    );
    assert!(
        thynvm.cycles < shadow.cycles,
        "ThyNVM {} !< Shadow {}",
        thynvm.cycles,
        shadow.cycles
    );
}

#[test]
fn kv_workloads_run_on_all_five_paper_systems() {
    let cfg = SystemConfig::paper();
    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(4_096);
    kv_cfg.populate(&mut store, 1_000);
    let (events, ops) = kv_cfg.trace(&mut store, 3_000);
    assert_eq!(ops, 3_000);
    let mut throughputs = Vec::new();
    for kind in SystemKind::paper_five() {
        let res = run_with_caches(kind, cfg, events.iter().copied());
        let ktps = res.throughput_tps(ops) / 1e3;
        assert!(ktps > 0.0);
        throughputs.push((kind, ktps));
    }
    // Ideal DRAM is the upper bound.
    let dram = throughputs[0].1;
    for &(kind, ktps) in &throughputs[1..] {
        assert!(ktps <= dram * 1.02, "{kind:?} {ktps} beat Ideal DRAM {dram}");
    }
}

#[test]
fn rbtree_workload_runs_and_is_slower_per_op_than_hash() {
    let cfg = SystemConfig::paper();
    let kv_cfg = KvConfig::new(64);
    let mut hash = HashKv::new(4_096);
    let mut tree = RbTreeKv::new();
    kv_cfg.populate(&mut hash, 2_000);
    kv_cfg.populate(&mut tree, 2_000);
    let (hash_events, ops) = kv_cfg.trace(&mut hash, 2_000);
    let (tree_events, _) = kv_cfg.trace(&mut tree, 2_000);
    let hash_res = run_with_caches(SystemKind::ThyNvm, cfg, hash_events);
    let tree_res = run_with_caches(SystemKind::ThyNvm, cfg, tree_events);
    // Trees walk log(n) nodes per op: more memory work per transaction
    // (Figure 9's KTPS axis is ~2× lower for the tree store).
    assert!(
        tree_res.throughput_tps(ops) < hash_res.throughput_tps(ops),
        "tree {} !< hash {}",
        tree_res.throughput_tps(ops),
        hash_res.throughput_tps(ops)
    );
}

#[test]
fn spec_profiles_run_and_ideal_nvm_is_slowest() {
    let cfg = SystemConfig::paper();
    for profile in &SPEC_2006[..3] {
        let workload = SpecWorkload::new(*profile);
        let dram = run_with_caches(SystemKind::IdealDram, cfg, workload.events(60_000));
        let nvm = run_with_caches(SystemKind::IdealNvm, cfg, workload.events(60_000));
        let thynvm = run_with_caches(SystemKind::ThyNvm, cfg, workload.events(60_000));
        assert!(nvm.ipc() <= dram.ipc(), "{}: NVM IPC above DRAM", profile.name);
        // ThyNVM's DRAM tier keeps it in Ideal NVM's neighborhood even at
        // this short horizon (Figure 11 shows it 2.7 % *above* at full
        // scale; cold-start checkpoint costs dominate short runs).
        assert!(
            thynvm.ipc() >= nvm.ipc() * 0.7,
            "{}: ThyNVM {} far below Ideal NVM {}",
            profile.name,
            thynvm.ipc(),
            nvm.ipc()
        );
    }
}

#[test]
fn raw_and_cached_runs_agree_on_traffic_direction() {
    // Without caches every access hits the controller; with caches only
    // misses/writebacks do. Both must produce NVM write traffic for a
    // write-heavy random pattern on ThyNVM.
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let raw = run_raw(SystemKind::ThyNvm, cfg, micro.events(10_000));
    let cached = run_with_caches(SystemKind::ThyNvm, cfg, micro.events(10_000));
    assert!(raw.mem.total_accesses() >= cached.mem.total_accesses());
    assert!(raw.mem.nvm_write_bytes_total() > 0);
    assert!(cached.mem.nvm_write_bytes_total() > 0);
}

#[test]
fn deterministic_replay_produces_identical_results() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Sliding);
    let a = run_with_caches(SystemKind::ThyNvm, cfg, micro.events(30_000));
    let b = run_with_caches(SystemKind::ThyNvm, cfg, micro.events(30_000));
    assert_eq!(a.cycles, b.cycles, "simulation must be deterministic");
    assert_eq!(a.mem, b.mem);
}

#[test]
fn experiment_scales_are_ordered() {
    let t = Scale::test();
    let b = Scale::bench();
    assert!(t.micro_accesses < b.micro_accesses);
    assert!(t.kv_ops < b.kv_ops);
    assert!(t.spec_accesses < b.spec_accesses);
}
