//! Persist-buffer reorder soak: crash-time partial flushes of the volatile
//! WPQ validated against the salvage-aware persistence oracle.
//!
//! The persist buffer is a *fault domain*: writes that entered the WPQ but
//! had not drained at power loss are partially salvaged — a seeded,
//! retire-consistent prefix per bank. The one functional consequence the
//! controller exposes is **commit salvage**: when the crash lands inside
//! the commit-record persist window and the partial flush keeps the marker
//! while dropping no data, the in-flight checkpoint is promoted to
//! `C_last` instead of being rolled back. This suite validates that edge
//! three ways:
//!
//! 1. **Off/on twin**: with the buffer disabled the system is bit-identical
//!    to the armed system's fault-free run (the WPQ is timing/ordering
//!    state, not a content channel), and the armed run is deterministic.
//! 2. **Targeted salvage window**: a rate-1.0 crash one cycle before each
//!    checkpoint's completion must salvage the marker and recover to the
//!    *promoted* checkpoint's oracle image; a rate-0.0 crash at the same
//!    cycle must roll back classically.
//! 3. **Randomized soak**: ≥ 510 seeded trials crossing salvage rates
//!    {0.0, 0.5, 1.0} × nested crash storms × latent media faults, each
//!    converging byte-for-byte to the salvage-aware oracle with conserved
//!    crash counters (no silent recoveries) and a conserved WPQ ledger.
//!
//! Seeds come from `PERSIST_REORDER_SEED` (CI runs a small fixed matrix);
//! the default keeps local runs deterministic.

use thynvm::core::{InjectedCrash, MediaFault, PersistenceOracle, ThyNvm};
use thynvm::types::{
    Cycle, MediaFaultConfig, MemorySystem, PersistBufferConfig, PhysAddr, RecoveryOutcome,
    SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, len: usize, fill: u8 },
    Checkpoint,
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;

/// Three epochs of mixed hot-page (PTT) and cold-block (BTT) traffic with
/// per-epoch distinct fills, so `W_active`, `C_last` and `C_penult` all
/// differ and a wrongly-promoted or wrongly-rolled-back checkpoint shows up
/// as divergent bytes.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0u64..3 {
        for rep in 0..4u64 {
            for page in 0..3u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 50 + page * 11 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        for i in 0..10u64 {
            let block = (i * 13 + epoch * 7) % 64;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 17 + i) as u8,
            });
        }
        ops.push(Op::Checkpoint);
        if epoch < 1 {
            ops.push(Op::Advance { cycles: 400_000 });
        }
    }
    ops.push(Op::Advance { cycles: 2_000_000 });
    for blk in 0..6u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint window learned from the fault-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    started: Cycle,
    /// Cycle the commit record's write was issued: the earliest crash
    /// cycle at which the marker exists to be salvaged at all.
    commit_at: Cycle,
    done_at: Cycle,
}

fn armed_cfg(salvage_rate: f64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.wpq = PersistBufferConfig::armed();
    cfg.wpq.salvage_rate = salvage_rate;
    cfg.validate().expect("valid armed config");
    cfg
}

fn armed_media_cfg(salvage_rate: f64) -> SystemConfig {
    let mut cfg = armed_cfg(salvage_rate);
    cfg.media = MediaFaultConfig::hardened();
    cfg.validate().expect("valid armed media config");
    cfg
}

/// Runs the workload fault-free, feeding the oracle.
fn reference_run(ops: &[Op], cfg: SystemConfig) -> (PersistenceOracle, Vec<CkptTimes>, Cycle) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        if let Op::Write { addr, len, fill } = op {
            oracle.record_write(*addr, &vec![*fill; *len]);
        }
        let before = now;
        now = apply(&mut sys, op, now);
        if matches!(op, Op::Checkpoint) {
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => {
                    CkptTimes { started: j.started, commit_at: j.commit_at, done_at: j.done_at }
                }
                // Job already retired: the window is behind us and no soak
                // crash can land in it — an empty commit window is correct.
                None => CkptTimes { started: before, commit_at: now, done_at: now },
            };
            oracle.record_checkpoint(times.started, times.done_at);
            ckpts.push(times);
        }
    }
    (oracle, ckpts, now)
}

/// Replays the workload with the first crash armed at `at` and `nested`
/// extra points queued behind it; fires every leftover point after the
/// first recovery. Returns the first crash's record, whether *that* crash
/// salvaged the in-flight commit, and the settled system.
fn storm_replay(
    ops: &[Op],
    cfg: SystemConfig,
    inject: Option<MediaFault>,
    at: Cycle,
    nested: &[Cycle],
) -> (InjectedCrash, bool, ThyNvm) {
    let mut sys = ThyNvm::new(cfg);
    if let Some(fault) = inject {
        sys.inject_media_fault(fault);
    }
    sys.arm_crash_point(at);
    for &p in nested {
        assert!(p > at, "nested points must lie past the first crash");
        sys.queue_crash_point(p);
    }
    let mut now = Cycle::ZERO;
    let mut first = None;
    for op in ops {
        now = apply(&mut sys, op, now);
        if let Some(crash) = sys.take_crash_report() {
            first = Some(crash);
            break;
        }
    }
    let first = first.unwrap_or_else(|| {
        sys.poll_crash(now.max(at) + Cycle::new(1));
        sys.take_crash_report().expect("armed crash must fire")
    });
    // Whether the first crash promoted the in-flight checkpoint. Nested
    // crashes during its recovery find an empty buffer, so the outcome
    // label is the reliable witness; the targeted tests below pin the
    // flush report itself.
    let salvaged =
        first.event.outcome == RecoveryOutcome::CLast && sys.last_wpq_flush().is_some();
    let mut t = first.resume_at;
    while let Some(p) = sys.armed_crash_point() {
        t = sys.poll_crash(t.max(p) + Cycle::new(1)).expect("leftover point fires");
        sys.take_crash_report().expect("leftover crash reported");
    }
    (first, salvaged, sys)
}

/// The WPQ conservation ledger must balance after any storm.
fn assert_wpq_conserves(sys: &ThyNvm, label: &str) {
    let w = &sys.stats().wpq;
    assert_eq!(
        w.enqueued,
        w.drained + w.dropped_at_crash + w.outstanding(),
        "{label}: WPQ ledger out of balance: {w:?}"
    );
}

/// A non-empty oracle diff is a divergence; name the trial that produced it.
fn assert_image(diffs: Vec<thynvm::core::OracleMismatch>, label: &str) {
    assert!(
        diffs.is_empty(),
        "{label}: {} divergent byte(s) vs oracle, first {:?}",
        diffs.len(),
        diffs.first()
    );
}

use thynvm::types::rng::next as splitmix64;

fn sweep_seed() -> u64 {
    std::env::var("PERSIST_REORDER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5750_51D4)
}

/// Off/on twin: the armed buffer's fault-free run is byte-identical to the
/// disabled run (the WPQ carries ordering state, not content) and
/// deterministic across repetitions; the disabled run leaves no ledger.
#[test]
fn fault_free_runs_are_twin_identical_with_and_without_the_buffer() {
    let ops = workload();
    let run = |cfg: SystemConfig| {
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for op in &ops {
            now = apply(&mut sys, op, now);
        }
        (sys.visible_fingerprint(), now, sys.stats().wpq)
    };
    let (off_fp, off_end, off_wpq) = run(SystemConfig::small_test());
    let (on_fp, on_end, on_wpq) = run(armed_cfg(0.5));
    let (on_fp2, on_end2, _) = run(armed_cfg(0.5));
    assert_eq!(off_fp, on_fp, "armed buffer changed fault-free contents");
    assert_eq!((on_fp, on_end), (on_fp2, on_end2), "armed run not deterministic");
    assert!(!off_wpq.any(), "disabled buffer counted traffic: {off_wpq:?}");
    assert!(on_wpq.enqueued > 0 && on_wpq.fences > 0, "armed buffer unused: {on_wpq:?}");
    // The serialized checkpoint timeline retires every entry before each
    // §4.4 fence, so fencing is free here — off and on end cycles agree.
    assert_eq!(off_end, on_end, "fence stalls appeared in a drained timeline");
}

/// Targeted salvage window: one cycle before a checkpoint completes, the
/// commit marker is in flight. With salvage rate 1.0 the partial flush
/// keeps it — the checkpoint is promoted and recovery lands on *its*
/// image. With rate 0.0 the marker is dropped and recovery rolls back.
#[test]
fn crash_inside_the_commit_window_salvages_by_rate() {
    let ops = workload();
    let (oracle, ckpts, _) = reference_run(&ops, armed_cfg(1.0));
    assert_eq!(ckpts.len(), 3, "workload must reach all three checkpoints");
    let mut salvages = 0u64;
    for (k, ck) in ckpts.iter().enumerate() {
        let at = ck.done_at.saturating_sub(Cycle::new(1));

        // Rate 1.0: everything pending is salvaged, marker included.
        let (first, _, mut sys) = storm_replay(&ops, armed_cfg(1.0), None, at, &[]);
        let flush = sys.last_wpq_flush().expect("armed crash reports a flush");
        if flush.commit_salvaged() {
            salvages += 1;
            assert!(
                ck.commit_at <= at && at < ck.done_at,
                "ckpt {k}: salvage requires the marker to have been issued"
            );
            assert_eq!(
                first.event.outcome,
                RecoveryOutcome::CLast,
                "ckpt {k}: salvaged marker must promote the in-flight checkpoint"
            );
            assert_eq!(oracle.expected_outcome_with_commit_salvage(at), RecoveryOutcome::CLast);
            let t = Cycle::new(u64::MAX / 2);
            let diffs = oracle.diff_with_commit_salvage(at, |addr| {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                buf[0]
            });
            assert_image(diffs, &format!("salvage ckpt {k} at {at}"));
        }
        assert_wpq_conserves(&sys, &format!("rate-1.0 ckpt {k}"));

        // Rate 0.0: the same crash cycle drops the marker — classic rollback.
        let (first0, _, mut sys0) = storm_replay(&ops, armed_cfg(0.0), None, at, &[]);
        let flush0 = sys0.last_wpq_flush().expect("armed crash reports a flush");
        assert!(!flush0.commit_salvaged(), "ckpt {k}: rate 0.0 must not salvage");
        assert_eq!(
            first0.event.outcome,
            oracle.expected_outcome_after_crash_sequence(&[at], false),
            "ckpt {k}: rate 0.0 must match classic crash semantics"
        );
        let t = Cycle::new(u64::MAX / 2);
        let diffs = oracle.diff_after_crash_sequence(&[at], false, |addr| {
            let mut buf = [0u8; 1];
            sys0.load_bytes(PhysAddr::new(addr), &mut buf, t);
            buf[0]
        });
        assert_image(diffs, &format!("rollback ckpt {k} at {at}"));
        assert_wpq_conserves(&sys0, &format!("rate-0.0 ckpt {k}"));
    }
    assert!(salvages > 0, "no commit window ever had its marker in flight");
}

/// The flip side of the commit window: a crash *before* the commit record
/// was issued (`at < commit_at`) can never salvage the marker, even at
/// salvage rate 1.0 — residual energy cannot flush a write that had not
/// entered the WPQ. Overlapped execution makes this window adversarial:
/// foreground writes issued on the (earlier) foreground timeline enqueue
/// *behind* the marker in its bank, so a naive suffix unwind would leave
/// the never-issued marker in the salvageable prefix and early-commit a
/// checkpoint whose commit record did not exist at the crash.
#[test]
fn crash_before_the_commit_record_never_salvages() {
    let ops = workload();
    let (oracle, ckpts, _) = reference_run(&ops, armed_cfg(1.0));
    let mut windows = 0u64;
    for (k, ck) in ckpts.iter().enumerate() {
        for back in [1u64, 7, 50, 200, 1_000] {
            let at = Cycle::new(ck.commit_at.raw().saturating_sub(back));
            if at <= ck.started {
                continue;
            }
            windows += 1;
            let (first, _, mut sys) = storm_replay(&ops, armed_cfg(1.0), None, at, &[]);
            let flush = sys.last_wpq_flush().expect("armed crash reports a flush");
            assert!(
                !flush.marker_salvaged,
                "ckpt {k} at {at} (commit_at {}): salvaged a never-issued marker: {flush:?}",
                ck.commit_at
            );
            assert_eq!(
                first.event.outcome,
                oracle.expected_outcome_after_crash_sequence(&[at], false),
                "ckpt {k} at {at}: pre-issue crash must follow classic semantics"
            );
            let t = Cycle::new(u64::MAX / 2);
            let diffs = oracle.diff_after_crash_sequence(&[at], false, |addr| {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                buf[0]
            });
            assert_image(diffs, &format!("pre-issue ckpt {k} at {at}"));
            assert_wpq_conserves(&sys, &format!("pre-issue ckpt {k} at {at}"));
        }
    }
    assert!(windows >= 10, "workload must expose pre-issue crash windows");
}

/// Randomized soak: 510 seeded trials crossing salvage rates × nested
/// crash storms × latent media faults. Every trial converges to the
/// salvage-aware oracle (promoted image when the first crash salvaged the
/// commit, sequence image otherwise) with conserved counters.
#[test]
fn seeded_reorder_storms_converge_to_the_salvage_aware_oracle() {
    let ops = workload();
    let rates = [0.0f64, 0.5, 1.0];
    let refs: Vec<(PersistenceOracle, Vec<CkptTimes>, Cycle)> =
        vec![reference_run(&ops, armed_cfg(0.5)), reference_run(&ops, armed_media_cfg(0.5))];

    let mut rng = sweep_seed();
    let mut salvages = 0u64;
    let mut storms_nested = 0u64;
    let mut fallbacks = 0u64;
    const TRIALS: usize = 510;
    for trial in 0..TRIALS {
        let rate = rates[trial % rates.len()];
        // Latent media faults ride only the rate-0.0 (classic-semantics)
        // population: a salvaged commit and a torn commit record are
        // mutually exclusive claims about the same record.
        let media = rate == 0.0 && trial % 2 == 0;
        let (oracle, ckpts, end) = if media { &refs[1] } else { &refs[0] };
        let cfg = if media { armed_media_cfg(rate) } else { armed_cfg(rate) };
        let inject = if media {
            Some(if trial % 4 == 0 {
                MediaFault::TornCommitRecord
            } else {
                MediaFault::ClastBitFlip { addr: 0 }
            })
        } else {
            None
        };
        let lo = if media { ckpts[0].done_at.raw() + 1 } else { 1 };
        // The commit-record persist window is a few hundred cycles in a
        // multi-million-cycle trace; uniform sampling would never land in
        // it. Aim a slice of the salvage-capable trials just before a
        // checkpoint's completion so commit salvage is actually exercised.
        let aimed = rate > 0.0 && trial % 5 == 1;
        let at = if aimed {
            let ck = ckpts[(splitmix64(&mut rng) % ckpts.len() as u64) as usize];
            Cycle::new(ck.done_at.raw().saturating_sub(1 + splitmix64(&mut rng) % 100))
        } else {
            Cycle::new(lo + splitmix64(&mut rng) % (end.raw() - lo))
        };
        let depth = (splitmix64(&mut rng) % 5) as usize; // 0–4 stacked
        let mut nested = Vec::new();
        while nested.len() < depth {
            let p = at + Cycle::new(1 + splitmix64(&mut rng) % 200_000);
            if !nested.contains(&p) {
                nested.push(p);
            }
        }
        nested.sort_unstable();

        let (first, salvaged, mut sys) = storm_replay(&ops, cfg, inject, at, &nested);
        assert_eq!(first.event.cycle, at, "trial {trial}");
        storms_nested += first.report.nested_crashes;
        if first.report.integrity_fallback {
            fallbacks += 1;
        }
        let label = format!("trial {trial} rate {rate} at {at} depth {depth} fault {inject:?}");
        let mut seq = vec![at];
        seq.extend_from_slice(&nested);
        let corrupt = inject.is_some();

        let classic = oracle.expected_outcome_after_crash_sequence(&seq, corrupt);
        let t = Cycle::new(u64::MAX / 2);
        if salvaged && classic != RecoveryOutcome::CLast {
            // The first crash promoted the in-flight checkpoint. Legal only
            // inside some checkpoint's commit-*record* window — the marker
            // must have been issued (`commit_at <= at`, not merely
            // `started <= at`: a salvage before the record entered the WPQ
            // would mean the buffer kept a never-issued write) and not yet
            // retired — and only when the flush could keep it at all.
            assert!(rate > 0.0, "{label}: rate 0.0 can never salvage");
            assert!(
                ckpts.iter().any(|c| c.commit_at <= at && at < c.done_at),
                "{label}: salvage outside every commit-record window"
            );
            salvages += 1;
            let diffs = oracle.diff_with_commit_salvage(at, |addr| {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                buf[0]
            });
            assert_image(diffs, &label);
        } else {
            assert_eq!(first.event.outcome, classic, "{label}: outcome disagrees with oracle");
            let diffs = oracle.diff_after_crash_sequence(&seq, corrupt, |addr| {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                buf[0]
            });
            assert_image(diffs, &label);
        }

        // No silent recoveries: every queued point fired exactly once and
        // every top-level crash produced exactly one labeled recovery.
        let s = sys.stats();
        assert_eq!(
            s.crashes_injected + s.nested_crashes,
            seq.len() as u64,
            "{label}: queued points lost or double-fired"
        );
        assert_eq!(
            s.crashes_injected,
            s.recoveries_to_clast + s.recoveries_to_cpenult + s.recoveries_unrecoverable,
            "{label}: a recovery went unlabeled"
        );
        assert_wpq_conserves(&sys, &label);
        assert!(s.wpq.enqueued > 0, "{label}: armed buffer saw no traffic");
    }
    assert!(salvages > 0, "soak never exercised a commit salvage");
    assert!(storms_nested > 0, "soak never interrupted a recovery");
    assert!(fallbacks > 0, "soak never exercised an integrity fallback");
}
