//! Property-based model checks of the substrate data structures: each
//! component is compared against a trivially-correct reference model under
//! arbitrary operation sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;
use thynvm::cache::SetAssocCache;
use thynvm::mem::{Device, DeviceKind, SparseStore, WriteQueue};
use thynvm::types::{AccessKind, Cycle, HwAddr, PhysAddr, SystemConfig};
use thynvm::workloads::kv::{btree::BTreeKv, KvOp, KvStore};
use thynvm::workloads::{Arena, RbTreeKv};

/// Regression: shrunk counterexample from proptest seed `dfd002ba…`
/// (`model_checks.proptest-regressions`). The offline proptest shim cannot
/// replay upstream seed hashes, so the shrunk input — a single high address
/// near a set-index boundary — is pinned here explicitly, mirroring the
/// `cache_capacity_and_hit_stability` property body.
#[test]
fn regression_dfd002ba_single_high_address() {
    let addrs = [216891u64];
    let mut cache = SetAssocCache::new(4096, 4); // 64 blocks
    for &a in &addrs {
        let addr = PhysAddr::new(a & !63);
        if !cache.access(addr, a % 3 == 0) {
            cache.fill(addr, a % 3 == 0);
        }
        assert!(cache.resident_blocks() <= 64);
        assert!(cache.probe(addr), "freshly filled block must be resident");
    }
    let dirty_before = cache.dirty_blocks();
    let cleaned = cache.clean_all();
    assert_eq!(cleaned.len(), dirty_before, "clean_all returns every dirty block");
    assert_eq!(cache.dirty_blocks(), 0, "clean_all leaves zero dirty blocks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SparseStore behaves exactly like a byte map with zero default.
    #[test]
    fn sparse_store_matches_byte_map(
        ops in proptest::collection::vec(
            (0u64..100_000, proptest::collection::vec(any::<u8>(), 1..64)), 1..60),
        probes in proptest::collection::vec(0u64..100_000, 1..30),
    ) {
        let mut store = SparseStore::new();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for (addr, data) in &ops {
            store.write(HwAddr::new(*addr), data);
            for (i, &b) in data.iter().enumerate() {
                model.insert(addr + i as u64, b);
            }
        }
        for addr in probes {
            let mut buf = [0u8; 8];
            store.read(HwAddr::new(addr), &mut buf);
            for (i, &b) in buf.iter().enumerate() {
                let want = model.get(&(addr + i as u64)).copied().unwrap_or(0);
                prop_assert_eq!(b, want, "mismatch at {:#x}", addr + i as u64);
            }
        }
    }

    /// The write queue never admits more than `capacity` in-flight writes
    /// and always reports a drain time no earlier than any completion.
    #[test]
    fn write_queue_respects_capacity(
        completions in proptest::collection::vec(1u64..100_000, 1..100),
        capacity in 1usize..16,
    ) {
        let mut q = WriteQueue::new(capacity);
        let mut now = Cycle::ZERO;
        let mut last_completion = Cycle::ZERO;
        for c in completions {
            let completion = now + Cycle::new(c);
            let resume = q.push(completion, now);
            prop_assert!(resume >= now, "resume went backwards");
            now = resume;
            prop_assert!(q.len_at(now) <= capacity, "queue over capacity");
            last_completion = last_completion.max(completion);
        }
        prop_assert!(q.drain_time(now) >= now);
        prop_assert!(q.drain_time(now) <= last_completion.max(now));
    }

    /// A set-associative cache never reports more resident blocks than its
    /// capacity, and an access that just hit must hit again immediately.
    #[test]
    fn cache_capacity_and_hit_stability(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut cache = SetAssocCache::new(4096, 4); // 64 blocks
        for &a in &addrs {
            let addr = PhysAddr::new(a & !63);
            if !cache.access(addr, a % 3 == 0) {
                cache.fill(addr, a % 3 == 0);
            }
            prop_assert!(cache.resident_blocks() <= 64);
            prop_assert!(cache.probe(addr), "freshly filled block must be resident");
        }
        let dirty_before = cache.dirty_blocks();
        let cleaned = cache.clean_all();
        prop_assert_eq!(cleaned.len(), dirty_before, "clean_all returns every dirty block");
        prop_assert_eq!(cache.dirty_blocks(), 0, "clean_all leaves zero dirty blocks");
    }

    /// The red-black tree matches a BTreeMap under arbitrary mixed
    /// workloads and keeps its invariants at every step.
    #[test]
    fn rbtree_matches_btreemap(
        ops in proptest::collection::vec((0u64..200, 0u8..3), 1..250),
    ) {
        let mut arena = Arena::new(0);
        let mut tree = RbTreeKv::new();
        let mut model: BTreeMap<u64, ()> = BTreeMap::new();
        for (key, kind) in ops {
            match kind {
                0 => {
                    tree.apply(&mut arena, KvOp::Insert(key), 16);
                    model.insert(key, ());
                }
                1 => {
                    tree.apply(&mut arena, KvOp::Delete(key), 16);
                    model.remove(&key);
                }
                _ => {
                    tree.apply(&mut arena, KvOp::Search(key), 16);
                }
            }
            arena.drain_events().for_each(drop);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        for &key in model.keys() {
            prop_assert!(tree.contains(key), "missing {}", key);
        }
        for key in 0..200u64 {
            prop_assert_eq!(tree.contains(key), model.contains_key(&key));
        }
    }

    /// Arena allocations never overlap while live, even with frees and
    /// reuse in between.
    #[test]
    fn arena_allocations_never_overlap(
        sizes in proptest::collection::vec(1u64..256, 1..100),
        free_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut arena = Arena::new(0);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, len)
        for (i, &size) in sizes.iter().enumerate() {
            let addr = arena.alloc(size).raw();
            for &(s, l) in &live {
                prop_assert!(
                    addr + size <= s || s + l <= addr,
                    "allocation [{}, {}) overlaps live [{}, {})",
                    addr, addr + size, s, s + l
                );
            }
            live.push((addr, size));
            // Occasionally free an older allocation.
            if free_mask.get(i).copied().unwrap_or(false) && live.len() > 1 {
                let (s, l) = live.remove(0);
                arena.free(PhysAddr::new(s), l);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Device timing invariants under arbitrary access sequences:
    /// completions never precede issue, time is monotone per bank, and the
    /// open-row latency never exceeds the miss latency.
    #[test]
    fn device_timing_invariants(
        ops in proptest::collection::vec(
            (0u64..1 << 22, any::<bool>(), 1u32..4096), 1..200),
    ) {
        let cfg = SystemConfig::paper();
        for kind in [DeviceKind::Dram, DeviceKind::Nvm] {
            let geometry =
                if kind == DeviceKind::Dram { cfg.dram_geometry } else { cfg.nvm_geometry };
            let mut dev = Device::new(kind, cfg.timing, geometry);
            let mut now = Cycle::ZERO;
            for &(addr, write, bytes) in &ops {
                let kind_a = if write { AccessKind::Write } else { AccessKind::Read };
                let done = dev.access(HwAddr::new(addr), kind_a, bytes, now);
                prop_assert!(done > now, "completion must follow issue");
                // Issue the next access at the completion of this one.
                now = done;
            }
            let stats = dev.stats();
            prop_assert_eq!(stats.reads + stats.writes, ops.len() as u64);
            prop_assert_eq!(stats.row_hits + stats.row_misses, ops.len() as u64);
        }
    }

    /// Replaying the same access sequence twice yields identical timing —
    /// the device model is deterministic.
    #[test]
    fn device_is_deterministic(
        ops in proptest::collection::vec((0u64..1 << 20, any::<bool>()), 1..100),
    ) {
        let cfg = SystemConfig::paper();
        let run = || {
            let mut dev = Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry);
            let mut now = Cycle::ZERO;
            let mut tape = Vec::new();
            for &(addr, write) in &ops {
                let k = if write { AccessKind::Write } else { AccessKind::Read };
                now = dev.access(HwAddr::new(addr & !63), k, 64, now);
                tape.push(now);
            }
            tape
        };
        prop_assert_eq!(run(), run());
    }

    /// The B+ tree agrees with a BTreeMap under arbitrary mixed workloads
    /// and keeps its invariants.
    #[test]
    fn btree_matches_btreemap(
        ops in proptest::collection::vec((0u64..300, 0u8..3), 1..300),
    ) {
        let mut arena = Arena::new(0);
        let mut tree = BTreeKv::new();
        let mut model: BTreeMap<u64, ()> = BTreeMap::new();
        for (key, op) in ops {
            match op {
                0 => {
                    tree.apply(&mut arena, KvOp::Insert(key), 16);
                    model.insert(key, ());
                }
                1 => {
                    tree.apply(&mut arena, KvOp::Delete(key), 16);
                    model.remove(&key);
                }
                _ => tree.apply(&mut arena, KvOp::Search(key), 16),
            }
            arena.drain_events().for_each(drop);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        for key in 0..300u64 {
            prop_assert_eq!(tree.contains(key), model.contains_key(&key));
        }
    }

    /// Histogram totals always match the number of recorded samples, and
    /// quantiles bound the recorded range.
    #[test]
    fn histogram_invariants(samples in proptest::collection::vec(any::<u64>(), 1..300)) {
        let mut h = thynvm::types::Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().expect("nonempty"));
        prop_assert_eq!(h.max(), *samples.iter().max().expect("nonempty"));
        let bucket_total: u64 = h.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count());
        prop_assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    /// `SparseStore` equality agrees with `fingerprint()`: two stores built
    /// from the same logical contents — in different write orders, with one
    /// side additionally materializing all-zero pages the other never
    /// touches — compare equal and fingerprint identically, and any byte
    /// flip breaks equality.
    #[test]
    fn sparse_store_equality_agrees_with_fingerprint(
        ops in proptest::collection::vec(
            (0u64..100_000, proptest::collection::vec(any::<u8>(), 1..64)), 1..40),
        zero_page in 0u64..32,
        flip in (0u64..100_000, 1u8..255),
    ) {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        for (addr, data) in &ops {
            a.write(HwAddr::new(*addr), data);
        }
        for (addr, data) in ops.iter().rev() {
            b.write(HwAddr::new(*addr), data);
        }
        // Later writes win, so replaying in reverse order can genuinely
        // diverge; only compare when the contents agree byte-for-byte.
        // Materialized zero pages must stay invisible either way.
        b.write(HwAddr::new(zero_page * 4096), &[0u8; 64]);
        let mut same = true;
        for (addr, data) in &ops {
            let mut got = vec![0u8; data.len()];
            b.read(HwAddr::new(*addr), &mut got);
            let mut want = vec![0u8; data.len()];
            a.read(HwAddr::new(*addr), &mut want);
            if got != want {
                same = false;
                break;
            }
        }
        if same {
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
            // Equality is exact: flipping one byte to a new value breaks it.
            let (flip_addr, flip_val) = flip;
            let mut cur = [0u8; 1];
            a.read(HwAddr::new(flip_addr), &mut cur);
            if cur[0] != flip_val {
                a.write(HwAddr::new(flip_addr), &[flip_val]);
                prop_assert_ne!(&a, &b);
            }
        }
    }
}
