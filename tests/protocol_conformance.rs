//! Conformance of the real controller to the executable protocol
//! specification in `thynvm_core::protocol`.
//!
//! The controller's BTT entries are mapped to abstract
//! [`VersionState`]s; random traffic with checkpoints and crashes is
//! driven through the controller, and after every step each observed entry
//! state must be one the specification reaches, with spec-level recovery
//! semantics agreeing with the controller's functional behaviour.

use proptest::prelude::*;
use thynvm::core::{ProtocolEvent, ThyNvm, VersionState};
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};

/// Maps a controller BTT entry to its abstract protocol state.
fn abstract_state(entry: &thynvm::core::BttEntry) -> VersionState {
    VersionState {
        working: entry.wactive.is_some(),
        in_flight: entry.pending.is_some(),
        durable: entry.clast_region.is_some(),
    }
}

/// All states the specification can reach (by exhaustive exploration).
fn reachable_states() -> Vec<VersionState> {
    use std::collections::{HashSet, VecDeque};
    let mut seen: HashSet<VersionState> = HashSet::new();
    let mut queue = VecDeque::from([VersionState::HOME]);
    while let Some(s) = queue.pop_front() {
        if !seen.insert(s) {
            continue;
        }
        for e in ProtocolEvent::ALL {
            if let Ok(next) = s.apply(e) {
                queue.push_back(next);
            }
        }
    }
    seen.into_iter().collect()
}

#[derive(Debug, Clone)]
enum Act {
    Write(u64),
    Checkpoint,
    Wait(u64),
    Crash,
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        6 => (0u64..64).prop_map(|b| Act::Write(b * 64)),
        2 => Just(Act::Checkpoint),
        2 => (0u64..1_000_000).prop_map(Act::Wait),
        1 => Just(Act::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every BTT entry state the controller produces is reachable in the
    /// protocol specification.
    #[test]
    fn controller_states_are_spec_reachable(
        acts in proptest::collection::vec(act_strategy(), 1..80)
    ) {
        let legal = reachable_states();
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut now = Cycle::ZERO;
        for act in acts {
            match act {
                Act::Write(addr) => {
                    now = now.max(sys.store_bytes(PhysAddr::new(addr), &[1], now));
                }
                Act::Checkpoint => now = now.max(sys.force_checkpoint(now)),
                Act::Wait(c) => now += Cycle::new(c),
                Act::Crash => {
                    let _ = sys.crash_and_recover(now);
                }
            }
            for (block, entry) in sys.btt().iter() {
                let state = abstract_state(entry);
                prop_assert!(
                    legal.contains(&state),
                    "entry for {block} in unreachable state {state}"
                );
            }
        }
    }

    /// After a crash, no entry may claim working or in-flight versions —
    /// the spec's Crash event postcondition.
    #[test]
    fn crash_clears_volatile_versions(
        writes in proptest::collection::vec(0u64..64, 1..40),
        do_ckpt in any::<bool>(),
    ) {
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut now = Cycle::ZERO;
        for b in writes {
            now = now.max(sys.store_bytes(PhysAddr::new(b * 64), &[1], now));
        }
        if do_ckpt {
            now = sys.force_checkpoint(now);
        }
        let _ = sys.crash_and_recover(now);
        for (block, entry) in sys.btt().iter() {
            let s = abstract_state(entry);
            prop_assert!(!s.working, "{block} kept a working copy through power loss");
            // An in-flight checkpoint survives only if it completed before
            // the crash — in which case the controller rotated it to
            // durable, so `pending` must be empty either way.
            prop_assert!(!s.in_flight, "{block} kept an in-flight checkpoint");
        }
    }
}

#[test]
fn spec_recovery_matches_controller_on_canonical_scenarios() {
    // Scenario A: write, checkpoint completes → spec says LastCheckpoint.
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let t = sys.store_bytes(PhysAddr::new(0), &[5], Cycle::ZERO);
    let t = sys.force_checkpoint(t);
    let t = sys.drain(t);
    let spec = VersionState { working: false, in_flight: false, durable: true };
    assert_eq!(
        spec.recovery_target(),
        thynvm::core::protocol::RecoveryTarget::LastCheckpoint
    );
    let _ = sys.crash_and_recover(t);
    let mut buf = [0u8; 1];
    sys.load_bytes(PhysAddr::new(0), &mut buf, t);
    assert_eq!(buf[0], 5, "controller agrees: last checkpoint restored");

    // Scenario B: crash while the first checkpoint is in flight → spec
    // says HomeOriginal (zero).
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let t = sys.store_bytes(PhysAddr::new(0), &[5], Cycle::ZERO);
    let resume = sys.force_checkpoint(t);
    assert!(sys.epoch_state().job_running(resume));
    let spec = VersionState { working: false, in_flight: true, durable: false };
    assert_eq!(
        spec.recovery_target(),
        thynvm::core::protocol::RecoveryTarget::HomeOriginal
    );
    let _ = sys.crash_and_recover(resume);
    let mut buf = [9u8; 1];
    sys.load_bytes(PhysAddr::new(0), &mut buf, resume);
    assert_eq!(buf[0], 0, "controller agrees: home original restored");
}
