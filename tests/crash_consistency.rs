//! Property-based crash-consistency tests for the ThyNVM controller.
//!
//! The paper backs its protocol with a formal proof (online appendix);
//! that document is not available, so this suite checks the same invariant
//! mechanically: **whatever sequence of writes, checkpoints, time advances
//! and crash points occurs, recovery always restores exactly the memory
//! image of the most recent checkpoint that had completed by the crash** —
//! never a torn mixture, never a later uncommitted write.

use std::collections::HashMap;

use proptest::prelude::*;
use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};

/// One step of a crash-consistency scenario.
#[derive(Debug, Clone)]
enum Step {
    /// Write `len` bytes of value `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// End the epoch (processor flush + checkpoint start).
    Checkpoint,
    /// Let simulated time pass (lets in-flight checkpoints complete —
    /// or not, depending on the amount).
    Advance { cycles: u64 },
    /// Power failure + recovery.
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0u64..16 * 4096, 1usize..200, any::<u8>())
            .prop_map(|(addr, len, fill)| Step::Write { addr, len, fill }),
        2 => Just(Step::Checkpoint),
        2 => (0u64..2_000_000).prop_map(|cycles| Step::Advance { cycles }),
        1 => Just(Step::Crash),
    ]
}

/// Reference model: byte map of "what a correct recovery must produce".
#[derive(Debug, Clone, Default)]
struct Model {
    /// Live contents as the program wrote them.
    current: HashMap<u64, u8>,
    /// Snapshots captured at each checkpoint initiation, with the cycle at
    /// which that checkpoint completes.
    checkpoints: Vec<(Cycle, HashMap<u64, u8>)>,
}

impl Model {
    /// The image a crash at `now` must recover to.
    fn expected_at(&self, now: Cycle) -> HashMap<u64, u8> {
        self.checkpoints
            .iter()
            .rev()
            .find(|(done, _)| *done <= now)
            .map(|(_, snap)| snap.clone())
            .unwrap_or_default()
    }
}

fn run_scenario(steps: Vec<Step>) {
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let mut model = Model::default();
    let mut now = Cycle::ZERO;

    for step in steps {
        match step {
            Step::Write { addr, len, fill } => {
                let data = vec![fill; len];
                now = now.max(sys.store_bytes(PhysAddr::new(addr), &data, now));
                for i in 0..len as u64 {
                    model.current.insert(addr + i, fill);
                }
            }
            Step::Checkpoint => {
                let resume = sys.force_checkpoint(now);
                // The checkpoint captures the state as of initiation and
                // completes at the job's done_at (it may already have been
                // retired if the round was synchronous).
                let done = sys
                    .epoch_state()
                    .job
                    .as_ref()
                    .map(|j| j.done_at)
                    .unwrap_or(resume);
                model.checkpoints.push((done, model.current.clone()));
                now = now.max(resume);
            }
            Step::Advance { cycles } => {
                now += Cycle::new(cycles);
            }
            Step::Crash => {
                // Checkpoints that had not completed by the crash are lost
                // forever: prune them from the model.
                model.checkpoints.retain(|(done, _)| *done <= now);
                let expected = model.expected_at(now);
                let _ = sys.crash_and_recover(now);
                // Every byte the program ever touched must match the
                // expected checkpoint image (unwritten bytes read as 0).
                let keys: Vec<u64> = model.current.keys().copied().collect();
                for addr in keys {
                    let mut buf = [0u8; 1];
                    sys.load_bytes(PhysAddr::new(addr), &mut buf, now);
                    let want = expected.get(&addr).copied().unwrap_or(0);
                    assert_eq!(
                        buf[0], want,
                        "addr {addr:#x} after crash at {now}: got {}, expected {want}",
                        buf[0]
                    );
                }
                // The model also rolls back.
                model.current = expected;
            }
        }
    }

    // Terminal crash: the invariant must hold at the end of every scenario.
    let expected = model.expected_at(now);
    let _ = sys.crash_and_recover(now);
    for (&addr, &want) in &expected {
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(addr), &mut buf, now);
        assert_eq!(buf[0], want, "terminal crash mismatch at {addr:#x}");
    }
}

/// Regression: shrunk counterexample from proptest seed `1ebdb1a6…`
/// (`crash_consistency.proptest-regressions`). The offline proptest shim
/// cannot replay upstream seed hashes, so the shrunk input is pinned here
/// explicitly. Exercises writes issued in the epoch *after* a recovery:
/// stale BTT/PTT state surviving `crash_and_recover` would leak a pre-crash
/// value (or lose a post-crash checkpoint) at addr 0.
#[test]
fn regression_1ebdb1a6_post_recovery_writes() {
    use Step::*;
    run_scenario(vec![
        Checkpoint,
        Write { addr: 0, len: 1, fill: 1 },
        Checkpoint,
        Crash,
        Checkpoint,
        Write { addr: 0, len: 1, fill: 0 },
        Write { addr: 0, len: 1, fill: 0 },
        Write { addr: 0, len: 1, fill: 0 },
        Write { addr: 0, len: 1, fill: 0 },
        Crash,
        Write { addr: 0, len: 1, fill: 0 },
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline invariant: recovery == last completed checkpoint.
    #[test]
    fn recovery_restores_last_completed_checkpoint(
        steps in proptest::collection::vec(step_strategy(), 1..60)
    ) {
        run_scenario(steps);
    }

    /// Writes never leak into the recovered image without a completed
    /// checkpoint, regardless of how much time passes *without* one.
    #[test]
    fn uncheckpointed_writes_never_survive(
        writes in proptest::collection::vec(
            (0u64..8 * 4096, 1usize..64, any::<u8>()), 1..30),
        wait in 0u64..10_000_000,
    ) {
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut now = Cycle::ZERO;
        for (addr, len, fill) in &writes {
            let data = vec![*fill; *len];
            now = now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now));
        }
        now += Cycle::new(wait);
        let report = sys.crash_and_recover(now);
        prop_assert_eq!(report.recovered_checkpoints, 0);
        for (addr, len, _) in writes {
            let mut buf = vec![0u8; len];
            sys.load_bytes(PhysAddr::new(addr), &mut buf, now);
            prop_assert!(buf.iter().all(|&b| b == 0),
                "uncheckpointed write at {:#x} survived a crash", addr);
        }
    }

    /// A completed checkpoint followed by any amount of overwriting is
    /// always recoverable bit-exactly.
    #[test]
    fn completed_checkpoint_is_durable(
        first in proptest::collection::vec((0u64..4 * 4096, any::<u8>()), 1..40),
        second in proptest::collection::vec((0u64..4 * 4096, any::<u8>()), 0..40),
    ) {
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut now = Cycle::ZERO;
        for (addr, fill) in &first {
            now = now.max(sys.store_bytes(PhysAddr::new(*addr), &[*fill], now));
        }
        now = sys.force_checkpoint(now);
        now = sys.drain(now); // checkpoint completes
        // Overwrite with the second batch, but never checkpoint it.
        for (addr, fill) in &second {
            now = now.max(sys.store_bytes(PhysAddr::new(*addr), &[*fill], now));
        }
        let _ = sys.crash_and_recover(now);
        // Rebuild the expected image from the first batch only.
        let mut expected: HashMap<u64, u8> = HashMap::new();
        for (addr, fill) in first {
            expected.insert(addr, fill);
        }
        for (&addr, &want) in &expected {
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(addr), &mut buf, now);
            prop_assert_eq!(buf[0], want);
        }
    }

    /// Double crash: recovering twice (with no writes in between) is
    /// idempotent.
    #[test]
    fn recovery_is_idempotent(
        writes in proptest::collection::vec((0u64..4 * 4096, any::<u8>()), 1..30),
    ) {
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut now = Cycle::ZERO;
        for (addr, fill) in &writes {
            now = now.max(sys.store_bytes(PhysAddr::new(*addr), &[*fill], now));
        }
        now = sys.drain(now);
        let _ = sys.crash_and_recover(now);
        let mut first_image = Vec::new();
        for (addr, _) in &writes {
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(*addr), &mut buf, now);
            first_image.push(buf[0]);
        }
        let _ = sys.crash_and_recover(now + Cycle::new(1));
        for ((addr, _), want) in writes.iter().zip(first_image) {
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(*addr), &mut buf, now);
            prop_assert_eq!(buf[0], want, "second recovery diverged at {:#x}", addr);
        }
    }
}
