//! Accounting-consistency tests: the statistics the figures are built from
//! must agree with the device-level ground truth.
//!
//! Every byte the controller claims to have written to NVM (classified as
//! CPU / checkpoint / migration for Figure 8) must correspond to bytes the
//! NVM device actually transferred, and likewise for DRAM — otherwise the
//! traffic breakdowns in EXPERIMENTS.md would be fiction.

use thynvm::baselines::{Journaling, ShadowPaging};
use thynvm::cache::CoreModel;
use thynvm::core::ThyNvm;
use thynvm::types::{MemorySystem, SystemConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};

#[test]
fn thynvm_nvm_write_classes_track_device_bytes() {
    // The Figure 8 classes count *logical* bytes (an 8 B commit record, a
    // metadata table of exactly N×8 B), while the device transfers 64 B
    // burst granules and the prioritized CPU-state persist bypasses the
    // bank model (§4.4 note in controller.rs). Those per-checkpoint
    // constants bound the divergence to well under 1 %.
    let cfg = SystemConfig::paper();
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut sys = ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        core.run_trace(micro.events(40_000), &mut sys);
        let claimed = MemorySystem::stats(&sys).nvm_write_bytes_total() as f64;
        let device = sys.nvm_device().stats().write_bytes as f64;
        let ratio = claimed / device;
        assert!(
            (0.99..1.03).contains(&ratio),
            "{pattern:?}: claimed {claimed} B vs device {device} B (ratio {ratio:.4})"
        );
    }
}

#[test]
fn thynvm_dram_write_bytes_match_device() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Sliding);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(40_000), &mut sys);
    assert_eq!(
        MemorySystem::stats(&sys).dram_write_bytes,
        sys.dram_device().stats().write_bytes,
    );
}

#[test]
fn thynvm_read_bytes_match_device() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(30_000), &mut sys);
    let stats = MemorySystem::stats(&sys).clone();
    assert_eq!(stats.nvm_read_bytes, sys.nvm_device().stats().read_bytes);
    assert_eq!(stats.dram_read_bytes, sys.dram_device().stats().read_bytes);
}

#[test]
fn journaling_nvm_accounting_tracks_device() {
    // Only the 8 B-logical / 64 B-burst commit record diverges per flush.
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let mut sys = Journaling::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(40_000), &mut sys);
    let claimed = MemorySystem::stats(&sys).nvm_write_bytes_total();
    let device = sys.nvm_device().stats().write_bytes;
    let flushes = MemorySystem::stats(&sys).epochs_completed;
    assert_eq!(claimed + flushes * 56, device, "commit record padding only");
}

#[test]
fn shadow_paging_nvm_accounting_tracks_device() {
    // Only the 8 B-logical / 64 B-burst root-pointer write diverges.
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Streaming);
    let mut sys = ShadowPaging::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(40_000), &mut sys);
    let claimed = MemorySystem::stats(&sys).nvm_write_bytes_total();
    let device = sys.nvm_device().stats().write_bytes;
    let flushes = MemorySystem::stats(&sys).epochs_completed;
    assert_eq!(claimed + flushes * 56, device, "root pointer padding only");
}

#[test]
fn stall_shares_never_exceed_execution_time() {
    let cfg = SystemConfig::paper();
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut sys = ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        let end = core.run_trace(micro.events(30_000), &mut sys);
        let stats = MemorySystem::stats(&sys);
        assert!(
            stats.ckpt_stall_cycles <= end,
            "{pattern:?}: stall {} exceeds run {}",
            stats.ckpt_stall_cycles,
            end
        );
        // Busy time is bounded by #checkpoints × run length, and each
        // individual job fits inside the run (they never overlap).
        assert!(stats.ckpt_busy_cycles <= end, "{pattern:?}: busy exceeds run");
    }
}

#[test]
fn service_cycles_accumulate_and_are_bounded_by_the_run() {
    // `service_cycles` sums per-request (done − issue) latencies; it must
    // grow whenever the controller serves traffic and can never exceed
    // #accesses × run length (each request completes within the run).
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    let end = core.run_trace(micro.events(30_000), &mut sys);
    let stats = MemorySystem::stats(&sys);
    assert!(stats.service_cycles.raw() > 0, "traffic was served but no latency accrued");
    let accesses = stats.total_accesses();
    assert!(accesses > 0);
    assert!(
        stats.service_cycles.raw() <= accesses.saturating_mul(end.raw()),
        "aggregate service latency {} exceeds accesses×run bound",
        stats.service_cycles
    );
}

#[test]
fn epoch_histograms_agree_with_checkpoint_count() {
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Random);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(40_000), &mut sys);
    let checkpoints = MemorySystem::stats(&sys).epochs_completed;
    assert_eq!(sys.epoch_length_histogram().count(), checkpoints);
    assert_eq!(sys.job_duration_histogram().count(), checkpoints);
}

#[test]
fn request_counts_are_conserved_through_the_platform() {
    // Every memory instruction the core executes is either absorbed by the
    // caches or becomes controller traffic; controller accesses can never
    // exceed core accesses plus writebacks/flush traffic.
    let cfg = SystemConfig::paper();
    let micro = MicroConfig::new(MicroPattern::Sliding);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(micro.events(25_000), &mut sys);
    let [(l1_hits, l1_misses), _, (_, l3_misses)] = core.hierarchy().hit_miss_counts();
    assert_eq!(
        l1_hits + l1_misses,
        25_000,
        "every access probes L1 exactly once for single-block requests"
    );
    // Controller reads = L3 read misses (fetches).
    assert_eq!(MemorySystem::stats(&sys).reads, l3_misses);
}

#[test]
fn security_ledger_conserves_and_tracks_device_traffic() {
    // The secure mode's tamper ledger must conserve (every detection is
    // classified exactly once and resolved exactly once), its metadata
    // persists must be real device traffic, and a tamper-and-crash storm
    // must keep the ledger consistent.
    use thynvm::core::TamperFault;
    use thynvm::types::{Cycle, PhysAddr, SecurityConfig};

    let mut cfg = SystemConfig::paper();
    cfg.security = SecurityConfig::hardened();
    cfg.validate().expect("valid secure config");
    let micro = MicroConfig::new(MicroPattern::Random);
    let mut sys = ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    let end = core.run_trace(micro.events(20_000), &mut sys);

    // Crypto work happened and the metadata persists are accounted in the
    // device's checkpoint-class write traffic.
    let s = MemorySystem::stats(&sys).security;
    assert!(s.blocks_encrypted > 0);
    assert!(s.counter_persists > 0);
    let meta_bytes = s.counter_bytes + s.tree_bytes + 64 * s.root_persists;
    let ckpt_bytes = MemorySystem::stats(&sys).nvm_write_bytes_ckpt;
    assert!(
        meta_bytes <= ckpt_bytes,
        "security metadata ({meta_bytes} B) exceeds checkpoint traffic ({ckpt_bytes} B)"
    );

    // A tamper-and-crash storm: ledger conservation after every recovery.
    let mut t = end;
    for (i, tamper) in [
        TamperFault::ClastData { addr: 0 },
        TamperFault::StaleCounterTable,
        TamperFault::TornRootMeta,
    ]
    .into_iter()
    .enumerate()
    {
        t = sys.store_bytes(PhysAddr::new(0), &[i as u8 + 1; 64], t);
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        sys.inject_tamper(tamper);
        let report = sys.crash_and_recover(t);
        t = t + report.recovery_cycles + Cycle::new(1);
        let s = MemorySystem::stats(&sys).security;
        assert_eq!(s.classified_total(), s.tampers_detected, "step {i}: {s:?}");
        assert_eq!(s.detections_accounted(), s.tampers_detected, "step {i}: {s:?}");
        assert!(s.tampers_injected + s.classified_media >= s.tampers_detected, "step {i}");
    }
    let s = MemorySystem::stats(&sys).security;
    assert_eq!(s.tampers_injected, 3);
    assert_eq!(s.tampers_detected, 3);
    assert_eq!(s.classified_tamper, 2, "forged data + stale table");
    assert_eq!(s.classified_torn, 1, "torn root metadata");
    assert_eq!(s.verify_fallbacks, 3);
    assert_eq!(s.unrecoverable, 0);
}

#[test]
fn wpq_ledger_conserves_against_device_traffic() {
    // Every NVM write the controller issues passes through the armed
    // persist buffer exactly once (plus one commit marker per checkpoint),
    // so the ledger must balance against itself after any mix of fences,
    // lazy drains and crash-time partial flushes — and nothing may be
    // counted while the buffer is disabled.
    let mut cfg = SystemConfig::small_test();
    cfg.wpq = thynvm::types::PersistBufferConfig::armed();
    cfg.validate().expect("valid armed config");
    let mut sys = ThyNvm::new(cfg);
    let mut t = thynvm::types::Cycle::ZERO;
    for i in 0..32u64 {
        t = sys.store_bytes(thynvm::types::PhysAddr::new((i % 8) * 64), &[i as u8; 64], t);
        if i % 10 == 9 {
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        if i % 16 == 15 {
            let report = sys.crash_and_recover(t);
            t = t + report.recovery_cycles + thynvm::types::Cycle::new(1);
        }
    }
    let w = MemorySystem::stats(&sys).wpq;
    assert!(w.enqueued > 0, "armed buffer saw no traffic");
    assert_eq!(
        w.enqueued,
        w.drained + w.dropped_at_crash + w.outstanding(),
        "WPQ ledger out of balance: {w:?}"
    );
    // Three checkpoints, each with at least a data fence and a commit
    // fence; the health-override seal may add more.
    assert!(w.fences >= 6, "missing §4.4 fences: {w:?}");
    // Fences drain to the last retire cycle; the serialized checkpoint
    // timeline keeps that at or before `now`, so stalls stay bounded by
    // the total fence count times a burst.
    assert!(w.fence_stall_cycles.raw() <= w.fences * 1_000, "{w:?}");
    assert!(w.reorder_window_max <= u64::from(cfg.wpq.capacity), "{w:?}");

    // Disabled twin: same traffic, empty ledger.
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let mut t = thynvm::types::Cycle::ZERO;
    for i in 0..8u64 {
        t = sys.store_bytes(thynvm::types::PhysAddr::new(i * 64), &[1; 64], t);
    }
    t = sys.force_checkpoint(t);
    sys.drain(t);
    assert!(!MemorySystem::stats(&sys).wpq.any(), "disabled buffer counted traffic");
}
