//! Exhaustive crash-point sweep validated against the persistence oracle.
//!
//! A fixed, deterministic workload runs once without faults to learn the
//! controller's checkpoint timeline and to build a [`PersistenceOracle`]
//! (the pure three-version model of §3.2/§4.5: `W_active` lost, `C_last`
//! wins iff its commit record persisted, else `C_penult`). The sweep then
//! replays the identical workload on a fresh controller once per crash
//! cycle in a window spanning a complete checkpoint — execution phase,
//! block drain, BTT persist, page writebacks, finalize, and the execution
//! phase after — and diffs the recovered image byte-for-byte against the
//! oracle's prediction for that exact cycle.
//!
//! Acceptance (ISSUE): at least 1000 distinct injected crash cycles, every
//! one recovering to an oracle-identical `C_last` or `C_penult` image.

use std::collections::BTreeSet;

use thynvm::core::{InjectedCrash, MediaFault, PersistenceOracle, ThyNvm};
use thynvm::types::{
    CkptPhase, Cycle, MediaFaultConfig, MemStats, MemorySystem, PhysAddr, RecoveryOutcome,
    SystemConfig,
};

/// One step of the deterministic workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `addr`.
    Write { addr: u64, len: usize, fill: u8 },
    /// End the epoch (checkpoint start; execution overlaps the job).
    Checkpoint,
    /// Let simulated time pass.
    Advance { cycles: u64 },
}

const PAGE: u64 = 4096;

/// A fixed workload exercising both checkpointing schemes across five
/// epochs: dense page-local writes (page writeback / PTT) plus scattered
/// block-aligned writes (block remapping / BTT), with overwrites so each
/// checkpoint image is distinct.
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0u64..5 {
        // Dense: rewrite the same four pages several times every epoch —
        // hot enough to cross the §4.2 promotion threshold, so these pages
        // enter the page-writeback scheme and the checkpoint has a real
        // PageWriteback phase.
        for rep in 0..4u64 {
            for page in 0..4u64 {
                for blk in 0..8u64 {
                    ops.push(Op::Write {
                        addr: page * PAGE + blk * 64,
                        len: 64,
                        fill: (1 + epoch * 40 + page * 9 + blk + rep * 3) as u8,
                    });
                }
            }
        }
        // Sparse: a fresh scatter of single blocks every epoch (block-cold).
        for i in 0..12u64 {
            let block = (i * 17 + epoch * 5) % 96;
            ops.push(Op::Write {
                addr: 8 * PAGE + block * 64,
                len: 8,
                fill: (100 + epoch * 13 + i) as u8,
            });
        }
        ops.push(Op::Checkpoint);
        // Give the early checkpoints room to complete; keep the later ones
        // overlapped with the next epoch's execution.
        if epoch < 2 {
            ops.push(Op::Advance { cycles: 400_000 });
        }
    }
    // Tail: time for the last checkpoint, then uncheckpointed W_active
    // writes that no recovery may ever surface.
    ops.push(Op::Advance { cycles: 2_000_000 });
    for blk in 0..8u64 {
        ops.push(Op::Write { addr: blk * 64, len: 64, fill: 0xEE });
    }
    ops
}

/// Applies one op, returning the advanced timeline.
fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, len, fill } => {
            let data = vec![*fill; *len];
            now.max(sys.store_bytes(PhysAddr::new(*addr), &data, now))
        }
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
        Op::Advance { cycles } => now + Cycle::new(*cycles),
    }
}

/// Checkpoint timeline learned from the fault-free reference run.
#[derive(Debug, Clone, Copy)]
struct CkptTimes {
    started: Cycle,
    drained_at: Cycle,
    btt_at: Cycle,
    pages_at: Cycle,
    done_at: Cycle,
}

/// Runs the workload fault-free, feeding the oracle; returns the oracle,
/// each checkpoint's timeline, and the end-of-workload cycle.
fn reference_run(ops: &[Op], cfg: SystemConfig) -> (PersistenceOracle, Vec<CkptTimes>, Cycle) {
    let mut sys = ThyNvm::new(cfg);
    let mut oracle = PersistenceOracle::new();
    let mut ckpts = Vec::new();
    let mut now = Cycle::ZERO;
    for op in ops {
        if let Op::Write { addr, len, fill } = op {
            oracle.record_write(*addr, &vec![*fill; *len]);
        }
        let before = now;
        now = apply(&mut sys, op, now);
        if matches!(op, Op::Checkpoint) {
            // The image is cut off at initiation; the checkpoint only
            // counts for crashes at or after its completion cycle.
            let times = match sys.epoch_state().job.as_ref() {
                Some(j) => CkptTimes {
                    started: j.started,
                    drained_at: j.drained_at,
                    btt_at: j.btt_at,
                    pages_at: j.pages_at,
                    done_at: j.done_at,
                },
                // Round retired synchronously within the call.
                None => CkptTimes {
                    started: before,
                    drained_at: now,
                    btt_at: now,
                    pages_at: now,
                    done_at: now,
                },
            };
            oracle.record_checkpoint(times.started, times.done_at);
            ckpts.push(times);
        }
    }
    (oracle, ckpts, now)
}

/// Replays the workload with a crash armed at `at` (and optionally a
/// latent media fault injected up front); returns the crash record (firing
/// at end-of-trace if no op reached the armed cycle) and the controller,
/// post-recovery.
fn replay_with_crash(
    ops: &[Op],
    cfg: SystemConfig,
    inject: Option<MediaFault>,
    at: Cycle,
) -> (InjectedCrash, ThyNvm) {
    let mut sys = ThyNvm::new(cfg);
    if let Some(fault) = inject {
        sys.inject_media_fault(fault);
    }
    sys.arm_crash_point(at);
    let mut now = Cycle::ZERO;
    for op in ops {
        now = apply(&mut sys, op, now);
        if let Some(crash) = sys.take_crash_report() {
            return (crash, sys);
        }
    }
    // The armed cycle lies beyond every request's timeline: power fails
    // with the system idle at the end of the trace (poll strictly past the
    // armed cycle — power fails at its *end*).
    sys.poll_crash(now.max(at) + Cycle::new(1));
    let crash = sys.take_crash_report().expect("armed crash must fire");
    (crash, sys)
}

/// Byte-for-byte oracle check of one injected crash. Panics with a
/// diagnostic on the first divergent byte.
fn verify_against_oracle(oracle: &PersistenceOracle, crash: &InjectedCrash, sys: &mut ThyNvm) {
    let at = crash.event.cycle;
    let t = crash.resume_at;
    let diffs = oracle.diff(at, |addr| {
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
        buf[0]
    });
    assert!(
        diffs.is_empty(),
        "crash at {at} (phase {}, outcome {}): {} divergent byte(s), first {:?}",
        crash.event.phase,
        crash.event.outcome,
        diffs.len(),
        diffs.first()
    );
    assert_eq!(
        crash.event.outcome,
        oracle.expected_outcome_at(at),
        "crash at {at}: controller outcome disagrees with the §4.5 label"
    );
}

/// The tentpole sweep: ≥ 1000 distinct crash cycles across a window
/// spanning a complete checkpoint, each recovery oracle-identical.
#[test]
fn sweep_every_cycle_across_a_checkpoint_recovers_oracle_identical() {
    let ops = workload();
    let (oracle, ckpts, _end) = reference_run(&ops, SystemConfig::small_test());
    assert_eq!(ckpts.len(), 5, "workload must reach all five checkpoints");

    // Sweep across the third checkpoint: by then both schemes carry state
    // from two completed checkpoints, so C_penult is a real image rather
    // than zeroes.
    let target = ckpts[2];
    let lead = Cycle::new(300); // execution phase before the job
    let tail = Cycle::new(300); // execution phase after completion
    let window_start = target.started.saturating_sub(lead);
    let window_end = target.done_at + tail;
    let span = window_end.raw() - window_start.raw();

    // Inject at every cycle when the window is small; otherwise stride so
    // the sweep stays ~2000 points but always hit every phase boundary
    // (and its neighbours) exactly.
    let stride = (span / 2000).max(1);
    let mut cycles: BTreeSet<u64> = (window_start.raw()..=window_end.raw())
        .step_by(usize::try_from(stride).unwrap())
        .collect();
    for edge in [
        target.started,
        target.drained_at,
        target.btt_at,
        target.pages_at,
        target.done_at,
    ] {
        for c in edge.raw().saturating_sub(1)..=edge.raw() + 1 {
            if (window_start.raw()..=window_end.raw()).contains(&c) {
                cycles.insert(c);
            }
        }
    }
    assert!(
        cycles.len() >= 1000,
        "sweep window too narrow: {} cycles (span {span}, stride {stride})",
        cycles.len()
    );

    let mut phases_seen = BTreeSet::new();
    let mut outcomes_seen = BTreeSet::new();
    for &c in &cycles {
        let (crash, mut sys) = replay_with_crash(&ops, SystemConfig::small_test(), None, Cycle::new(c));
        assert_eq!(crash.event.cycle, Cycle::new(c), "crash must run as of the armed cycle");
        verify_against_oracle(&oracle, &crash, &mut sys);
        assert_eq!(sys.stats().crashes_injected, 1);
        phases_seen.insert(format!("{}", crash.event.phase));
        outcomes_seen.insert(crash.event.outcome);
    }

    // The window must have genuinely spanned the checkpoint: every
    // Figure 6(b) phase with a nonzero window in the reference timeline
    // was hit, plus execution on both sides.
    let mut expected_phases = BTreeSet::new();
    expected_phases.insert(format!("{}", CkptPhase::Execution));
    for (phase, lo, hi) in [
        (CkptPhase::DrainBlocks, target.started, target.drained_at),
        (CkptPhase::PersistBtt, target.drained_at, target.btt_at),
        (CkptPhase::PageWriteback, target.btt_at, target.pages_at),
        (CkptPhase::Finalize, target.pages_at, target.done_at),
    ] {
        if lo < hi {
            expected_phases.insert(format!("{phase}"));
        }
    }
    assert!(
        phases_seen.is_superset(&expected_phases),
        "phases hit {phases_seen:?} missing some of {expected_phases:?}"
    );
    assert!(expected_phases.len() >= 4, "checkpoint degenerate: {expected_phases:?}");
    assert!(outcomes_seen.contains(&RecoveryOutcome::CLast));
    assert!(outcomes_seen.contains(&RecoveryOutcome::CPenult));
}

/// Crashing in the execution tail — after the final checkpoint completed,
/// with fresh uncheckpointed writes in flight — always recovers `C_last`
/// and never surfaces the `0xEE` tail writes.
#[test]
fn tail_crashes_recover_clast_and_never_leak_wactive() {
    let ops = workload();
    let (oracle, ckpts, end) = reference_run(&ops, SystemConfig::small_test());
    let last_done = ckpts.last().unwrap().done_at;
    let span = end.raw().saturating_sub(last_done.raw()).max(64);
    for i in 0..64u64 {
        let c = last_done.raw() + 1 + i * (span / 64).max(1);
        let (crash, mut sys) = replay_with_crash(&ops, SystemConfig::small_test(), None, Cycle::new(c));
        verify_against_oracle(&oracle, &crash, &mut sys);
        assert_eq!(crash.event.outcome, RecoveryOutcome::CLast);
        // Spot-check: the W_active tail fill never survives.
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(0), &mut buf, crash.resume_at);
        assert_ne!(buf[0], 0xEE, "uncheckpointed tail write leaked at crash {c}");
    }
}

/// Crashes injected before the first checkpoint completes recover the
/// all-zero initial image (`C_penult` chain bottoms out at zeroes).
#[test]
fn crashes_before_first_commit_recover_zeroes() {
    let ops = workload();
    let (oracle, ckpts, _) = reference_run(&ops, SystemConfig::small_test());
    let first_done = ckpts[0].done_at.raw();
    let stride = (first_done / 200).max(1);
    for c in (0..first_done).step_by(usize::try_from(stride).unwrap()) {
        let (crash, mut sys) = replay_with_crash(&ops, SystemConfig::small_test(), None, Cycle::new(c));
        verify_against_oracle(&oracle, &crash, &mut sys);
        assert_eq!(crash.report.recovered_checkpoints, 0, "crash at {c}");
    }
}

/// Configuration for the media-fault sweep: hardened integrity protection
/// with wear faults armed (low stuck-at threshold), but no random transient
/// flips — wear-driven stuck cells are healed operationally (retry, remap,
/// scrub), so they never change recovery outcomes and the pure oracle
/// stays exact.
fn media_sweep_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.media = MediaFaultConfig::hardened();
    cfg.media.stuck_at_threshold = 24;
    cfg.validate().expect("valid media sweep config");
    cfg
}

/// Combined sweep (ISSUE satellite): crash cycles × latent media faults —
/// torn commit record, `C_last` data bit flip, corrupted PTT metadata.
/// Each recovery must match the *extended* oracle: when a completed
/// checkpoint exists the injected fault voids `C_last` and the recovered
/// image must equal `C_penult` byte-for-byte, labeled as an integrity
/// fallback; before any commit the plain oracle applies. Afterwards all
/// four fault kinds must have been observed in the merged stats.
#[test]
fn combined_media_fault_sweep_matches_extended_oracle() {
    let ops = workload();
    let cfg = media_sweep_cfg();
    // Reference run under the SAME config: integrity checking perturbs
    // metadata sizes, so the checkpoint timeline differs from the plain
    // sweep's. The latent faults themselves do not perturb timing.
    let (oracle, ckpts, _end) = reference_run(&ops, cfg);
    assert_eq!(ckpts.len(), 5);

    let target = ckpts[2];
    let window_start = target.started.saturating_sub(Cycle::new(200));
    let window_end = target.done_at + Cycle::new(200);
    let span = window_end.raw() - window_start.raw();
    let stride = (span / 40).max(1);
    let cycles: Vec<u64> =
        (window_start.raw()..=window_end.raw()).step_by(usize::try_from(stride).unwrap()).collect();
    assert!(cycles.len() >= 40, "sweep window too narrow: {}", cycles.len());

    let faults = [
        MediaFault::TornCommitRecord,
        MediaFault::ClastBitFlip { addr: 0 },
        MediaFault::CorruptPttMetadata,
    ];
    let mut merged = MemStats::default();
    let mut fallbacks_seen = 0u64;
    for fault in faults {
        for &c in &cycles {
            let (crash, mut sys) = replay_with_crash(&ops, cfg, Some(fault), Cycle::new(c));
            let at = crash.event.cycle;
            let expected = oracle.expected_outcome_with_corrupt_clast(at);
            assert_eq!(
                crash.event.outcome, expected,
                "crash at {at} with {fault:?}: outcome disagrees with extended oracle"
            );
            let t = crash.resume_at;
            let diffs = oracle.diff_with_corrupt_clast(at, |addr| {
                let mut buf = [0u8; 1];
                sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
                buf[0]
            });
            assert!(
                diffs.is_empty(),
                "crash at {at} with {fault:?}: {} divergent byte(s), first {:?}",
                diffs.len(),
                diffs.first()
            );
            if crash.report.integrity_fallback {
                fallbacks_seen += 1;
                assert_eq!(expected, RecoveryOutcome::CPenultIntegrityFallback);
            }
            merged.merge(sys.stats());
        }
    }

    assert!(fallbacks_seen > 0, "sweep never exercised an integrity fallback");
    let m = merged.media;
    assert!(m.torn_writes > 0, "no torn-write faults observed: {m:?}");
    assert!(m.bit_flips > 0, "no bit-flip faults observed: {m:?}");
    assert!(m.meta_corruptions > 0, "no metadata faults observed: {m:?}");
    assert!(m.stuck_faults > 0, "wear model never created a stuck cell: {m:?}");
    assert!(m.crc_checked_blocks > 0);
}

/// A torn commit record always lands in `C_penult`: for every crash cycle
/// after the first commit, recovery with [`MediaFault::TornCommitRecord`]
/// armed must report an integrity fallback and restore the penultimate
/// image — never the (torn) last one.
#[test]
fn torn_commit_record_always_recovers_cpenult() {
    let ops = workload();
    let cfg = media_sweep_cfg();
    let (oracle, ckpts, end) = reference_run(&ops, cfg);
    let first_done = ckpts[0].done_at;
    let span = end.raw() - first_done.raw();
    for i in 0..48u64 {
        let c = first_done.raw() + 1 + i * (span / 48).max(1);
        let (crash, mut sys) =
            replay_with_crash(&ops, cfg, Some(MediaFault::TornCommitRecord), Cycle::new(c));
        let at = crash.event.cycle;
        if crash.report.recovered_checkpoints == 0 && !crash.report.integrity_fallback {
            // The crash replay landed before any commit (timeline shifts
            // are impossible here, but keep the guard explicit).
            continue;
        }
        assert!(
            crash.report.integrity_fallback,
            "crash at {at}: torn commit record must void C_last"
        );
        assert_eq!(crash.event.outcome, RecoveryOutcome::CPenultIntegrityFallback);
        let t = crash.resume_at;
        let diffs = oracle.diff_with_corrupt_clast(at, |addr| {
            let mut buf = [0u8; 1];
            sys.load_bytes(PhysAddr::new(addr), &mut buf, t);
            buf[0]
        });
        assert!(diffs.is_empty(), "crash at {at}: {} divergent byte(s)", diffs.len());
    }
}
