//! The graceful-degradation health ladder.
//!
//! PRs 1–7 gave the controller a deep *per-event* fault stack — CRC retries,
//! bad-block remaps, DRAM poison quarantine, tamper detection — but no
//! notion of *cumulative* health: a drained spare pool degenerates into
//! unbounded per-read retry latency with no posture change, and wear accrues
//! silently. [`HealthMonitor`] closes that gap with a hysteresis-driven
//! degradation ladder
//!
//! ```text
//! Healthy → Wounded → ReadOnly → FailSafe
//! ```
//!
//! fed only by signals the controller already observes ([`HealthSignals`]):
//! spare-pool occupancy, sliding-window CRC-retry and ECC-refetch rates,
//! the scrubber's backlog of un-remapped stuck cells, WAL redos, outstanding
//! DRAM poison, and tamper detections.
//!
//! # Rung postures (enforced by the controller)
//!
//! * **Wounded** — emergency-early checkpoints (the epoch timer divides by
//!   [`HealthConfig::emergency_divisor`]) and a cycle-budgeted scrubber, so
//!   scrubbing can no longer starve foreground traffic.
//! * **ReadOnly** — new stores are rejected with
//!   [`thynvm_types::Error::Degraded`]; CRC-verified loads are still served
//!   and the in-flight checkpoint completes.
//! * **FailSafe** — only integrity-verified data is served and the rung
//!   *never promotes* (a detected forgery is not something time heals).
//!
//! # Hysteresis
//!
//! Demotion is immediate and may skip rungs — the ladder reacts to the worst
//! firing signal at once. Promotion is deliberately slow: one rung per
//! [`HealthConfig::promote_clean_epochs`] *consecutive* clean epochs, and any
//! firing signal resets the clean streak. This asymmetry is what keeps the
//! ladder monotone under a flapping signal instead of oscillating with it.
//!
//! # Crash consistency
//!
//! The monitor itself is volatile. The controller persists the current rung
//! in a 64 B record alongside each checkpoint's commit record and rotates it
//! with the images (`C_last`/`C_penult`), so recovery rehydrates the rung
//! that was durable *with the image it restored* — see
//! [`HealthMonitor::rehydrate`]. Window state and clean-epoch streaks are
//! deliberately not persisted: they re-baseline from the durable counters.

use std::collections::VecDeque;

use thynvm_types::{HealthConfig, HealthRung, HealthStats};

/// One epoch's worth of observable health inputs, sampled by the controller
/// at job retirement from state it already maintains. All `*_total` fields
/// are *cumulative* counters (the monitor differences them internally);
/// `scrub_backlog`, `outstanding_poison` and the spare-pool pair are current
/// levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSignals {
    /// Spare-pool slots handed out so far.
    pub spares_used: u64,
    /// Spare-pool capacity ([`thynvm_types::MediaFaultConfig::spare_blocks`]).
    pub spares_total: u64,
    /// Cumulative media CRC-retry count ([`thynvm_types::MediaStats::retries`]).
    pub retries_total: u64,
    /// Cumulative DRAM ECC pressure: corrected flips plus refetch retries
    /// ([`thynvm_types::DramStats::corrected_flips`] +
    /// [`thynvm_types::DramStats::refetch_retries`]). A corrected flip costs
    /// no traffic but consumes SEC-DED margin — it is the earliest wear
    /// signal the controller sees.
    pub refetches_total: u64,
    /// Cumulative spare-pool-exhausted events
    /// ([`thynvm_types::MediaStats::spare_exhausted`]).
    pub spare_exhausted_total: u64,
    /// Cumulative WAL redos ([`thynvm_types::MediaStats::wal_redos`]).
    pub wal_redos_total: u64,
    /// Stuck cells the scrubber has not (and, with spares gone, cannot)
    /// remap away — the healing backlog.
    pub scrub_backlog: u64,
    /// Outstanding poisoned 64 B DRAM blocks.
    pub outstanding_poison: u64,
    /// Cumulative tamper detections
    /// ([`thynvm_types::SecurityStats::tampers_detected`]).
    pub tampers_detected_total: u64,
}

/// Per-epoch deltas of the cumulative signals, kept in the sliding window.
#[derive(Debug, Clone, Copy, Default)]
struct EpochDeltas {
    retries: u64,
    refetches: u64,
    wal_redos: u64,
}

/// The hysteresis-driven degradation ladder (see the [module docs](self)).
///
/// The monitor is pure policy: it owns no devices and charges no cycles. The
/// controller feeds it [`HealthSignals`] once per retired checkpoint and
/// enforces whatever posture the resulting rung demands.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    rung: HealthRung,
    /// Per-epoch deltas of the windowed signals, newest last; bounded by
    /// `cfg.window_epochs`.
    window: VecDeque<EpochDeltas>,
    /// Consecutive evaluations with no firing signal.
    clean_epochs: u32,
    /// Cumulative-counter baselines from the previous evaluation.
    prev: HealthSignals,
}

/// Ladder position as a count of rungs below `Healthy`, for step accounting.
fn level(r: HealthRung) -> u64 {
    match r {
        HealthRung::Healthy => 0,
        HealthRung::Wounded => 1,
        HealthRung::ReadOnly => 2,
        HealthRung::FailSafe => 3,
    }
}

/// The rung one step healthier than `r` (saturating at `Healthy`).
fn promoted(r: HealthRung) -> HealthRung {
    match r {
        HealthRung::Healthy | HealthRung::Wounded => HealthRung::Healthy,
        HealthRung::ReadOnly => HealthRung::Wounded,
        HealthRung::FailSafe => HealthRung::ReadOnly,
    }
}

impl HealthMonitor {
    /// Creates a monitor at `Healthy` with empty history. `cfg` must have
    /// passed [`thynvm_types::SystemConfig::validate`].
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            window: VecDeque::with_capacity(cfg.window_epochs as usize),
            cfg,
            rung: HealthRung::Healthy,
            clean_epochs: 0,
            prev: HealthSignals::default(),
        }
    }

    /// The current ladder rung.
    pub fn rung(&self) -> HealthRung {
        self.rung
    }

    /// Consecutive clean evaluations accumulated toward the next promotion.
    pub fn clean_epochs(&self) -> u32 {
        self.clean_epochs
    }

    /// The rung demanded by this epoch's signals alone (ignoring the current
    /// rung and hysteresis): the worst rung any firing signal maps to.
    fn target(&self, s: &HealthSignals, deltas: EpochDeltas) -> HealthRung {
        let c = &self.cfg;
        let mut target = HealthRung::Healthy;
        let mut at_least = |r: HealthRung| {
            if r > target {
                target = r;
            }
        };

        // Wounded: the device is consuming its margins.
        let occupancy_pct =
            s.spares_used.saturating_mul(100).checked_div(s.spares_total).unwrap_or(0);
        if occupancy_pct >= u64::from(c.wounded_spare_pct) {
            at_least(HealthRung::Wounded);
        }
        let (mut retries, mut refetches, mut redos) = (deltas.retries, deltas.refetches, deltas.wal_redos);
        for d in &self.window {
            retries += d.retries;
            refetches += d.refetches;
            redos += d.wal_redos;
        }
        if retries >= c.wounded_retry_rate {
            at_least(HealthRung::Wounded);
        }
        if refetches >= c.wounded_refetch_rate {
            at_least(HealthRung::Wounded);
        }

        // ReadOnly: durability of *new* data can no longer be promised.
        if s.spare_exhausted_total > self.prev.spare_exhausted_total {
            at_least(HealthRung::ReadOnly);
        }
        if s.scrub_backlog >= c.readonly_scrub_backlog && s.spares_used >= s.spares_total {
            at_least(HealthRung::ReadOnly);
        }
        if redos >= c.readonly_wal_redos {
            at_least(HealthRung::ReadOnly);
        }
        if s.outstanding_poison >= c.readonly_poison_blocks {
            at_least(HealthRung::ReadOnly);
        }

        // FailSafe: an integrity verdict, not a rate — any fresh detection.
        if s.tampers_detected_total > self.prev.tampers_detected_total {
            at_least(HealthRung::FailSafe);
        }
        target
    }

    /// One ladder evaluation, fed the current signal sample. Demotion to the
    /// target rung is immediate (and may skip rungs); promotion climbs one
    /// rung per [`HealthConfig::promote_clean_epochs`] consecutive clean
    /// epochs, and `FailSafe` never promotes. Returns the (possibly
    /// unchanged) rung.
    ///
    /// `stats` keeps the conservation ledger: every rung-step downward is a
    /// demotion, every step upward a promotion, so
    /// `promotions <= demotions` always holds.
    pub fn observe_epoch(&mut self, s: &HealthSignals, stats: &mut HealthStats) -> HealthRung {
        stats.evaluations += 1;
        let deltas = EpochDeltas {
            retries: s.retries_total.saturating_sub(self.prev.retries_total),
            refetches: s.refetches_total.saturating_sub(self.prev.refetches_total),
            wal_redos: s.wal_redos_total.saturating_sub(self.prev.wal_redos_total),
        };
        let target = self.target(s, deltas);
        self.window.push_back(deltas);
        while self.window.len() > self.cfg.window_epochs as usize {
            self.window.pop_front();
        }
        self.prev = *s;

        if target > self.rung {
            stats.demotions += level(target) - level(self.rung);
            self.rung = target;
            self.clean_epochs = 0;
        } else if target == HealthRung::Healthy {
            // Clean epoch: accrue toward promotion. FailSafe is sticky — a
            // verified forgery is not something clean epochs wash out.
            self.clean_epochs += 1;
            if self.clean_epochs >= self.cfg.promote_clean_epochs
                && self.rung > HealthRung::Healthy
                && self.rung != HealthRung::FailSafe
            {
                self.rung = promoted(self.rung);
                self.clean_epochs = 0;
                stats.promotions += 1;
            }
        } else {
            // A signal still fires at or below the current rung: the streak
            // breaks, the rung holds.
            self.clean_epochs = 0;
        }
        self.rung
    }

    /// Restores the rung recovery rehydrated from durable state and
    /// re-baselines the cumulative counters at `s`, discarding the volatile
    /// window and clean streak (they were lost with power). Rung-steps
    /// *downward* relative to the pre-crash rung are counted as demotions so
    /// the `promotions <= demotions` ledger survives rehydration; an upward
    /// move (the persisted rung predates a volatile demotion) is not a
    /// promotion and is left uncounted.
    pub fn rehydrate(&mut self, rung: HealthRung, s: &HealthSignals, stats: &mut HealthStats) {
        if rung > self.rung {
            stats.demotions += level(rung) - level(self.rung);
        }
        self.rung = rung;
        self.window.clear();
        self.clean_epochs = 0;
        self.prev = *s;
        stats.rehydrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::HealthConfig;

    fn cfg() -> HealthConfig {
        HealthConfig::hardened()
    }

    fn sig() -> HealthSignals {
        HealthSignals { spares_total: 100, ..Default::default() }
    }

    #[test]
    fn starts_healthy_and_stays_healthy_on_quiet_signals() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        for _ in 0..20 {
            assert_eq!(m.observe_epoch(&sig(), &mut st), HealthRung::Healthy);
        }
        assert_eq!(st.evaluations, 20);
        assert_eq!(st.demotions, 0);
        assert_eq!(st.promotions, 0);
    }

    #[test]
    fn spare_occupancy_wounds_and_hysteresis_promotes_back() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.spares_used = 80; // 80 % >= 75 %
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::Wounded);
        assert_eq!(st.demotions, 1);
        // Pool pressure relieved: promotion needs the full clean streak.
        let clean = sig();
        for i in 1..cfg().promote_clean_epochs {
            assert_eq!(m.observe_epoch(&clean, &mut st), HealthRung::Wounded, "epoch {i}");
        }
        assert_eq!(m.observe_epoch(&clean, &mut st), HealthRung::Healthy);
        assert_eq!(st.promotions, 1);
        assert!(st.promotions <= st.demotions);
    }

    #[test]
    fn firing_signal_resets_the_clean_streak() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.spares_used = 80;
        m.observe_epoch(&s, &mut st);
        // Almost promoted…
        for _ in 1..cfg().promote_clean_epochs {
            m.observe_epoch(&sig(), &mut st);
        }
        // …but the signal fires again: streak resets, rung holds.
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::Wounded);
        assert_eq!(m.clean_epochs(), 0);
        assert_eq!(m.observe_epoch(&sig(), &mut st), HealthRung::Wounded);
    }

    #[test]
    fn windowed_retry_rate_wounds_and_slides_off() {
        let c = cfg();
        let mut m = HealthMonitor::new(c);
        let mut st = HealthStats::default();
        let mut s = sig();
        // One burst of retries equal to the threshold.
        s.retries_total = c.wounded_retry_rate;
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::Wounded);
        // The burst stays in the window (rung holds, streak broken) until
        // `window_epochs` later epochs push it out; then the promotion
        // streak can finally build.
        let mut rungs = Vec::new();
        for _ in 0..(c.window_epochs + c.promote_clean_epochs) {
            rungs.push(m.observe_epoch(&s, &mut st)); // counters flat: delta 0
        }
        assert_eq!(*rungs.last().unwrap(), HealthRung::Healthy);
        // Monotone recovery: Wounded…Wounded then Healthy, never worse.
        assert!(rungs.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn spare_exhaustion_delta_goes_straight_to_readonly() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.spare_exhausted_total = 1;
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::ReadOnly);
        // Demotion skipping Wounded counts both steps.
        assert_eq!(st.demotions, 2);
        // No new exhaustion events: the ladder may climb back.
        for _ in 0..2 * cfg().promote_clean_epochs {
            m.observe_epoch(&s, &mut st);
        }
        assert_eq!(m.rung(), HealthRung::Healthy);
        assert_eq!(st.promotions, 2);
        assert!(st.promotions <= st.demotions);
    }

    #[test]
    fn exhausted_pool_with_backlog_pins_readonly() {
        let c = cfg();
        let mut m = HealthMonitor::new(c);
        let mut st = HealthStats::default();
        let mut s = sig();
        s.spares_used = s.spares_total;
        s.scrub_backlog = c.readonly_scrub_backlog;
        for _ in 0..3 * c.promote_clean_epochs {
            assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::ReadOnly);
        }
        assert_eq!(st.promotions, 0, "a standing condition never promotes");
    }

    #[test]
    fn poison_level_demotes_to_readonly() {
        let c = cfg();
        let mut m = HealthMonitor::new(c);
        let mut st = HealthStats::default();
        let mut s = sig();
        s.outstanding_poison = c.readonly_poison_blocks;
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::ReadOnly);
    }

    #[test]
    fn tamper_detection_is_failsafe_and_sticky() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.tampers_detected_total = 1;
        assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::FailSafe);
        assert_eq!(st.demotions, 3);
        // Decades of clean epochs: FailSafe never promotes.
        for _ in 0..100 {
            assert_eq!(m.observe_epoch(&s, &mut st), HealthRung::FailSafe);
        }
        assert_eq!(st.promotions, 0);
    }

    #[test]
    fn rehydrate_restores_rung_and_rebaselines() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.retries_total = 1_000_000; // huge cumulative history pre-crash
        m.rehydrate(HealthRung::Wounded, &s, &mut st);
        assert_eq!(m.rung(), HealthRung::Wounded);
        assert_eq!(st.rehydrations, 1);
        assert_eq!(st.demotions, 1, "rehydrating downward is a counted demotion");
        // The cumulative history was re-baselined: flat counters are clean.
        for _ in 0..cfg().promote_clean_epochs {
            m.observe_epoch(&s, &mut st);
        }
        assert_eq!(m.rung(), HealthRung::Healthy);
        assert!(st.promotions <= st.demotions);
    }

    #[test]
    fn rehydrate_upward_is_not_a_promotion() {
        let mut m = HealthMonitor::new(cfg());
        let mut st = HealthStats::default();
        let mut s = sig();
        s.spare_exhausted_total = 1;
        m.observe_epoch(&s, &mut st); // ReadOnly, demotions = 2
        m.rehydrate(HealthRung::Healthy, &s, &mut st);
        assert_eq!(m.rung(), HealthRung::Healthy);
        assert_eq!(st.promotions, 0);
        assert_eq!(st.demotions, 2);
    }
}
