//! The Block Translation Table (BTT) and Page Translation Table (PTT) of
//! Figure 5.
//!
//! Both tables map physical block/page indices to the location of the
//! software-visible working copy and record which checkpoint region holds
//! `C_last`. A 6-bit saturating store counter per entry feeds the
//! scheme-switching policy of §4.2 (collected at epoch boundaries, then
//! reset).
//!
//! The tables are the *hardware budget* of the design: entry counts are
//! fixed at construction ([`thynvm_types::ThyNvmConfig`]), and overflow
//! forces the controller to end the epoch early so that entries belonging
//! to the penultimate checkpoint can be reclaimed (§4.3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use thynvm_types::{BlockIndex, FxHashMap, PageIndex};

use crate::layout::Region;

/// Maximum value of the 6-bit per-entry store counter (Figure 5).
pub const STORE_COUNTER_MAX: u8 = 63;

/// Where a block-remapped working copy currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WactiveLoc {
    /// Directly in an NVM checkpoint region (the normal §3.2 case: the
    /// working copy overwrites `C_penult` in place).
    Nvm(Region),
    /// Temporarily buffered in the DRAM Working Data Region because the
    /// previous checkpoint had not completed when the write arrived (§4.1).
    DramBuffered {
        /// Index of the DRAM block-buffer slot holding the copy.
        slot: u32,
    },
}

/// One BTT entry: tracking state for a single 64 B block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BttEntry {
    /// Location of the active working copy, if the block was written in the
    /// current (active) epoch.
    pub wactive: Option<WactiveLoc>,
    /// Region holding the last checkpoint copy, if one exists. `None` means
    /// the only committed copy is the Home Region original.
    pub clast_region: Option<Region>,
    /// Working copy captured by the in-flight checkpoint job (it becomes
    /// `C_last` when the job completes).
    pub pending: Option<WactiveLoc>,
    /// 6-bit saturating store counter for this epoch.
    pub store_count: u8,
}

impl BttEntry {
    fn new() -> Self {
        Self { wactive: None, clast_region: None, pending: None, store_count: 0 }
    }

    /// Whether this entry holds no in-flight state and can be reclaimed
    /// (after migrating `C_last` back to the Home Region if necessary).
    pub fn is_quiescent(&self) -> bool {
        self.wactive.is_none() && self.pending.is_none()
    }
}

/// The Block Translation Table.
///
/// # Example
///
/// ```
/// use thynvm_core::Btt;
/// use thynvm_types::BlockIndex;
///
/// let mut btt = Btt::new(4);
/// let b = BlockIndex::new(7);
/// assert!(btt.get(b).is_none());
/// btt.entry_or_insert(b).expect("capacity available");
/// assert!(btt.get(b).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Btt {
    entries: FxHashMap<BlockIndex, BttEntry>,
    capacity: usize,
    peak: usize,
    /// Min-heap of blocks that *may* be quiescent — a superset of the truly
    /// quiescent entries, maintained by [`Btt::note_quiescent`] at the
    /// controller's quiescence-transition points and validated lazily
    /// against `entries` when victims are selected. This turns every
    /// overflow reclaim from a full-table scan-and-partition (the top entry
    /// in the simulator's profile) into `O(victims)` heap pops.
    quiescent_hints: BinaryHeap<Reverse<BlockIndex>>,
}

impl Btt {
    /// Creates a BTT with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            // +1: `force_insert` may spill one entry past capacity.
            // Bounded so absurd configured capacities stay constructible.
            entries: FxHashMap::with_capacity_and_hasher(
                capacity.saturating_add(1).min(4096),
                Default::default(),
            ),
            capacity,
            peak: 0,
            quiescent_hints: BinaryHeap::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed (hardware-provisioning metric).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the entry for `block`.
    pub fn get(&self, block: BlockIndex) -> Option<&BttEntry> {
        self.entries.get(&block)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, block: BlockIndex) -> Option<&mut BttEntry> {
        self.entries.get_mut(&block)
    }

    /// Returns the entry for `block`, inserting a fresh one if absent.
    /// Returns `None` if the table is full and the block has no entry.
    pub fn entry_or_insert(&mut self, block: BlockIndex) -> Option<&mut BttEntry> {
        if !self.entries.contains_key(&block) {
            if self.is_full() {
                return None;
            }
            self.entries.insert(block, BttEntry::new());
            self.peak = self.peak.max(self.entries.len());
        }
        self.entries.get_mut(&block)
    }

    /// Removes and returns the entry for `block`.
    pub fn remove(&mut self, block: BlockIndex) -> Option<BttEntry> {
        self.entries.remove(&block)
    }

    /// Inserts an entry for `block` even past capacity (an emergency spill:
    /// the controller flags an overflow-triggered epoch end at the same
    /// time, so the spill window is one platform event). Returns the entry.
    pub fn force_insert(&mut self, block: BlockIndex) -> &mut BttEntry {
        use std::collections::hash_map::Entry;
        let len_before = self.entries.len();
        match self.entries.entry(block) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                self.peak = self.peak.max(len_before + 1);
                v.insert(BttEntry::new())
            }
        }
    }

    /// Iterates over all `(block, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockIndex, &BttEntry)> {
        self.entries.iter().map(|(&b, e)| (b, e))
    }

    /// Mutable iteration over all entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockIndex, &mut BttEntry)> {
        self.entries.iter_mut().map(|(&b, e)| (b, e))
    }

    /// Blocks whose entries are quiescent and thus reclaimable. Entries
    /// whose `C_last` sits in Region A must first be migrated home; the
    /// controller handles that using the returned list. This is the
    /// full-scan diagnostic view; the reclaim hot path uses
    /// [`Self::reclaimable_victims_into`].
    pub fn reclaimable(&self) -> Vec<BlockIndex> {
        self.scan_victims(usize::MAX)
    }

    /// Ground truth for victim selection: every quiescent block, smallest
    /// `max` first, in ascending order.
    fn scan_victims(&self, max: usize) -> Vec<BlockIndex> {
        let mut v: Vec<BlockIndex> =
            self.entries.iter().filter(|(_, e)| e.is_quiescent()).map(|(&b, _)| b).collect();
        if v.len() > max {
            // Partition so v[..max] holds the smallest `max` indices.
            v.select_nth_unstable(max.saturating_sub(1));
            v.truncate(max);
        }
        // Deterministic victim order (hash maps iterate randomly).
        v.sort_unstable();
        v
    }

    /// Records that `block`'s entry may have become quiescent. Every code
    /// path that can take an entry from non-quiescent to quiescent must
    /// call this (or [`Self::rebuild_quiescent_hints`]); victim selection
    /// only considers hinted blocks. Over-approximation is fine — hints are
    /// re-validated against the live entry when consumed — but a *missing*
    /// hint would silently shrink the victim set, so selection cross-checks
    /// itself against a full scan in debug builds.
    pub fn note_quiescent(&mut self, block: BlockIndex) {
        self.quiescent_hints.push(Reverse(block));
    }

    /// Rebuilds the quiescence hint index from the live entries. Used after
    /// bulk table surgery (recovery's metadata replay), where per-entry
    /// hinting would be noise.
    pub fn rebuild_quiescent_hints(&mut self) {
        self.quiescent_hints.clear();
        self.quiescent_hints
            .extend(self.entries.iter().filter(|(_, e)| e.is_quiescent()).map(|(&b, _)| Reverse(b)));
    }

    /// Fills `out` with the first `max` reclaimable entries in block-index
    /// order — exactly the prefix of [`Self::reclaimable`], served from the
    /// quiescence hint heap in `O(victims log hints)` instead of a
    /// scan-and-partition over the whole table (the overflow path reclaims
    /// 64 victims on every table-pressure event, so the full scan dominated
    /// the simulator's profile). Hints are popped as they are consumed:
    /// the caller must reclaim (remove) every returned block, or its hint
    /// is lost.
    pub fn reclaimable_victims_into(&mut self, max: usize, out: &mut Vec<BlockIndex>) {
        out.clear();
        while out.len() < max {
            let Some(Reverse(block)) = self.quiescent_hints.pop() else { break };
            // A block hinted twice (quiescent, rewritten, quiescent again)
            // pops its duplicates adjacently from the min-heap.
            if out.last() == Some(&block) {
                continue;
            }
            // Stale hint: the entry was rewritten or reclaimed since.
            if self.entries.get(&block).is_some_and(BttEntry::is_quiescent) {
                out.push(block);
            }
        }
        debug_assert_eq!(
            *out,
            self.scan_victims(max),
            "quiescence hints out of sync with entries: a transition site is missing note_quiescent"
        );
    }

    /// Number of entries touched in the current epoch (with a working copy),
    /// i.e. the metadata volume the next checkpoint must persist.
    pub fn dirty_entries(&self) -> usize {
        self.entries.values().filter(|e| e.wactive.is_some()).count()
    }

    /// Resets all store counters (done when the controller has collected
    /// them at an epoch boundary, §4.2).
    pub fn reset_store_counters(&mut self) {
        for e in self.entries.values_mut() {
            e.store_count = 0;
        }
    }
}

/// One PTT entry: tracking state for a 4 KiB page cached in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PttEntry {
    /// DRAM Working Data Region slot holding the page.
    pub slot: u32,
    /// Whether the DRAM copy was modified in the current epoch (and so must
    /// be written back by the next checkpoint).
    pub dirty: bool,
    /// Region holding the page's last checkpoint copy, if any.
    pub clast_region: Option<Region>,
    /// Whether the in-flight checkpoint job is writing this page back;
    /// while `true` the DRAM copy is frozen and incoming writes are
    /// absorbed by block remapping (§3.4).
    pub frozen: bool,
    /// 6-bit saturating store counter for this epoch.
    pub store_count: u8,
}

/// The Page Translation Table.
///
/// Pages enter the PTT by promotion from block remapping (§3.4) and leave
/// by demotion; slots index the DRAM Working Data Region.
#[derive(Debug, Clone)]
pub struct Ptt {
    entries: FxHashMap<PageIndex, PttEntry>,
    /// Slots returned by [`Ptt::remove`], reused before fresh ones.
    recycled_slots: Vec<u32>,
    /// Next never-used slot; slots are handed out lazily so construction
    /// never allocates (or panics on) a slot free-list.
    next_fresh_slot: u32,
    capacity: usize,
    peak: usize,
}

impl Ptt {
    /// Creates a PTT with `capacity` entries (and as many DRAM page slots).
    ///
    /// Capacities beyond `u32` slot addressing are rejected up front by
    /// [`thynvm_types::SystemConfig::validate`]; construction itself never
    /// panics — slots are allocated lazily and insertion simply fails once
    /// slot addressing is exhausted.
    pub fn new(capacity: usize) -> Self {
        Self {
            // Bounded pre-size: construction must stay allocation-light
            // even for absurd configured capacities (tested).
            entries: FxHashMap::with_capacity_and_hasher(capacity.min(4096), Default::default()),
            recycled_slots: Vec::new(),
            next_fresh_slot: 0,
            capacity,
            peak: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the entry for `page`.
    pub fn get(&self, page: PageIndex) -> Option<&PttEntry> {
        self.entries.get(&page)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, page: PageIndex) -> Option<&mut PttEntry> {
        self.entries.get_mut(&page)
    }

    /// Inserts a fresh entry for `page`, allocating a DRAM slot. Returns the
    /// slot, or `None` if the table (equivalently, DRAM) is full or the page
    /// is already present.
    pub fn insert(&mut self, page: PageIndex) -> Option<u32> {
        if self.entries.contains_key(&page) || self.entries.len() >= self.capacity {
            return None;
        }
        let slot = match self.recycled_slots.pop() {
            Some(slot) => slot,
            None => {
                // Fresh slot: fails (no panic) if u32 addressing runs out.
                let slot = self.next_fresh_slot;
                self.next_fresh_slot = self.next_fresh_slot.checked_add(1)?;
                slot
            }
        };
        self.entries.insert(
            page,
            PttEntry { slot, dirty: false, clast_region: None, frozen: false, store_count: 0 },
        );
        self.peak = self.peak.max(self.entries.len());
        Some(slot)
    }

    /// Removes the entry for `page`, freeing its DRAM slot.
    pub fn remove(&mut self, page: PageIndex) -> Option<PttEntry> {
        let entry = self.entries.remove(&page)?;
        self.recycled_slots.push(entry.slot);
        Some(entry)
    }

    /// Iterates over all `(page, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageIndex, &PttEntry)> {
        self.entries.iter().map(|(&p, e)| (p, e))
    }

    /// Mutable iteration over all entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PageIndex, &mut PttEntry)> {
        self.entries.iter_mut().map(|(&p, e)| (p, e))
    }

    /// Pages dirty in the current epoch (the next checkpoint's writeback
    /// set).
    pub fn dirty_pages(&self) -> Vec<PageIndex> {
        let mut v: Vec<PageIndex> =
            self.entries.iter().filter(|(_, e)| e.dirty).map(|(&p, _)| p).collect();
        // Deterministic writeback order (hash maps iterate randomly).
        v.sort_unstable();
        v
    }

    /// Resets all store counters.
    pub fn reset_store_counters(&mut self) {
        for e in self.entries.values_mut() {
            e.store_count = 0;
        }
    }
}

/// Saturating 6-bit increment used for both tables' store counters.
pub fn bump_counter(counter: &mut u8) {
    if *counter < STORE_COUNTER_MAX {
        *counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btt_insert_until_full() {
        let mut btt = Btt::new(2);
        assert!(btt.entry_or_insert(BlockIndex::new(1)).is_some());
        assert!(btt.entry_or_insert(BlockIndex::new(2)).is_some());
        assert!(btt.is_full());
        assert!(btt.entry_or_insert(BlockIndex::new(3)).is_none());
        // Existing entries still reachable when full.
        assert!(btt.entry_or_insert(BlockIndex::new(1)).is_some());
        assert_eq!(btt.len(), 2);
    }

    #[test]
    fn btt_peak_tracks_high_water_mark() {
        let mut btt = Btt::new(8);
        for i in 0..5 {
            btt.entry_or_insert(BlockIndex::new(i));
        }
        btt.remove(BlockIndex::new(0));
        btt.remove(BlockIndex::new(1));
        assert_eq!(btt.len(), 3);
        assert_eq!(btt.peak(), 5);
    }

    #[test]
    fn btt_quiescence_and_reclaim() {
        let mut btt = Btt::new(4);
        let a = BlockIndex::new(1);
        let b = BlockIndex::new(2);
        btt.entry_or_insert(a).expect("invariant: BTT below capacity").wactive =
            Some(WactiveLoc::Nvm(Region::A));
        btt.entry_or_insert(b).expect("invariant: BTT below capacity").clast_region =
            Some(Region::A);
        assert!(!btt.get(a).expect("invariant: inserted above").is_quiescent());
        assert!(btt.get(b).expect("invariant: inserted above").is_quiescent());
        assert_eq!(btt.reclaimable(), vec![b]);
    }

    /// Victim selection is hint-driven: hinted quiescent entries come back
    /// smallest-first, stale hints (entries rewritten or removed since) are
    /// discarded lazily, and duplicate hints yield one victim.
    #[test]
    fn btt_victim_selection_consumes_hints_lazily() {
        let mut btt = Btt::new(8);
        for i in [5u64, 1, 3, 7] {
            let b = BlockIndex::new(i);
            btt.entry_or_insert(b).expect("invariant: BTT below capacity").clast_region =
                Some(Region::A);
            btt.note_quiescent(b);
        }
        // A duplicate hint for an already-hinted block.
        btt.note_quiescent(BlockIndex::new(3));
        // Stale hints: one entry rewritten, one removed outright.
        btt.get_mut(BlockIndex::new(5)).expect("invariant: inserted above").wactive =
            Some(WactiveLoc::Nvm(Region::B));
        btt.remove(BlockIndex::new(7));

        let mut out = Vec::new();
        btt.reclaimable_victims_into(1, &mut out);
        assert_eq!(out, vec![BlockIndex::new(1)]);
        btt.remove(BlockIndex::new(1)); // consumed hints must be reclaimed

        btt.reclaimable_victims_into(8, &mut out);
        assert_eq!(out, vec![BlockIndex::new(3)]);
        btt.remove(BlockIndex::new(3));

        // Everything left is non-quiescent or gone: no victims.
        btt.reclaimable_victims_into(8, &mut out);
        assert!(out.is_empty());
    }

    /// `rebuild_quiescent_hints` re-derives the hint index from the live
    /// entries, covering bulk surgery that bypasses `note_quiescent`.
    #[test]
    fn btt_hint_rebuild_after_bulk_surgery() {
        let mut btt = Btt::new(8);
        for i in 0..4u64 {
            btt.entry_or_insert(BlockIndex::new(i))
                .expect("invariant: BTT below capacity")
                .wactive = Some(WactiveLoc::Nvm(Region::A));
        }
        // Bulk normalization without per-entry hints (recovery's replay).
        for (_, e) in btt.iter_mut() {
            e.wactive = None;
            e.clast_region = Some(Region::B);
        }
        btt.rebuild_quiescent_hints();
        let mut out = Vec::new();
        btt.reclaimable_victims_into(2, &mut out);
        assert_eq!(out, vec![BlockIndex::new(0), BlockIndex::new(1)]);
    }

    #[test]
    fn btt_dirty_entries_counts_working_copies() {
        let mut btt = Btt::new(4);
        btt.entry_or_insert(BlockIndex::new(1)).expect("invariant: BTT below capacity").wactive =
            Some(WactiveLoc::DramBuffered { slot: 0 });
        btt.entry_or_insert(BlockIndex::new(2));
        assert_eq!(btt.dirty_entries(), 1);
    }

    #[test]
    fn btt_counter_reset() {
        let mut btt = Btt::new(4);
        btt.entry_or_insert(BlockIndex::new(1))
            .expect("invariant: BTT below capacity")
            .store_count = 10;
        btt.reset_store_counters();
        assert_eq!(
            btt.get(BlockIndex::new(1)).expect("invariant: inserted above").store_count,
            0
        );
    }

    #[test]
    fn ptt_slot_allocation_and_reuse() {
        let mut ptt = Ptt::new(2);
        let s0 = ptt.insert(PageIndex::new(10)).expect("invariant: PTT has free slots");
        let s1 = ptt.insert(PageIndex::new(20)).expect("invariant: PTT has free slots");
        assert_ne!(s0, s1);
        assert!(ptt.insert(PageIndex::new(30)).is_none()); // full
        let removed = ptt.remove(PageIndex::new(10)).expect("invariant: inserted above");
        assert_eq!(removed.slot, s0);
        // Slot is recycled.
        assert_eq!(ptt.insert(PageIndex::new(30)), Some(s0));
    }

    #[test]
    fn ptt_duplicate_insert_rejected() {
        let mut ptt = Ptt::new(2);
        assert!(ptt.insert(PageIndex::new(1)).is_some());
        assert!(ptt.insert(PageIndex::new(1)).is_none());
        assert_eq!(ptt.len(), 1);
    }

    #[test]
    fn ptt_dirty_pages() {
        let mut ptt = Ptt::new(4);
        ptt.insert(PageIndex::new(1));
        ptt.insert(PageIndex::new(2));
        ptt.get_mut(PageIndex::new(2)).expect("invariant: inserted above").dirty = true;
        assert_eq!(ptt.dirty_pages(), vec![PageIndex::new(2)]);
    }

    #[test]
    fn ptt_peak() {
        let mut ptt = Ptt::new(4);
        ptt.insert(PageIndex::new(1));
        ptt.insert(PageIndex::new(2));
        ptt.remove(PageIndex::new(1));
        assert_eq!(ptt.peak(), 2);
        assert_eq!(ptt.len(), 1);
    }

    /// Construction with an absurd capacity must neither panic nor
    /// eagerly allocate a slot free-list; misconfigurations are caught by
    /// `SystemConfig::validate` instead.
    #[test]
    fn ptt_huge_capacity_constructs_lazily() {
        let mut ptt = Ptt::new(usize::MAX);
        assert_eq!(ptt.capacity(), usize::MAX);
        // The table still works; slots are minted on demand.
        assert_eq!(ptt.insert(PageIndex::new(1)), Some(0));
        assert_eq!(ptt.insert(PageIndex::new(2)), Some(1));
    }

    #[test]
    fn counter_saturates_at_six_bits() {
        let mut c = STORE_COUNTER_MAX - 1;
        bump_counter(&mut c);
        assert_eq!(c, STORE_COUNTER_MAX);
        bump_counter(&mut c);
        assert_eq!(c, STORE_COUNTER_MAX);
    }

    #[test]
    fn empty_tables() {
        assert!(Btt::new(4).is_empty());
        assert!(Ptt::new(4).is_empty());
        assert_eq!(Btt::new(4).dirty_entries(), 0);
        assert!(Ptt::new(4).dirty_pages().is_empty());
    }
}
