//! ThyNVM: software-transparent crash consistency for hybrid DRAM+NVM
//! persistent memory.
//!
//! This crate implements the paper's primary contribution — the memory
//! controller of *ThyNVM: Enabling Software-Transparent Crash Consistency in
//! Persistent Memory Systems* (MICRO-48, 2015) — on top of the device
//! substrate in [`thynvm_mem`].
//!
//! # What ThyNVM does
//!
//! ThyNVM periodically checkpoints all memory state in hardware, so that
//! *unmodified* applications get crash consistency with no transactional
//! API, no persistent-object annotations, and no logging library. Its key
//! mechanism is **dual-scheme checkpointing** (§3):
//!
//! * **block remapping** — sparse, low-locality writes go straight to NVM at
//!   a remapped address recorded in the Block Translation Table ([`Btt`]).
//!   Checkpointing them persists only metadata, so it is nearly free.
//! * **page writeback** — dense, high-locality pages are cached in DRAM and
//!   written back to an alternate NVM checkpoint region during the
//!   checkpointing phase, recorded in the Page Translation Table ([`Ptt`]).
//!
//! Epochs **overlap**: epoch *N+1* executes while epoch *N* checkpoints
//! (Figure 3b), maintaining three data versions — the active working copy
//! `W_active`, the last checkpoint `C_last` and the penultimate checkpoint
//! `C_penult`. Recovery rolls back to `C_last` if its checkpoint completed,
//! else to `C_penult` (§4.5).
//!
//! # Crate layout
//!
//! * [`layout`] — the hardware address space of Figure 4 (Home Region /
//!   Checkpoint Regions A & B / Working Data Region / Backup Region).
//! * [`table`] — the BTT and PTT of Figure 5, with store counters and the
//!   scheme-switching policy of §4.2.
//! * [`epoch`] — the epoch state machine and in-flight checkpoint jobs.
//! * [`controller`] — [`ThyNvm`], the memory controller itself: the store
//!   path of Figure 6(a), the checkpointing order of Figure 6(b),
//!   inter-scheme migration (§3.4), crash injection and recovery (§4.5).
//!
//! # Quick start
//!
//! ```
//! use thynvm_core::ThyNvm;
//! use thynvm_types::{Cycle, MemorySystem, MemRequest, PhysAddr, SystemConfig};
//!
//! let mut sys = ThyNvm::new(SystemConfig::small_test());
//! // Write some persistent data…
//! sys.store_bytes(PhysAddr::new(0x1000), b"durable", Cycle::ZERO);
//! // …checkpoint it (normally the platform does this on epoch boundaries)…
//! let t = sys.force_checkpoint(Cycle::new(1_000));
//! let t = sys.drain(t);
//! // …crash! Recovery restores the checkpointed value.
//! let _ = sys.crash_and_recover(t);
//! let mut buf = [0u8; 7];
//! sys.load_bytes(PhysAddr::new(0x1000), &mut buf, t);
//! assert_eq!(&buf, b"durable");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod epoch;
pub mod health;
pub mod layout;
pub mod oracle;
pub mod protocol;
pub mod table;

pub use controller::{InjectedCrash, MediaFault, RecoveryReport, TamperFault, ThyNvm};
pub use health::{HealthMonitor, HealthSignals};
pub use oracle::{OracleMismatch, PersistenceOracle};
pub use protocol::{Event as ProtocolEvent, ProtocolError, VersionState};
pub use epoch::{CkptJob, EpochState};
pub use layout::{AddressSpace, Region, PHYS_LIMIT};
pub use table::{Btt, BttEntry, Ptt, PttEntry, WactiveLoc};
