//! Executable specification of the ThyNVM consistency protocol.
//!
//! The paper ships a formal proof of its checkpointing protocol as an
//! online appendix (reference \[66\]) and compresses the BTT/PTT version
//! fields into a seven-state machine (footnote 6, reference \[65\]). Neither
//! document is retrievable today, so this module *reconstructs the protocol
//! as an executable specification*: the set of legal per-datum version
//! states, the events that move between them, and the recovery obligation
//! of every state.
//!
//! The controller in [`crate::controller`] is checked against this
//! specification: unit tests here enumerate the transition system
//! exhaustively, and the conformance tests in the workspace's `tests/`
//! directory drive the real controller with random traffic while asserting
//! that every observed entry state is reachable and every transition legal.
//!
//! # The state machine
//!
//! A datum (block or page) is described by which versions of it exist:
//!
//! * `W` — an active working copy (being written this epoch),
//! * `K` — a checkpoint *in flight* (captured, not yet durable),
//! * `L` — the last durable checkpoint,
//! * plus the Home Region original, which always exists.
//!
//! Eight combinations are expressible; `{K}` alone and `{W,K}` without a
//! prior durable copy arise transiently while the first checkpoint of a
//! datum is in flight, giving the seven *stable* states the paper's
//! encoding packs into its tables (the eighth, `Home`, needs no table entry
//! at all).

use std::fmt;

/// The per-datum version state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VersionState {
    /// An active working copy exists (`W_active`).
    pub working: bool,
    /// A checkpoint of the previous epoch is in flight (captured but not
    /// yet durable). While `true`, the previous durable checkpoint — if
    /// any — plays the role of `C_penult`.
    pub in_flight: bool,
    /// A durable checkpoint exists (`C_last` once no checkpoint is in
    /// flight; `C_penult` while one is).
    pub durable: bool,
}

impl VersionState {
    /// The untracked state: only the Home Region copy exists.
    pub const HOME: VersionState =
        VersionState { working: false, in_flight: false, durable: false };

    /// All reachable states of the protocol.
    pub fn all() -> [VersionState; 8] {
        let mut out = [VersionState::HOME; 8];
        let mut i = 0;
        for &working in &[false, true] {
            for &in_flight in &[false, true] {
                for &durable in &[false, true] {
                    out[i] = VersionState { working, in_flight, durable };
                    i += 1;
                }
            }
        }
        out
    }

    /// Whether a table entry is required to track this datum (the Home
    /// state needs none — footnote: that is what keeps table pressure
    /// proportional to the *write* working set).
    pub fn needs_entry(self) -> bool {
        self != VersionState::HOME
    }

    /// The version recovery must restore if the system crashes in this
    /// state.
    pub fn recovery_target(self) -> RecoveryTarget {
        if self.in_flight {
            // The in-flight checkpoint is discarded; fall back to the
            // previous durable copy (C_penult) or the Home original.
            if self.durable {
                RecoveryTarget::PenultimateCheckpoint
            } else {
                RecoveryTarget::HomeOriginal
            }
        } else if self.durable {
            RecoveryTarget::LastCheckpoint
        } else {
            // Working-only or Home: uncommitted writes are lost.
            RecoveryTarget::HomeOriginal
        }
    }

    /// The software-visible version under §4.1's rule: `W_active` if it
    /// exists, else the newest checkpoint, else the Home original.
    pub fn visible(self) -> VisibleVersion {
        if self.working {
            VisibleVersion::Working
        } else if self.in_flight {
            VisibleVersion::InFlightCheckpoint
        } else if self.durable {
            VisibleVersion::LastCheckpoint
        } else {
            VisibleVersion::HomeOriginal
        }
    }

    /// Applies a protocol event, returning the successor state.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the event is illegal in this state —
    /// e.g. capturing a checkpoint while one is already in flight, which
    /// would overwrite `C_penult` and break recoverability (§3.1).
    pub fn apply(self, event: Event) -> Result<VersionState, ProtocolError> {
        match event {
            Event::Write => Ok(VersionState { working: true, ..self }),
            Event::Capture => {
                if self.in_flight {
                    return Err(ProtocolError::CaptureWhileInFlight);
                }
                if !self.working {
                    // Nothing to capture: state unchanged (the datum simply
                    // is not part of this checkpoint).
                    return Ok(self);
                }
                Ok(VersionState { working: false, in_flight: true, durable: self.durable })
            }
            Event::Commit => {
                if !self.in_flight {
                    return Err(ProtocolError::CommitWithoutInFlight);
                }
                Ok(VersionState { working: self.working, in_flight: false, durable: true })
            }
            Event::Crash => {
                // Volatile and in-flight versions are lost.
                Ok(VersionState { working: false, in_flight: false, durable: self.durable })
            }
            Event::Reclaim => {
                if self.working || self.in_flight {
                    return Err(ProtocolError::ReclaimNonQuiescent);
                }
                // The durable copy migrates to the Home Region; the entry
                // is freed.
                Ok(VersionState::HOME)
            }
        }
    }
}

impl fmt::Display for VersionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.working {
            parts.push("W");
        }
        if self.in_flight {
            parts.push("K");
        }
        if self.durable {
            parts.push("L");
        }
        if parts.is_empty() {
            f.write_str("Home")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

/// Protocol events that change a datum's version state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A store creates or updates the working copy.
    Write,
    /// An epoch ends: the working copy is captured by the starting
    /// checkpoint (Figure 6b).
    Capture,
    /// The in-flight checkpoint becomes durable (write queue drained,
    /// completion bit set).
    Commit,
    /// Power failure: volatile and in-flight state vanish.
    Crash,
    /// The entry is reclaimed (§4.3): only legal when quiescent.
    Reclaim,
}

impl Event {
    /// All protocol events.
    pub const ALL: [Event; 5] =
        [Event::Write, Event::Capture, Event::Commit, Event::Crash, Event::Reclaim];
}

/// Which version recovery restores after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTarget {
    /// `C_last` — the checkpoint completed most recently.
    LastCheckpoint,
    /// `C_penult` — the in-flight checkpoint was discarded.
    PenultimateCheckpoint,
    /// The Home Region original (datum never durably checkpointed).
    HomeOriginal,
}

/// Which version a load observes (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisibleVersion {
    /// The active working copy.
    Working,
    /// The checkpoint being persisted (newest data once `W` is captured).
    InFlightCheckpoint,
    /// The last durable checkpoint.
    LastCheckpoint,
    /// The untouched Home Region copy.
    HomeOriginal,
}

/// An illegal protocol transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A second checkpoint tried to start while one was in flight —
    /// forbidden because it would overwrite the only safe version (§3.1:
    /// "the last epoch can start its checkpointing phase only after the
    /// checkpointing phase of the penultimate epoch finishes").
    CaptureWhileInFlight,
    /// A commit arrived with no checkpoint in flight.
    CommitWithoutInFlight,
    /// Reclaiming an entry that still holds uncommitted state.
    ReclaimNonQuiescent,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolError::CaptureWhileInFlight => {
                "checkpoint capture while another checkpoint is in flight"
            }
            ProtocolError::CommitWithoutInFlight => "commit without an in-flight checkpoint",
            ProtocolError::ReclaimNonQuiescent => "reclaim of a non-quiescent entry",
        })
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_states_seven_tracked() {
        let all = VersionState::all();
        assert_eq!(all.len(), 8);
        let tracked = all.iter().filter(|s| s.needs_entry()).count();
        assert_eq!(tracked, 7, "the paper's seven-state encoding");
    }

    #[test]
    fn home_state_roundtrip() {
        let s = VersionState::HOME;
        assert!(!s.needs_entry());
        assert_eq!(s.visible(), VisibleVersion::HomeOriginal);
        assert_eq!(s.recovery_target(), RecoveryTarget::HomeOriginal);
        assert_eq!(s.to_string(), "Home");
    }

    #[test]
    fn write_capture_commit_lifecycle() {
        let s = VersionState::HOME;
        let s = s.apply(Event::Write).expect("invariant: write is legal from Home");
        assert_eq!(s.to_string(), "W");
        assert_eq!(s.visible(), VisibleVersion::Working);
        let s = s.apply(Event::Capture).expect("invariant: capture is legal with a working copy");
        assert_eq!(s.to_string(), "K");
        assert_eq!(s.visible(), VisibleVersion::InFlightCheckpoint);
        let s = s.apply(Event::Commit).expect("invariant: commit is legal while in flight");
        assert_eq!(s.to_string(), "L");
        assert_eq!(s.visible(), VisibleVersion::LastCheckpoint);
        assert_eq!(s.recovery_target(), RecoveryTarget::LastCheckpoint);
    }

    #[test]
    fn overlapped_epochs_keep_three_versions() {
        // Epoch N writes, is captured; epoch N+1 writes while N persists.
        let s = VersionState::HOME
            .apply(Event::Write)
            .and_then(|s| s.apply(Event::Capture))
            .and_then(|s| s.apply(Event::Write))
            .expect("invariant: write/capture/write is a legal overlap sequence");
        assert_eq!(s.to_string(), "W+K");
        // Crash now: both W and K are lost; only Home remains.
        assert_eq!(s.recovery_target(), RecoveryTarget::HomeOriginal);
        // If a durable checkpoint existed underneath, it would be C_penult:
        let s2 = VersionState { working: true, in_flight: true, durable: true };
        assert_eq!(s2.recovery_target(), RecoveryTarget::PenultimateCheckpoint);
    }

    #[test]
    fn double_capture_is_illegal() {
        let s = VersionState { working: true, in_flight: true, durable: false };
        assert_eq!(s.apply(Event::Capture), Err(ProtocolError::CaptureWhileInFlight));
    }

    #[test]
    fn commit_requires_in_flight() {
        assert_eq!(
            VersionState::HOME.apply(Event::Commit),
            Err(ProtocolError::CommitWithoutInFlight)
        );
    }

    #[test]
    fn reclaim_only_when_quiescent() {
        let quiescent = VersionState { working: false, in_flight: false, durable: true };
        assert_eq!(quiescent.apply(Event::Reclaim), Ok(VersionState::HOME));
        let busy = VersionState { working: true, in_flight: false, durable: true };
        assert_eq!(busy.apply(Event::Reclaim), Err(ProtocolError::ReclaimNonQuiescent));
        let pending = VersionState { working: false, in_flight: true, durable: false };
        assert_eq!(pending.apply(Event::Reclaim), Err(ProtocolError::ReclaimNonQuiescent));
    }

    #[test]
    fn capture_without_working_copy_is_a_noop() {
        let s = VersionState { working: false, in_flight: false, durable: true };
        assert_eq!(s.apply(Event::Capture), Ok(s));
    }

    #[test]
    fn crash_discards_exactly_volatile_state() {
        for s in VersionState::all() {
            let after = s.apply(Event::Crash).expect("invariant: crash is legal from every state");
            assert!(!after.working);
            assert!(!after.in_flight);
            assert_eq!(after.durable, s.durable, "durable state survives {s}");
        }
    }

    /// The nested-crash theorem behind restartable recovery: crashing
    /// *again* while recovering changes nothing. One crash already discards
    /// every volatile version, so a second (and any further) crash is a
    /// fixed point — which is why recovery can be interrupted at any step
    /// and re-run to the same image.
    #[test]
    fn nested_crash_is_idempotent() {
        for s in VersionState::all() {
            let once = s.apply(Event::Crash).expect("invariant: crash is legal from every state");
            let twice =
                once.apply(Event::Crash).expect("invariant: crash is legal from every state");
            assert_eq!(once, twice, "second crash must be a no-op from {s}");
            // And so is any deeper stack of crashes.
            let mut deep = once;
            for _ in 0..6 {
                deep = deep.apply(Event::Crash).expect("invariant: crash is legal from every state");
            }
            assert_eq!(once, deep);
        }
    }

    #[test]
    fn recovery_never_targets_uncommitted_versions() {
        for s in VersionState::all() {
            match s.recovery_target() {
                RecoveryTarget::LastCheckpoint => assert!(s.durable && !s.in_flight),
                RecoveryTarget::PenultimateCheckpoint => assert!(s.durable && s.in_flight),
                RecoveryTarget::HomeOriginal => assert!(!s.durable || s.in_flight),
            }
        }
    }

    /// Exhaustive reachability: every state is reachable from Home, and
    /// every legal transition lands in a legal state.
    #[test]
    fn transition_system_is_closed_and_connected() {
        use std::collections::{HashSet, VecDeque};
        let mut seen: HashSet<VersionState> = HashSet::new();
        let mut queue = VecDeque::from([VersionState::HOME]);
        while let Some(s) = queue.pop_front() {
            if !seen.insert(s) {
                continue;
            }
            for event in Event::ALL {
                if let Ok(next) = s.apply(event) {
                    queue.push_back(next);
                }
            }
        }
        // All 8 combinations are reachable.
        assert_eq!(seen.len(), 8, "reached: {seen:?}");
    }

    /// The central safety argument: after any event sequence, a crash
    /// recovers to a state that was durable *before* the crash.
    #[test]
    fn durability_is_monotonic_until_commit() {
        // Walk every sequence of up to 5 events from Home.
        fn walk(s: VersionState, depth: usize) {
            if depth == 0 {
                return;
            }
            for event in Event::ALL {
                if let Ok(next) = s.apply(event) {
                    // A crash from `next` must never invent durability.
                    let crashed = next
                        .apply(Event::Crash)
                        .expect("invariant: crash is legal from every state");
                    assert!(
                        !crashed.durable || next.durable,
                        "crash created durability: {s} --{event:?}--> {next}"
                    );
                    walk(next, depth - 1);
                }
            }
        }
        walk(VersionState::HOME, 5);
    }

    #[test]
    fn display_of_all_states() {
        let labels: Vec<String> =
            VersionState::all().iter().map(|s| s.to_string()).collect();
        assert!(labels.contains(&"Home".to_owned()));
        assert!(labels.contains(&"W+K+L".to_owned()));
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn error_display() {
        assert!(!ProtocolError::CaptureWhileInFlight.to_string().is_empty());
        assert!(!ProtocolError::CommitWithoutInFlight.to_string().is_empty());
        assert!(!ProtocolError::ReclaimNonQuiescent.to_string().is_empty());
    }
}
