//! The ThyNVM memory controller.
//!
//! [`ThyNvm`] combines:
//!
//! * the **timing layer** — DRAM/NVM devices, write queues, translation
//!   table costs, checkpoint-job scheduling, cooperation stalls — which
//!   produces the performance numbers of §5; and
//! * the **functional layer** — real bytes in sparse stores plus per-epoch
//!   write logs — which makes the three-version consistency protocol
//!   *testable*: crash at any cycle, recover, and compare contents.
//!
//! # Store path (Figure 6a)
//!
//! A store first probes the PTT. A PTT hit writes the DRAM working page —
//! unless the page is frozen by an in-flight checkpoint, in which case the
//! write is absorbed by block remapping into the DRAM block buffer (§3.4
//! cooperation). A PTT miss uses block remapping: while no checkpoint is in
//! flight the working copy is written directly to NVM, overwriting
//! `C_penult` (§3.2); while one is in flight `C_penult` must be preserved,
//! so the write is buffered in the DRAM Working Data Region (§4.1).
//!
//! # Checkpoint order (Figure 6b)
//!
//! 1. drain DRAM-buffered block working copies to NVM,
//! 2. persist the BTT (and CPU state),
//! 3. write dirty DRAM pages back to the alternate NVM checkpoint region,
//! 4. persist the PTT, flush the NVM write queue, and atomically set the
//!    checkpoint-complete flag.
//!
//! # Modeling notes (deviations documented in DESIGN.md)
//!
//! * Functional stores are keyed by *physical* address; the region-A/B
//!   alternation affects only the timing layer (NVM row-buffer behaviour
//!   and traffic), not content correctness, which is governed by the
//!   per-epoch write logs.
//! * Scheme switching (§3.4) is decided from the ending epoch's store
//!   counters at checkpoint start and applied when the system is next
//!   quiescent (job retirement), half an epoch later than the paper — the
//!   paper likewise hides migration in the execution phase.
//! * Cooperation blocks buffered for a frozen PTT page are merged into the
//!   DRAM page when the job retires (one DRAM write each) instead of being
//!   persisted twice.


use thynvm_mem::{
    Device, DeviceKind, DramEccModel, EccReadFault, FaultModel, PersistBuffer, SecurityModel,
    SparseStore, WpqCrashReport, WpqKind, WriteQueue,
};
use thynvm_types::{
    AccessKind, BlockIndex, CkptMode, CkptPhase, Cycle, Error, FaultKind, FxHashMap, FxHashSet,
    HealthRung, HwAddr, MemRequest, MemStats, MemorySystem, NvmWriteClass, PageIndex, PhysAddr,
    RecoveryStep, RetryPolicy, SystemConfig, TraceEvent, BLOCK_BYTES, PAGE_BYTES,
};

use crate::epoch::{CkptJob, EpochState};
use crate::health::{HealthMonitor, HealthSignals};
use crate::layout::{AddressSpace, Region};
use crate::table::{bump_counter, Btt, Ptt, WactiveLoc};

/// Bytes persisted per BTT/PTT entry when checkpointing metadata (Figure 5
/// entries round up to 8 bytes).
const META_ENTRY_BYTES: u64 = 8;

/// CRC word appended to each serialized metadata image (BTT, PTT) and to
/// the commit record when integrity protection is enabled.
const META_CRC_BYTES: u64 = 8;

/// Nanoseconds to compute/verify one 64 B block's CRC (a few XOR/shift
/// stages in the controller pipeline).
const CRC_NS_PER_BLOCK: u64 = 2;

/// Words in the checkpoint commit record for torn-write modeling: the
/// 64 B record is persisted as eight 8-byte device words.
const COMMIT_RECORD_WORDS: usize = 8;

/// Domain-separation tag for deriving the modeled MAC key from the
/// security seed (distinct from the tamper-schedule stream).
const TAG_MAC_KEY: u64 = 0x4d41_434b; // "MACK"

/// A latent media fault injected into persisted checkpoint state.
///
/// The fault is consulted at the next recovery and applies to whichever
/// checkpoint is `C_last` then; with no completed checkpoint it stays armed
/// (there is no persisted state to corrupt yet). Integrity verification
/// (when [`thynvm_types::MediaFaultConfig::integrity`] is on) detects the
/// corruption and recovery falls back to `C_penult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaFault {
    /// The checkpoint's multi-word commit record is torn: only a prefix of
    /// its words persisted, so its checksum can never verify.
    TornCommitRecord,
    /// A single bit of `C_last`'s checkpointed data flipped, failing that
    /// block's per-64 B CRC.
    ClastBitFlip {
        /// Physical address of the corrupted byte.
        addr: u64,
    },
    /// The serialized PTT metadata image in the backup region is corrupted,
    /// failing its metadata checksum.
    CorruptPttMetadata,
}

/// An adversarial tamper injected into persisted secure-mode state.
///
/// Unlike [`MediaFault`] (accidental corruption, modeled as latent flags),
/// a tamper *really mutates* the persisted bytes or the security-metadata
/// model out-of-band, the way an attacker with physical NVM access would.
/// The next recovery's MAC / integrity-tree verification must therefore
/// detect it by recomputation, not by consulting a flag. Armed via
/// [`ThyNvm::inject_tamper`]; applied at the next crash once a completed
/// checkpoint exists (until then it stays armed — there is nothing
/// authenticated to forge yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperFault {
    /// A byte of `C_last`'s committed data is overwritten in place: a
    /// content forgery that the checkpoint MAC rejects.
    ClastData {
        /// Physical address of the forged byte.
        addr: u64,
    },
    /// The persisted encryption-counter table is rolled back to a stale
    /// generation (a counter-replay attack); the integrity-tree root no
    /// longer authenticates it.
    StaleCounterTable,
    /// The security-metadata root record is torn — power was lost while it
    /// streamed to NVM, so it never authenticates.
    TornRootMeta,
    /// Bytes of *both* checkpoint images are forged: no authenticated
    /// state survives, and recovery must refuse to replay either image
    /// ([`Error::IntegrityUnrecoverable`]) rather than serve forged data.
    BothImages {
        /// Physical address of the forged byte (in each image).
        addr: u64,
    },
}

/// Result of a crash recovery (§4.5).
#[must_use = "the report says which checkpoint survived — dropping it hides rollbacks"]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Number of epochs whose checkpoints had completed — the state the
    /// system rolled back to.
    pub recovered_checkpoints: u64,
    /// Whether an in-flight (incomplete) checkpoint was discarded, i.e. the
    /// system recovered to `C_penult` rather than `C_last`.
    pub rolled_back_incomplete: bool,
    /// Pages restored from NVM into the DRAM working region.
    pub restored_pages: usize,
    /// Whether `C_last` had *completed* but failed media-integrity
    /// verification, so recovery discarded it and restored the retained
    /// penultimate image instead.
    pub integrity_fallback: bool,
    /// Whether *both* checkpoint images failed secure-mode authentication:
    /// recovery refused to replay unauthenticated data and reset to the
    /// provably-empty image ([`Error::IntegrityUnrecoverable`]).
    pub unrecoverable: bool,
    /// Simulated duration of the recovery procedure, including every
    /// attempt aborted by a nested crash.
    pub recovery_cycles: Cycle,
    /// The steps of the final (successful) recovery attempt, with the
    /// cycle each completed at. Step boundaries are exactly where a
    /// queued crash point can interrupt recovery.
    pub steps: Vec<(RecoveryStep, Cycle)>,
    /// Crash points that fired *during* this recovery (each aborted an
    /// attempt, which then restarted from the persisted commit record).
    pub nested_crashes: u64,
    /// Recovery attempts run: `nested_crashes` aborted ones plus the
    /// final successful pass.
    pub attempts: u64,
}

/// Result of one crash injected through [`ThyNvm::arm_crash_point`]:
/// the observability record, the §4.5 recovery report, and the cycle at
/// which the rebooted system resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Where the crash landed and what recovery did (also appended to
    /// [`MemStats::crash_events`](thynvm_types::MemStats)).
    pub event: thynvm_types::CrashEvent,
    /// The recovery report, as returned by [`ThyNvm::crash_and_recover`].
    pub report: RecoveryReport,
    /// Cycle at which the recovered system accepts requests again.
    pub resume_at: Cycle,
}

/// Data captured while checkpointing a page (target region chosen when the
/// job was scheduled).
#[derive(Debug, Clone, Copy)]
struct PendingPage {
    target: Region,
}

/// The ThyNVM hybrid persistent-memory controller.
///
/// See the [crate documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct ThyNvm {
    cfg: SystemConfig,
    space: AddressSpace,
    dram: Device,
    nvm: Device,
    nvm_wq: WriteQueue,
    dram_wq: WriteQueue,
    btt: Btt,
    ptt: Ptt,
    epoch: EpochState,
    stats: MemStats,

    /// Per-epoch page-granularity store counts driving scheme switching.
    page_store_counts: FxHashMap<PageIndex, u32>,
    /// Counts snapshotted at checkpoint start, applied at job retirement.
    pending_switch_counts: FxHashMap<PageIndex, u32>,
    /// Pages captured by the in-flight job, with their target regions.
    pending_pages: FxHashMap<PageIndex, PendingPage>,
    /// Next DRAM block-buffer slot (round-robin).
    next_block_slot: u32,
    /// BTT spills: inserts forced past capacity while an overflow-triggered
    /// epoch end was pending (bounded by one platform event).
    btt_spills: u64,
    /// Blocks that gained a working copy this epoch (BTT pressure gauge:
    /// the epoch ends early when this approaches the BTT budget).
    epoch_dirty_blocks: usize,
    /// Head-of-line blocking of the controller's request queue: requests
    /// arriving earlier than this start at this cycle (set when a store
    /// must wait for an in-flight checkpoint, e.g. PageOnly frozen pages).
    input_blocked_until: Cycle,

    // ---- functional layer ----
    /// Latest recoverable contents (state at the last *completed*
    /// checkpoint), physical address space.
    committed: SparseStore,
    /// Current software-visible contents.
    visible: SparseStore,
    /// Writes of the active epoch (applied to `visible`, not yet captured).
    working_log: Vec<(u64, Vec<u8>)>,
    /// Writes captured by the in-flight checkpoint job.
    ckpting_log: Vec<(u64, Vec<u8>)>,
    /// Report of the last recovery, if any.
    last_recovery: Option<RecoveryReport>,
    /// Archive of past committed images for §6-style bug tolerance
    /// (checkpoint number → image). Empty unless enabled.
    archive: std::collections::VecDeque<(u64, SparseStore)>,
    /// How many past checkpoints to retain (0 disables archiving).
    archive_depth: usize,
    /// Distribution of epoch execution-phase lengths (cycles).
    epoch_length_hist: thynvm_types::Histogram,
    /// Distribution of checkpointing-phase durations (cycles).
    job_duration_hist: thynvm_types::Histogram,

    // ---- fault injection ----
    /// Queued crash points, sorted ascending: power fails at the end of
    /// each listed cycle. The earliest fires at the first request whose
    /// timeline passes it, and recovery runs *as of that cycle* — effects
    /// scheduled to complete later (an in-flight checkpoint's commit,
    /// queued writes) are lost. Points still queued when a crash fires
    /// survive into the recovery phase and interrupt it at recovery-step
    /// boundaries (nested crashes); points beyond the end of recovery
    /// stay armed for later requests.
    crash_points: Vec<Cycle>,
    /// Record of the most recent injected crash, until taken.
    injected_crash: Option<InjectedCrash>,

    // ---- media faults & self-healing ----
    /// The NVM media-fault model, when `cfg.media.enabled`.
    fault: Option<FaultModel>,
    /// The penultimate committed image — the fallback target when `C_last`
    /// fails integrity verification at recovery. Maintained only while the
    /// media subsystem is active.
    committed_prev: SparseStore,
    /// Persistent bad-block table: device block base → spare slot. Blocks
    /// listed here have been permanently remapped away from worn-out cells;
    /// the table survives crashes (it is persisted NVM metadata).
    bad_blocks: FxHashMap<u64, u64>,
    /// Retired scheme-switch snapshot, recycled into the next epoch's
    /// `pending_switch_counts` so the per-epoch snapshot reuses one
    /// allocation instead of growing a fresh map from empty every time.
    switch_scratch: FxHashMap<PageIndex, u32>,
    /// Reused victim buffer for [`Self::reclaim_quiescent`], so the
    /// overflow path does not allocate on every table-pressure event.
    reclaim_scratch: Vec<BlockIndex>,
    /// Next spare block slot to hand out.
    next_spare_slot: u64,
    /// A corruption detected on the current read but *not* healed (no
    /// integrity checking): `(physical byte, XOR mask)` to apply to the
    /// delivered buffer.
    pending_corruption: Option<(u64, u8)>,
    /// Injected latent fault: the next recovery's `C_last` commit record is
    /// torn.
    injected_torn_commit: bool,
    /// Injected latent fault: a data bit of the next recovery's `C_last`
    /// flipped at this physical address.
    injected_clast_flip: Option<u64>,
    /// Injected latent fault: the next recovery's serialized PTT metadata
    /// is corrupted.
    injected_meta_corrupt: bool,
    /// The most recent unrecoverable-read error (retries exhausted before a
    /// remap healed the block, or the spare pool drained), for inspection.
    last_media_error: Option<Error>,
    /// The most recent unabsorbable BTT overflow: a spill was demanded
    /// while the previous spill's early epoch end had not yet drained, so
    /// the table genuinely could not recover by ending the epoch.
    last_overflow_error: Option<Error>,
    /// Sequence number of the next write-ahead-log record in the backup
    /// region (bad-block remaps, recovery-side integrity fallbacks).
    wal_seq: u64,

    // ---- DRAM fault domain (ECC, poison, quarantine) ----
    /// The DRAM SEC-DED ECC model, when `cfg.dram_fault.enabled`.
    dram_fault: Option<DramEccModel>,
    /// Quarantine events not yet drained by the harness: `(physical base,
    /// length)` ranges whose dirty data was dropped and rolled back to the
    /// last checkpoint because of uncorrectable DRAM errors.
    quarantine_events: Vec<(u64, u64)>,
    /// The most recent poison-loss error, for inspection.
    last_poison_error: Option<Error>,

    // ---- secure persistent memory mode ----
    /// The counter-mode encryption / integrity-tree model, when
    /// `cfg.security.enabled`.
    security: Option<SecurityModel>,
    /// The modeled MAC key: the basis fed to
    /// [`SparseStore::fingerprint_with_basis`], derived from the security
    /// seed. An attacker without it cannot produce a forgery that verifies.
    mac_key: u64,
    /// MAC over the `C_last` committed image, rotated at job retirement.
    /// Models the authenticated checkpoint root stored in NVM — it
    /// survives crashes.
    mac_last: u64,
    /// MAC over the retained `C_penult` image (the fallback target).
    mac_penult: u64,
    /// Armed tamper, applied at the next crash once a completed checkpoint
    /// exists to forge.
    injected_tamper: Option<TamperFault>,
    /// The most recent both-images authentication failure, for inspection.
    last_security_error: Option<Error>,

    // ---- volatile persist buffer (WPQ fault domain) ----
    /// The content-carrying persist buffer, when `cfg.wpq.enabled`. Writes
    /// pass through it before durability; `wpq_fence` is the §4.4 ordering
    /// primitive, and a crash partially flushes a seeded per-bank prefix.
    pbuf: Option<PersistBuffer>,
    /// The most recent §4.4 ordering violation (a commit record persisted
    /// while data entries were still pending), until taken.
    last_ordering_error: Option<Error>,
    /// The most recent crash's partial-flush report, for harnesses that
    /// must know whether the commit marker was salvaged.
    last_wpq_flush: Option<WpqCrashReport>,
    /// Test hook: skip the next `wpq_fence`, so the ordering audit (and
    /// lint rule L10's runtime counterpart) can be exercised.
    wpq_skip_next_fence: bool,

    // ---- graceful-degradation health ladder ----
    /// The hysteresis-driven degradation ladder, when `cfg.health.enabled`.
    health_mon: Option<HealthMonitor>,
    /// Rung persisted with `C_last`'s commit record — what recovery
    /// rehydrates when it restores `C_last`. Rotated like `mac_last`.
    health_rung_last: HealthRung,
    /// Rung persisted with the retained `C_penult` image (the fallback).
    health_rung_penult: HealthRung,
    /// Rung captured when the in-flight checkpoint's health record
    /// persisted; rotated into `health_rung_last` at job retirement.
    pending_health_rung: Option<HealthRung>,
    /// The most recent degraded-store rejection, for inspection.
    last_health_error: Option<Error>,
}

impl ThyNvm {
    /// Creates a controller with the given configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let mac_key = thynvm_types::rng::mix(cfg.security.seed, TAG_MAC_KEY);
        let empty_mac = SparseStore::new().fingerprint_with_basis(mac_key);
        Self {
            space: AddressSpace::new(),
            dram: Device::new(DeviceKind::Dram, cfg.timing, cfg.dram_geometry),
            nvm: Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry),
            nvm_wq: WriteQueue::new(cfg.thynvm.nvm_write_queue),
            dram_wq: WriteQueue::new(cfg.thynvm.dram_write_queue),
            btt: Btt::new(cfg.thynvm.btt_entries),
            ptt: Ptt::new(cfg.thynvm.ptt_entries.min(cfg.thynvm.dram_pages() as usize)),
            epoch: EpochState::new(),
            stats: MemStats::new(),
            page_store_counts: FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            pending_switch_counts: FxHashMap::default(),
            pending_pages: FxHashMap::default(),
            next_block_slot: 0,
            btt_spills: 0,
            epoch_dirty_blocks: 0,
            input_blocked_until: Cycle::ZERO,
            committed: SparseStore::new(),
            visible: SparseStore::new(),
            working_log: Vec::new(),
            ckpting_log: Vec::new(),
            last_recovery: None,
            archive: std::collections::VecDeque::new(),
            archive_depth: 0,
            epoch_length_hist: thynvm_types::Histogram::new(),
            job_duration_hist: thynvm_types::Histogram::new(),
            crash_points: Vec::new(),
            injected_crash: None,
            fault: cfg
                .media
                .enabled
                .then(|| FaultModel::new(&cfg.media, cfg.nvm_geometry.row_bytes)),
            committed_prev: SparseStore::new(),
            bad_blocks: FxHashMap::default(),
            switch_scratch: FxHashMap::default(),
            reclaim_scratch: Vec::new(),
            next_spare_slot: 0,
            pending_corruption: None,
            injected_torn_commit: false,
            injected_clast_flip: None,
            injected_meta_corrupt: false,
            last_media_error: None,
            last_overflow_error: None,
            wal_seq: 0,
            dram_fault: cfg.dram_fault.enabled.then(|| DramEccModel::new(&cfg.dram_fault)),
            quarantine_events: Vec::new(),
            last_poison_error: None,
            security: cfg.security.enabled.then(|| SecurityModel::new(&cfg.security)),
            mac_key,
            mac_last: empty_mac,
            mac_penult: empty_mac,
            injected_tamper: None,
            last_security_error: None,
            pbuf: cfg.wpq.enabled.then(|| PersistBuffer::new(cfg.wpq, cfg.nvm_geometry)),
            last_ordering_error: None,
            last_wpq_flush: None,
            wpq_skip_next_fence: false,
            health_mon: cfg.health.enabled.then(|| HealthMonitor::new(cfg.health)),
            health_rung_last: HealthRung::Healthy,
            health_rung_penult: HealthRung::Healthy,
            pending_health_rung: None,
            last_health_error: None,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The Block Translation Table (inspection).
    pub fn btt(&self) -> &Btt {
        &self.btt
    }

    /// The Page Translation Table (inspection).
    pub fn ptt(&self) -> &Ptt {
        &self.ptt
    }

    /// Epoch bookkeeping (inspection).
    pub fn epoch_state(&self) -> &EpochState {
        &self.epoch
    }

    /// The NVM device (inspection of row-buffer statistics).
    pub fn nvm_device(&self) -> &Device {
        &self.nvm
    }

    /// The DRAM device (inspection).
    pub fn dram_device(&self) -> &Device {
        &self.dram
    }

    /// Number of BTT inserts forced past capacity (should stay tiny; the
    /// overflow handshake ends the epoch within one platform event).
    pub fn btt_spills(&self) -> u64 {
        self.btt_spills
    }

    /// Report of the last [`ThyNvm::crash_and_recover`], if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Content fingerprint of the software-visible byte image (see
    /// [`SparseStore::fingerprint`]): equal fingerprints mean byte-identical
    /// contents. Crash-storm harnesses use this to assert that every
    /// nested-crash recovery converges to the exact image an uninterrupted
    /// recovery produces.
    pub fn visible_fingerprint(&self) -> u64 {
        self.visible.fingerprint()
    }

    // ------------------------------------------------------------------
    // Fault injection (crash points)
    // ------------------------------------------------------------------

    /// Arms a crash point: power fails at the *end* of cycle `at`.
    ///
    /// The boundary convention matches [`ThyNvm::crash_and_recover`]
    /// everywhere: an effect whose device commit lands at or before `at`
    /// (a write retiring, a checkpoint's completion flag at `done_at`)
    /// survives; anything scheduled later is lost. Accordingly the crash
    /// fires at the first subsequent request whose timeline is *strictly
    /// past* `at` — including while the controller is *waiting* on an
    /// in-flight checkpoint — and recovery runs as of cycle `at`. The
    /// triggering request itself is dropped if it mutates state (power was
    /// already gone); loads proceed against the recovered image.
    ///
    /// Re-arming replaces *all* previously queued points (use
    /// [`ThyNvm::queue_crash_point`] to stack additional ones). Use
    /// [`ThyNvm::take_crash_report`] after each request to learn whether
    /// the crash fired.
    pub fn arm_crash_point(&mut self, at: Cycle) {
        self.crash_points.clear();
        self.crash_points.push(at);
    }

    /// Queues an additional crash point without disturbing those already
    /// armed. Points fire earliest-first; a point still queued when an
    /// earlier one fires *survives into the recovery phase* and interrupts
    /// it at the next recovery-step boundary (a nested crash), forcing
    /// recovery to restart from the persisted commit record. Points beyond
    /// the end of recovery stay armed for later requests.
    pub fn queue_crash_point(&mut self, at: Cycle) {
        let idx = self.crash_points.partition_point(|&p| p <= at);
        self.crash_points.insert(idx, at);
    }

    /// The earliest queued crash point, if any.
    pub fn armed_crash_point(&self) -> Option<Cycle> {
        self.crash_points.first().copied()
    }

    /// All queued crash points, earliest first.
    pub fn armed_crash_points(&self) -> &[Cycle] {
        &self.crash_points
    }

    /// Disarms the *earliest* queued crash point without firing it,
    /// returning its cycle if one was queued. Later points stay armed.
    ///
    /// Disarming is the only way to stop a queued point from reaching the
    /// recovery phase: once a crash fires, every still-queued point that
    /// recovery's timeline overruns fires as a nested crash.
    pub fn disarm_crash_point(&mut self) -> Option<Cycle> {
        if self.crash_points.is_empty() {
            None
        } else {
            Some(self.crash_points.remove(0))
        }
    }

    /// Takes the record of the most recent injected crash, if one fired
    /// since the last call.
    pub fn take_crash_report(&mut self) -> Option<InjectedCrash> {
        self.injected_crash.take()
    }

    /// Fires the armed crash point if the timeline has passed it: checks
    /// `now` against the armed cycle and performs the crash + recovery.
    /// Returns the resume cycle if the crash fired. Harnesses may call this
    /// between requests; the controller calls it on every request entry.
    ///
    /// Power fails at the *end* of the armed cycle, so a request entering
    /// exactly at it is still serviced; the crash fires strictly after.
    pub fn poll_crash(&mut self, now: Cycle) -> Option<Cycle> {
        let at = *self.crash_points.first()?;
        if now <= at {
            return None;
        }
        Some(self.trigger_crash())
    }

    /// Whether the earliest queued crash point fires strictly before cycle
    /// `t` — used where the controller is about to block until `t` (a
    /// checkpoint stall, a drain): power fails mid-wait.
    fn crash_before(&self, t: Cycle) -> bool {
        self.crash_points.first().is_some_and(|&at| at < t)
    }

    /// Performs the earliest queued crash: classifies where it landed, runs
    /// §4.5 recovery as of that cycle, records the observability event, and
    /// returns the cycle at which the rebooted system resumes.
    fn trigger_crash(&mut self) -> Cycle {
        let at = self.crash_points.remove(0);

        // Classify the crash site before recovery tears the state down.
        let epoch_id = self.epoch.active_epoch;
        let (phase, mut inflight) = match &self.epoch.job {
            Some(job) if !job.is_done(at) => {
                (job.phase_at(at), job.inflight_writebacks_at(at))
            }
            _ => (thynvm_types::CkptPhase::Execution, 0),
        };
        inflight += self.nvm_wq.len_at(at) + self.dram_wq.len_at(at);

        let report = self.crash_and_recover(at);
        let outcome = if report.unrecoverable {
            thynvm_types::RecoveryOutcome::Unrecoverable
        } else if report.integrity_fallback {
            thynvm_types::RecoveryOutcome::CPenultIntegrityFallback
        } else if report.rolled_back_incomplete {
            thynvm_types::RecoveryOutcome::CPenult
        } else {
            thynvm_types::RecoveryOutcome::CLast
        };
        let event = thynvm_types::CrashEvent {
            cycle: at,
            epoch: epoch_id,
            phase,
            inflight_writebacks: inflight,
            outcome,
            recovery_step: None,
        };
        self.stats.record_crash(event.clone());
        let resume_at = at + report.recovery_cycles;
        self.injected_crash = Some(InjectedCrash { event, report, resume_at });
        resume_at
    }

    // ------------------------------------------------------------------
    // Media faults & self-healing
    // ------------------------------------------------------------------

    /// The media-fault model, when `cfg.media.enabled` (inspection).
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Mutable access to the media-fault model, e.g. to arm guaranteed
    /// transient flips ([`FaultModel::arm_transient_flips`]) in tests and
    /// demos.
    pub fn fault_model_mut(&mut self) -> Option<&mut FaultModel> {
        self.fault.as_mut()
    }

    /// Number of blocks permanently remapped to spare locations via the
    /// bad-block table.
    pub fn bad_block_remaps(&self) -> usize {
        self.bad_blocks.len()
    }

    /// Takes the most recent unrecoverable-read error (a location whose
    /// bounded retries all failed before the block was remapped), if any.
    pub fn take_media_error(&mut self) -> Option<Error> {
        self.last_media_error.take()
    }

    /// Takes the most recent table-overflow error: a BTT spill demanded
    /// while the previous spill's early epoch end was still pending, i.e.
    /// write pressure the overflow handshake could not absorb. The write is
    /// still force-inserted (correctness is preserved); the error reports
    /// that the table was undersized for the workload.
    pub fn take_overflow_error(&mut self) -> Option<Error> {
        self.last_overflow_error.take()
    }

    /// Arms a latent media fault in persisted checkpoint state. Consulted
    /// at the next recovery: whichever checkpoint is `C_last` then fails
    /// its integrity verification and recovery falls back to `C_penult`.
    /// With no completed checkpoint at recovery time the fault stays armed.
    pub fn inject_media_fault(&mut self, fault: MediaFault) {
        match fault {
            MediaFault::TornCommitRecord => self.injected_torn_commit = true,
            MediaFault::ClastBitFlip { addr } => self.injected_clast_flip = Some(addr),
            MediaFault::CorruptPttMetadata => self.injected_meta_corrupt = true,
        }
    }

    // ------------------------------------------------------------------
    // Secure persistent memory mode (counter-mode encryption, MAC tree)
    // ------------------------------------------------------------------

    /// The secure-mode model (encryption counters, integrity tree), when
    /// `cfg.security.enabled` (inspection).
    pub fn security_model(&self) -> Option<&SecurityModel> {
        self.security.as_ref()
    }

    /// Arms an adversarial tamper in persisted secure-mode state. Applied
    /// at the next crash once a completed checkpoint exists (nothing
    /// authenticated to forge before then — it stays armed); recovery's
    /// MAC / integrity-tree verification then detects it by recomputation
    /// and classifies it. Ignored when secure mode is off — without MACs
    /// nothing *models* the attacker's physical access, and the harness
    /// asserts detection, so arming would be a silent no-op lie.
    pub fn inject_tamper(&mut self, fault: TamperFault) {
        if self.security.is_some() {
            self.injected_tamper = Some(fault);
        }
    }

    /// The tamper armed but not yet applied, if any.
    pub fn armed_tamper(&self) -> Option<TamperFault> {
        self.injected_tamper
    }

    /// Takes the most recent both-images authentication failure
    /// ([`Error::IntegrityUnrecoverable`]): recovery found no checkpoint
    /// image that verifies and reset to the empty image rather than replay
    /// forged data.
    pub fn take_security_error(&mut self) -> Option<Error> {
        self.last_security_error.take()
    }

    /// MAC over the committed `C_last` image under the modeled key — what
    /// the next recovery's verification recomputes and compares.
    pub fn clast_mac(&self) -> u64 {
        self.mac_last
    }

    // ------------------------------------------------------------------
    // Volatile persist buffer (WPQ fault domain)
    // ------------------------------------------------------------------

    /// The persist buffer, when `cfg.wpq.enabled` (inspection).
    pub fn persist_buffer(&self) -> Option<&PersistBuffer> {
        self.pbuf.as_ref()
    }

    /// The most recent crash's partial-flush report — in particular
    /// whether the in-flight commit marker was salvaged (early commit).
    pub fn last_wpq_flush(&self) -> Option<WpqCrashReport> {
        self.last_wpq_flush
    }

    /// Takes the most recent §4.4 ordering violation: a commit record was
    /// persisted while the persist buffer still held data entries, so a
    /// crash could have made the commit durable before the data it commits.
    pub fn take_ordering_error(&mut self) -> Option<Error> {
        self.last_ordering_error.take()
    }

    /// Test hook: suppress every [`Self::wpq_fence`] until the next
    /// commit-record push, so the ordering audit (the runtime counterpart
    /// of lint rule L10) can be exercised without editing the checkpoint
    /// path. Cleared by [`Self::wpq_push_marker`] once the audit has run.
    pub fn skip_next_fence(&mut self) {
        self.wpq_skip_next_fence = true;
    }

    /// §4.4 ordering fence: stalls until the persist buffer has drained,
    /// so everything enqueued afterwards retires no earlier than what came
    /// before. A no-op returning `now` when the buffer is off — the
    /// WPQ-off timeline is bit-identical to a build without the feature.
    fn wpq_fence(&mut self, now: Cycle) -> Cycle {
        if self.pbuf.is_some() && self.wpq_skip_next_fence {
            return now;
        }
        match self.pbuf.as_mut() {
            Some(p) => {
                let done = p.fence(now);
                self.stats.wpq = *p.stats();
                done
            }
            None => now,
        }
    }

    /// Mirrors an NVM device write into the persist buffer (timing-only
    /// entry: content plumbing lives in the buffer's own unit tests and
    /// sink). Returns the cycle the issuer may proceed — later than
    /// `issue` when the buffer was full and back-pressured.
    fn wpq_push(&mut self, hw: HwAddr, issue: Cycle, retire: Cycle, kind: WpqKind) -> Cycle {
        match self.pbuf.as_mut() {
            Some(p) => {
                let resume = p.push(hw, &[], issue, retire, kind);
                self.stats.wpq = *p.stats();
                resume
            }
            None => issue,
        }
    }

    /// Enqueues a commit-record persist, auditing §4.4 on the way: if data
    /// entries are still pending at `issue`, the mandatory fence was
    /// skipped and the violation is recorded for `take_ordering_error`.
    fn wpq_push_marker(&mut self, hw: HwAddr, issue: Cycle, retire: Cycle) -> Cycle {
        self.wpq_skip_next_fence = false;
        // Audit on *held* entries, not retire times: a correct round
        // fences (empties the buffer) immediately before the marker, so
        // anything still held here means the fence was skipped.
        let pending = self.pbuf.as_ref().map_or(0, |p| p.held_data());
        if pending > 0 {
            self.last_ordering_error =
                Some(Error::UnfencedCommit { addr: PhysAddr::new(hw.raw()), pending });
        }
        self.wpq_push(hw, issue, retire, WpqKind::CommitMarker)
    }

    // ------------------------------------------------------------------
    // Graceful-degradation health ladder
    // ------------------------------------------------------------------

    /// The current health-ladder rung (`Healthy` when the ladder is off).
    pub fn health_rung(&self) -> HealthRung {
        self.health_mon.as_ref().map_or(HealthRung::Healthy, HealthMonitor::rung)
    }

    /// The health monitor, when `cfg.health.enabled` (inspection).
    pub fn health_monitor(&self) -> Option<&HealthMonitor> {
        self.health_mon.as_ref()
    }

    /// The rung persisted with `C_last`'s commit record — what recovery
    /// would rehydrate if a crash struck right now and `C_last` verified.
    /// Reference runs feed this to [`PersistenceOracle::record_health`]
    /// after each drained checkpoint.
    ///
    /// [`PersistenceOracle::record_health`]: crate::PersistenceOracle::record_health
    pub fn clast_health_rung(&self) -> HealthRung {
        self.health_rung_last
    }

    /// The rung captured for the checkpoint currently in flight, if any —
    /// the value its 64 B health record carries. Rotates into
    /// [`Self::clast_health_rung`] when the job retires.
    pub fn pending_health_rung(&self) -> Option<HealthRung> {
        self.pending_health_rung
    }

    /// Pages allocated across the functional stores (visible + committed +
    /// previous + archived images). Soak harnesses bound this to show the
    /// simulator's footprint stays proportional to the touched working
    /// set, not to simulated time.
    pub fn functional_footprint_pages(&self) -> usize {
        self.visible.allocated_pages()
            + self.committed.allocated_pages()
            + self.committed_prev.allocated_pages()
            + self.archive.iter().map(|(_, s)| s.allocated_pages()).sum::<usize>()
    }

    /// Takes the most recent degraded-store rejection
    /// ([`Error::Degraded`]) — a store refused because the ladder sits at
    /// `ReadOnly` or worse — if one occurred since the last call.
    pub fn take_health_error(&mut self) -> Option<Error> {
        self.last_health_error.take()
    }

    /// The bounded-retry policy governing media CRC retries — NVM data
    /// reads and recovery-side reads share it. Its
    /// [`RetryPolicy::total_backoff`] bounds the worst-case added latency of
    /// any single read, even with the spare pool drained.
    pub fn media_retry_policy(&self) -> RetryPolicy {
        RetryPolicy::new(self.cfg.media.max_read_retries, self.cfg.media.retry_backoff_ns)
    }

    /// The bounded-retry policy governing DRAM ECC refetches.
    pub fn dram_retry_policy(&self) -> RetryPolicy {
        RetryPolicy::new(
            self.cfg.dram_fault.max_refetch_retries,
            self.cfg.dram_fault.refetch_backoff_ns,
        )
    }

    /// Samples the observable health signals from state the controller
    /// already maintains (no device traffic, no cycles charged).
    fn health_signals(&self) -> HealthSignals {
        let scrub_backlog = self.fault.as_ref().map_or(0, |f| {
            f.stuck_cells()
                .filter(|(addr, _)| !self.bad_blocks.contains_key(&(addr & !(BLOCK_BYTES - 1))))
                .count() as u64
        });
        HealthSignals {
            spares_used: self.next_spare_slot,
            spares_total: self.cfg.media.spare_blocks,
            retries_total: self.stats.media.retries,
            refetches_total: self.stats.dram.refetch_retries + self.stats.dram.corrected_flips,
            spare_exhausted_total: self.stats.media.spare_exhausted,
            wal_redos_total: self.stats.media.wal_redos,
            scrub_backlog,
            outstanding_poison: self.dram_fault.as_ref().map_or(0, |e| e.outstanding() as u64),
            tampers_detected_total: self.stats.security.tampers_detected,
        }
    }

    /// One ladder evaluation at an epoch boundary (job retirement). A no-op
    /// with the ladder off, so disabled runs stay bit-identical.
    fn health_evaluate(&mut self) {
        if self.health_mon.is_none() {
            return;
        }
        let signals = self.health_signals();
        let mon = self.health_mon.as_mut().expect("invariant: is_none() checked above");
        mon.observe_epoch(&signals, &mut self.stats.health);
    }

    /// Rejects a store when the ladder rung forbids mutation (`ReadOnly`
    /// or `FailSafe`), recording the rejection for inspection.
    fn degraded_store_rejection(&mut self) -> Option<Error> {
        let rung = self.health_mon.as_ref()?.rung();
        if rung < HealthRung::ReadOnly {
            return None;
        }
        self.stats.health.stores_rejected += 1;
        let err = Error::Degraded { rung };
        self.last_health_error = Some(err.clone());
        Some(err)
    }

    /// Whether the Wounded posture's emergency-early epoch timer has
    /// expired: at `Wounded` or worse the epoch length divides by
    /// `cfg.health.emergency_divisor` so less work is at risk per crash.
    fn emergency_epoch_due(&self, now: Cycle) -> bool {
        let Some(mon) = self.health_mon.as_ref() else {
            return false;
        };
        if mon.rung() < HealthRung::Wounded {
            return false;
        }
        let shortened =
            Cycle::new(self.cfg.thynvm.epoch_max().raw() / u64::from(self.cfg.health.emergency_divisor));
        self.epoch.due(now, shortened)
    }

    // ------------------------------------------------------------------
    // DRAM fault domain (ECC, poison containment, quarantine)
    // ------------------------------------------------------------------

    /// The DRAM SEC-DED ECC model, when `cfg.dram_fault.enabled`
    /// (inspection).
    pub fn dram_ecc(&self) -> Option<&DramEccModel> {
        self.dram_fault.as_ref()
    }

    /// Mutable access to the DRAM ECC model, e.g. to arm guaranteed
    /// corrected flips ([`DramEccModel::arm_corrected_flips`]) or poison
    /// ([`DramEccModel::arm_poison`]) in tests and demos.
    pub fn dram_ecc_mut(&mut self) -> Option<&mut DramEccModel> {
        self.dram_fault.as_mut()
    }

    /// Takes the most recent DRAM poison-loss error — an uncorrectable
    /// error under *dirty* data, whose range was quarantined and rolled
    /// back to the last checkpoint — if one occurred since the last call.
    pub fn take_poison_error(&mut self) -> Option<Error> {
        self.last_poison_error.take()
    }

    /// Drains the quarantine events recorded since the last call: the
    /// `(physical base, length)` ranges whose dirty data was dropped and
    /// rolled back to the last checkpoint. Harnesses feed these to
    /// [`crate::PersistenceOracle::record_quarantine`] so the §4.5
    /// prediction tracks what the controller actually kept.
    pub fn take_quarantine_events(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.quarantine_events)
    }

    /// Poisoned 64 B working-region blocks intersecting `[off, off+len)`,
    /// or empty when the ECC model is off or the working region is not
    /// DRAM (NVM placement carries the media model's protection instead).
    fn dram_poisoned_in(&self, off: u64, len: u64) -> Vec<u64> {
        if self.cfg.thynvm.working_region != thynvm_types::WorkingRegion::Dram {
            return Vec::new();
        }
        self.dram_fault.as_ref().map_or_else(Vec::new, |e| e.poisoned_in(off, len))
    }

    /// Whether `[off, off+len)` of the working region is free of DRAM
    /// poison — the allocation-free form of [`Self::dram_poisoned_in`] for
    /// the per-access load path, where the answer is almost always "yes".
    fn dram_poison_free(&self, off: u64, len: u64) -> bool {
        if self.cfg.thynvm.working_region != thynvm_types::WorkingRegion::Dram {
            return true;
        }
        self.dram_fault.as_ref().is_none_or(|e| e.first_poisoned_in(off, len).is_none())
    }

    /// Functional side of a quarantine: the software-visible bytes of
    /// `[base, base + len)` roll back to the last captured checkpoint
    /// (committed contents plus any captured-but-not-yet-retired writes),
    /// and the active epoch's write log drops the portions falling inside
    /// the range — the poisoned dirty data must not survive anywhere.
    // lint: recovery-path
    fn quarantine_rollback(&mut self, base: u64, len: u64) {
        let end = base + len;
        // Drop (or split) working-log entries overlapping the range.
        let entries = std::mem::take(&mut self.working_log);
        for (addr, data) in entries {
            let a_end = addr + data.len() as u64;
            if a_end <= base || addr >= end {
                self.working_log.push((addr, data));
                continue;
            }
            if addr < base {
                self.working_log.push((addr, data[..(base - addr) as usize].to_vec()));
            }
            if a_end > end {
                self.working_log.push((end, data[(end - addr) as usize..].to_vec()));
            }
        }
        // Rebuild the range from the last checkpoint plus captured writes.
        let mut img = vec![0u8; len as usize];
        self.committed.read(thynvm_types::HwAddr::new(base), &mut img);
        for (addr, data) in &self.ckpting_log {
            let a_end = *addr + data.len() as u64;
            if a_end <= base || *addr >= end {
                continue;
            }
            let from = base.max(*addr);
            let to = end.min(a_end);
            img[(from - base) as usize..(to - base) as usize]
                .copy_from_slice(&data[(from - addr) as usize..(to - addr) as usize]);
        }
        self.visible.write(thynvm_types::HwAddr::new(base), &img);
        self.quarantine_events.push((base, len));
    }

    /// Quarantines a poisoned *dirty* PTT page: its dirty data is dropped
    /// (the poison must never reach NVM and become durable corruption),
    /// the software-visible range rolls back to the last checkpoint, and
    /// the page leaves the page-writeback scheme — it re-enters through
    /// the ordinary §3.3 promotion counters if it stays hot. When the
    /// page's `C_last` lives in a checkpoint region it is copied home
    /// NVM-to-NVM so reads keep resolving after the PTT entry is freed;
    /// the poisoned DRAM copy is never the source. Returns the cycle the
    /// copy-home lands.
    // lint: recovery-path
    fn quarantine_page(&mut self, page: PageIndex, now: Cycle) -> Cycle {
        let Some(entry) = self.ptt.remove(page) else { return now };
        let off = self.space.working_offset(self.space.working_page(entry.slot));
        let mut done = now;
        if let Some(region) = entry.clast_region {
            let src = self.space.checkpoint_page(region, page);
            done = self.nvm.access(src, AccessKind::Read, PAGE_BYTES as u32, done);
            self.stats.nvm_reads += 1;
            self.stats.nvm_read_bytes += PAGE_BYTES;
            let dst = self.remapped(self.space.home(page.base_addr()));
            done = self.nvm.access(dst, AccessKind::Write, PAGE_BYTES as u32, done);
            self.stats.record_nvm_write(PAGE_BYTES, NvmWriteClass::Migration);
            self.media_note_write(dst, PAGE_BYTES as u32);
            self.security_note_write(dst, PAGE_BYTES as u32);
        }
        // With no checkpointed copy the Home Region still holds the page's
        // pre-promotion bytes — nothing durable ever left it — so no copy
        // is needed.
        let poisoned = self.dram_poisoned_in(off, PAGE_BYTES);
        if let Some(ecc) = self.dram_fault.as_mut() {
            for b in &poisoned {
                ecc.clear_block(*b);
            }
        }
        self.stats.dram.poison_dropped += poisoned.len() as u64;
        self.quarantine_rollback(page.base_addr().raw(), PAGE_BYTES);
        self.stats.dram.quarantined_pages += 1;
        self.stats.dram.quarantine_dropped_bytes += PAGE_BYTES;
        self.stats.pages_demoted += 1;
        self.last_poison_error =
            Some(Error::DramPoisonLost { addr: page.base_addr(), bytes: PAGE_BYTES });
        done
    }

    /// Quarantines a poisoned DRAM-buffered block working copy (block
    /// remapping's cooperation/overlap buffer): the block's dirty data is
    /// dropped and its visible bytes roll back to the last checkpoint; the
    /// BTT entry keeps only its checkpointed versions. `off` is the
    /// block-aligned working-region offset of the buffer slot.
    // lint: recovery-path
    fn quarantine_buffered_block(&mut self, block: BlockIndex, off: u64, now: Cycle) -> Cycle {
        let poisoned = self.dram_poisoned_in(off, BLOCK_BYTES);
        if let Some(ecc) = self.dram_fault.as_mut() {
            for b in &poisoned {
                ecc.clear_block(*b);
            }
        }
        self.stats.dram.poison_dropped += poisoned.len() as u64;
        let state = self.btt.get_mut(block).map(|e| {
            e.wactive = None;
            (e.pending.is_none(), e.clast_region.is_none())
        });
        match state {
            // Nothing checkpointed either: the entry is empty, drop it.
            Some((true, true)) => {
                self.btt.remove(block);
            }
            // Only checkpointed copies remain: the entry just went
            // quiescent, so hint it for victim selection.
            Some((true, false)) => self.btt.note_quiescent(block),
            _ => {}
        }
        self.quarantine_rollback(block.base_addr().raw(), BLOCK_BYTES);
        self.stats.dram.quarantine_dropped_bytes += BLOCK_BYTES;
        self.last_poison_error =
            Some(Error::DramPoisonLost { addr: block.base_addr(), bytes: BLOCK_BYTES });
        now
    }

    /// Heals a poisoned-but-recoverable DRAM block: bounded DRAM re-reads
    /// (each still fails — the stored bits themselves are corrupt), then
    /// one NVM read of the checkpointed copy at `src` and a DRAM rewrite.
    /// The caller guarantees the DRAM block is clean, i.e. `src` holds its
    /// exact bytes, so the visible image is untouched. Returns the cycle
    /// the healing DRAM write lands.
    // lint: recovery-path
    fn dram_refetch_block(&mut self, block: BlockIndex, off: u64, src: HwAddr, now: Cycle) -> Cycle {
        let mut done = now;
        for (_, backoff) in self.dram_retry_policy().schedule() {
            done += backoff;
            done = self.dram.access(HwAddr::new(off), AccessKind::Read, BLOCK_BYTES as u32, done);
            self.stats.dram_reads += 1;
            self.stats.dram_read_bytes += BLOCK_BYTES;
            self.stats.dram.refetch_retries += 1;
            self.stats.retry.dram_attempts += 1;
        }
        done = self.nvm_data_read(block, src, BLOCK_BYTES as u32, done);
        if let Some(ecc) = self.dram_fault.as_mut() {
            if ecc.clear_block(off & !(BLOCK_BYTES - 1)) {
                self.stats.dram.poison_refetched += 1;
            }
        }
        self.working_write(off, BLOCK_BYTES as u32, done)
    }

    /// Attributes CRC compute/verify work for `bytes` of data. Pure stats
    /// (the CRC stages are pipelined with the burst transfers); attributed
    /// only while integrity checking is enabled.
    fn charge_crc(&mut self, bytes: u64) {
        if !self.cfg.media.integrity {
            return;
        }
        // Zero bytes touch zero CRC blocks: attribute nothing. (This once
        // charged `max(1)` blocks, so a zero-length transfer inflated
        // `crc_checked_blocks`; no current call site passes zero, but the
        // accounting must not rely on that.)
        let blocks = bytes.div_ceil(BLOCK_BYTES);
        if blocks == 0 {
            return;
        }
        self.stats.media.crc_checked_blocks += blocks;
        self.stats.media.crc_check_cycles += Cycle::from_ns(CRC_NS_PER_BLOCK * blocks);
    }

    /// Feeds one NVM data write into the wear model. When the write pushes
    /// its row across the stuck-at threshold a cell goes permanently bad;
    /// the read path and the scrubber handle it from then on.
    fn media_note_write(&mut self, hw: HwAddr, bytes: u32) {
        let Some(fault) = self.fault.as_mut() else { return };
        if fault.record_write(hw, bytes).is_some() {
            self.stats.media.record_fault(FaultKind::StuckAt);
        }
    }

    /// Attributes counter-mode encryption + MAC work for `bytes` of data
    /// (`encrypt` distinguishes the write path from read-side decrypt +
    /// verify). Pure stats, like [`Self::charge_crc`]: the AES-CTR pads are
    /// precomputed from the counters and XORed in the controller pipeline,
    /// overlapping the burst transfers. A no-op with secure mode off, so
    /// disabled runs stay bit-identical.
    fn charge_crypto(&mut self, bytes: u64, encrypt: bool) {
        if self.security.is_none() {
            return;
        }
        let blocks = bytes.div_ceil(BLOCK_BYTES);
        if blocks == 0 {
            return;
        }
        let ns = (self.cfg.security.crypto_ns_per_block + self.cfg.security.mac_ns_per_block)
            * blocks;
        self.stats.security.crypto_cycles += Cycle::from_ns(ns);
        if encrypt {
            self.stats.security.blocks_encrypted += blocks;
        } else {
            self.stats.security.blocks_verified += blocks;
        }
    }

    /// Feeds one NVM data write into the secure-mode model: every touched
    /// 64 B block is re-encrypted under a bumped write counter (counter
    /// reuse would break CTR-mode confidentiality), which dirties the
    /// counter table the next epoch boundary must persist.
    fn security_note_write(&mut self, hw: HwAddr, bytes: u32) {
        let Some(sec) = self.security.as_mut() else { return };
        let start = hw.raw() & !(BLOCK_BYTES - 1);
        let end = hw.raw() + u64::from(bytes);
        let mut b = start;
        while b < end {
            sec.note_block_write(b);
            b += BLOCK_BYTES;
        }
        self.charge_crypto(u64::from(bytes), true);
    }

    /// Resolves the bad-block indirection: accesses to a remapped block go
    /// to its spare location instead of the worn-out original.
    fn remapped(&self, hw: HwAddr) -> HwAddr {
        if self.bad_blocks.is_empty() {
            return hw;
        }
        let base = hw.raw() & !(BLOCK_BYTES - 1);
        match self.bad_blocks.get(&base) {
            Some(&slot) => self.space.spare_block(slot).offset(hw.raw() - base),
            None => hw,
        }
    }

    /// Whether the spare-block pool has been fully consumed: no further
    /// bad-block remaps are possible and the device can no longer heal
    /// itself (reads are still served through bounded CRC retries).
    pub fn spares_exhausted(&self) -> bool {
        self.next_spare_slot >= self.cfg.media.spare_blocks
    }

    /// Remaps the block at device address `base` to a fresh spare slot: the
    /// controller writes an intent record to the write-ahead log, rewrites
    /// the block's good data (which it still holds) to the spare location,
    /// and CRC-seals the log record — only then is the indirection in the
    /// persistent bad-block table effective, so a crash mid-remap leaves a
    /// torn record that is detected and redone, never compounded. Each
    /// block is remapped at most once — later accesses resolve through the
    /// table before touching the media.
    ///
    /// Returns the cycle the seal lands, or `None` when the spare pool is
    /// exhausted: the remap is dropped, `spare_exhausted` is counted, and
    /// the block keeps being served with per-read CRC retries (graceful
    /// degradation).
    // lint: recovery-path
    fn remap_bad_block(&mut self, base: u64, now: Cycle) -> Option<Cycle> {
        if self.spares_exhausted() {
            self.stats.media.spare_exhausted += 1;
            self.last_media_error = Some(Error::SpareExhausted { addr: PhysAddr::new(base) });
            return None;
        }
        // WAL intent: the (bad block → spare slot) assignment.
        let wal = self.space.backup_wal(self.wal_seq);
        self.wal_seq += 1;
        let mut t = self.nvm.access(wal, AccessKind::Write, 64, now);
        self.stats.record_nvm_write(64, NvmWriteClass::Migration);
        self.charge_crc(64);
        self.wpq_push(wal, now, t, WpqKind::Data);
        let slot = self.next_spare_slot;
        self.next_spare_slot += 1;
        self.bad_blocks.insert(base, slot);
        let dst = self.space.spare_block(slot);
        let payload_at = self.nvm.access(dst, AccessKind::Write, BLOCK_BYTES as u32, t);
        self.stats.record_nvm_write(BLOCK_BYTES, NvmWriteClass::Migration);
        self.media_note_write(dst, BLOCK_BYTES as u32);
        self.security_note_write(dst, BLOCK_BYTES as u32);
        self.wpq_push(dst, t, payload_at, WpqKind::Data);
        t = payload_at;
        // §4.4: intent and payload must be durable before the seal that
        // commits them.
        t = self.wpq_fence(t);
        // CRC seal: the remap commits when this lands.
        let sealed = self.nvm.access(wal, AccessKind::Write, 64, t);
        self.stats.record_nvm_write(64, NvmWriteClass::Migration);
        self.charge_crc(64);
        self.wpq_push(wal, t, sealed, WpqKind::Data);
        self.stats.media.wal_seals += 1;
        self.stats.media.remaps += 1;
        Some(sealed)
    }

    /// One NVM data read on the load path: applies the bad-block remap,
    /// charges the device access, and — when media faults are modeled —
    /// runs the detect/heal pipeline. With integrity checking on, a read
    /// that fails its per-64 B CRC is retried with bounded backoff
    /// (transient flips clear on retry); a location that keeps failing is
    /// permanently bad and its block is remapped to a spare. With integrity
    /// off, the corrupted bytes are silently delivered to software.
    // lint: recovery-path
    fn nvm_data_read(&mut self, block: BlockIndex, hw: HwAddr, bytes: u32, now: Cycle) -> Cycle {
        let hw = self.remapped(hw);
        self.stats.nvm_reads += 1;
        self.stats.nvm_read_bytes += u64::from(bytes);
        let mut done = self.nvm.access(hw, AccessKind::Read, bytes, now);
        // Secure mode decrypts + MAC-verifies every NVM data read,
        // independent of the media-fault model.
        self.charge_crypto(u64::from(bytes), false);
        if self.fault.is_none() {
            return done;
        }
        self.charge_crc(u64::from(bytes));
        let fault = self.fault.as_mut().expect("invariant: is_none() checked above");
        if fault.is_quiet() {
            // Zero rates, nothing armed, nothing stuck: the model cannot
            // produce a fault and its streams are never consulted, so the
            // consultation is skipped wholesale (counted for the simspeed
            // harness).
            self.stats.perf.nvm_quiet_reads += 1;
            return done;
        }
        let Some(ev) = fault.read_fault(hw, bytes) else {
            return done;
        };
        if ev.kind == FaultKind::BitFlip {
            // Stuck-at cells were counted when the wear model created them.
            self.stats.media.record_fault(FaultKind::BitFlip);
        }
        let fault_offset = ev.addr.saturating_sub(hw.raw()).min(u64::from(bytes) - 1);
        if !self.cfg.media.integrity {
            // No CRCs: nothing detects the corruption; the wrong bytes are
            // delivered to software by the functional layer.
            self.stats.media.silent_corruptions += 1;
            self.last_media_error = Some(Error::MediaCorruption {
                addr: PhysAddr::new(block.base_addr().raw() + fault_offset),
                kind: ev.kind,
            });
            self.pending_corruption = Some((block.base_addr().raw() + fault_offset, ev.mask));
            return done;
        }
        // The CRC rejected the data: retry with bounded backoff.
        let mut healed = false;
        for (_, backoff) in self.media_retry_policy().schedule() {
            done += backoff;
            done = self.nvm.access(hw, AccessKind::Read, bytes, done);
            self.stats.nvm_reads += 1;
            self.stats.nvm_read_bytes += u64::from(bytes);
            self.stats.media.retries += 1;
            self.stats.retry.media_attempts += 1;
            self.charge_crc(u64::from(bytes));
            if self.fault.as_mut().expect("invariant: is_none() checked above").read_fault(hw, bytes).is_none() {
                healed = true;
                break;
            }
        }
        if !healed {
            // Every retry failed: the location is permanently bad (a
            // stuck-at cell). Remap the block away from it; with the spare
            // pool drained the block keeps limping along on CRC retries.
            self.last_media_error = Some(Error::RetriesExhausted {
                addr: PhysAddr::new(block.base_addr().raw() + fault_offset),
                attempts: self.cfg.media.max_read_retries,
            });
            done = self.remap_bad_block(hw.raw() & !(BLOCK_BYTES - 1), done).unwrap_or(done);
        }
        done
    }

    /// The background scrubber: proactively remaps every block whose cells
    /// the wear model has marked stuck, repairing checkpoint regions before
    /// the next epoch reads them. Runs at job retirement — between epochs,
    /// off the critical path.
    fn scrub_media(&mut self, now: Cycle) {
        let cells: Vec<u64> = match self.fault.as_ref() {
            Some(f) => f.stuck_cells().map(|(addr, _)| addr).collect(),
            None => return,
        };
        // Wounded posture: the scrubber gets a bounded cycle budget so it
        // can no longer starve foreground traffic; what it cannot finish is
        // deferred to the next epoch boundary (counted). Off-ladder runs
        // keep the unbudgeted behaviour bit-identically.
        let deadline = self
            .health_mon
            .as_ref()
            .filter(|m| m.rung() >= HealthRung::Wounded)
            .map(|_| now + Cycle::from_ns(self.cfg.health.scrub_budget_ns));
        let mut t = now;
        for cell in cells {
            if self.spares_exhausted() {
                // Nothing left to heal with: stop scrubbing; reads keep
                // being served through bounded CRC retries.
                break;
            }
            if deadline.is_some_and(|d| t > d) {
                self.stats.health.scrub_deferrals += 1;
                break;
            }
            let base = cell & !(BLOCK_BYTES - 1);
            if self.bad_blocks.contains_key(&base) {
                continue; // already remapped away from the bad cell
            }
            // Verify the block (NVM read + CRC), then remap it to a spare.
            self.stats.nvm_reads += 1;
            self.stats.nvm_read_bytes += BLOCK_BYTES;
            t = self.nvm.access(HwAddr::new(base), AccessKind::Read, BLOCK_BYTES as u32, t);
            self.charge_crc(BLOCK_BYTES);
            if let Some(done) = self.remap_bad_block(base, t) {
                t = done;
                self.stats.media.scrub_repairs += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Working Data Region access (placement per §4.1 footnote 3)
    // ------------------------------------------------------------------

    /// Hardware-address offset that keeps an NVM-placed working region
    /// disjoint from the Home Region and Checkpoint Region A on the NVM
    /// device's bank/row mapping.
    const NVM_WORKING_BASE: u64 = 1 << 41;

    /// Writes `bytes` at working-region offset `off`, honoring the
    /// configured placement.
    fn working_write(&mut self, off: u64, bytes: u32, now: Cycle) -> Cycle {
        match self.cfg.thynvm.working_region {
            thynvm_types::WorkingRegion::Dram => {
                let done = self
                    .dram
                    .access(thynvm_types::HwAddr::new(off), AccessKind::Write, bytes, now);
                self.stats.record_dram_write(u64::from(bytes));
                // A whole-block rewrite re-encodes the ECC word: any poison
                // fully covered by the write is gone with the bad bits.
                if let Some(ecc) = self.dram_fault.as_mut() {
                    self.stats.dram.poison_overwritten += ecc.note_write(off, bytes) as u64;
                }
                done
            }
            thynvm_types::WorkingRegion::Nvm => {
                let done = self.nvm.access(
                    thynvm_types::HwAddr::new(Self::NVM_WORKING_BASE + off),
                    AccessKind::Write,
                    bytes,
                    now,
                );
                self.stats.record_nvm_write(u64::from(bytes), NvmWriteClass::Cpu);
                done
            }
        }
    }

    /// Reads `bytes` at working-region offset `off`, honoring the
    /// configured placement.
    fn working_read(&mut self, off: u64, bytes: u32, now: Cycle) -> Cycle {
        match self.cfg.thynvm.working_region {
            thynvm_types::WorkingRegion::Dram => {
                let done =
                    self.dram.access(thynvm_types::HwAddr::new(off), AccessKind::Read, bytes, now);
                self.stats.dram_reads += 1;
                self.stats.dram_read_bytes += u64::from(bytes);
                // Every DRAM read passes through the SEC-DED check: count
                // corrections and register fresh poison here; the *response*
                // (refetch or quarantine) is the caller's, who knows whether
                // the data under the poison is dirty.
                if let Some(ecc) = self.dram_fault.as_mut() {
                    if ecc.is_quiet() {
                        // The SEC-DED model cannot fault: skip the check
                        // (counted for the simspeed harness).
                        self.stats.perf.dram_quiet_reads += 1;
                    } else {
                        match ecc.observe_read(off, bytes) {
                            Some(EccReadFault::Corrected) => {
                                self.stats.dram.corrected_flips += 1;
                            }
                            Some(EccReadFault::Poisoned { fresh: true, .. }) => {
                                self.stats.dram.poisoned_blocks += 1;
                            }
                            _ => {}
                        }
                    }
                }
                done
            }
            thynvm_types::WorkingRegion::Nvm => {
                let done = self.nvm.access(
                    thynvm_types::HwAddr::new(Self::NVM_WORKING_BASE + off),
                    AccessKind::Read,
                    bytes,
                    now,
                );
                self.stats.nvm_reads += 1;
                self.stats.nvm_read_bytes += u64::from(bytes);
                done
            }
        }
    }

    // ------------------------------------------------------------------
    // Job retirement and version rotation
    // ------------------------------------------------------------------

    /// If the in-flight checkpoint completed by `now`, commit it: apply the
    /// captured write log to the committed image, rotate versions
    /// (`pending` → `C_last`), thaw pages, merge cooperation blocks, and
    /// apply deferred scheme switches.
    fn retire_job_if_done(&mut self, now: Cycle) {
        // A job whose completion lies at or beyond an armed crash point can
        // never commit: power fails first. Leaving it in place lets the
        // crash trigger find it and roll it back (`C_penult`).
        if let (Some(&at), Some(job)) = (self.crash_points.first(), self.epoch.job.as_ref()) {
            if job.done_at > at {
                return;
            }
        }
        let Some(job) = self.epoch.take_finished_job(now) else {
            return;
        };
        self.commit_job(job);
    }

    /// Commits a *taken* checkpoint job: rotates the three-version images,
    /// MACs, health rungs, block/page versions, and applies deferred
    /// scheme switches. Shared by normal retirement and by the crash-time
    /// early-commit path, where the persist buffer's partial flush
    /// salvaged the commit marker of a still-in-flight job.
    fn commit_job(&mut self, job: CkptJob) {
        let retire_at = job.done_at;

        // The image about to be superseded becomes `C_penult` — the
        // integrity-fallback target should `C_last` later fail verification
        // (media CRCs or secure-mode MAC authentication).
        if self.fault.is_some() || self.cfg.media.integrity || self.security.is_some() {
            self.committed_prev = self.committed.clone();
        }

        // Functional commit: the checkpointed epoch's writes become durable.
        for (addr, data) in self.ckpting_log.drain(..) {
            self.committed.write(thynvm_types::HwAddr::new(addr), &data);
        }

        // Rotate the checkpoint MACs with the images: the superseded
        // image's MAC becomes the fallback's reference, and the fresh
        // committed image is authenticated under the modeled key.
        if self.security.is_some() {
            self.mac_penult = self.mac_last;
            self.mac_last = self.committed.fingerprint_with_basis(self.mac_key);
        }

        // Rotate the persisted health rung alongside the images it was
        // durable with: the superseded `C_last`'s rung becomes the fallback
        // reference, the just-committed record's rung becomes `C_last`'s.
        if self.health_mon.is_some() {
            self.health_rung_penult = self.health_rung_last;
            if let Some(rung) = self.pending_health_rung.take() {
                self.health_rung_last = rung;
            }
        }

        // §6 bug-tolerance extension: archive the committed image.
        if self.archive_depth > 0 {
            self.archive.push_back((self.epoch.completed, self.committed.clone()));
            while self.archive.len() > self.archive_depth {
                self.archive.pop_front();
            }
        }

        // Rotate block versions (iteration order does not affect timing
        // here; the merge lists are sorted before their DRAM writes below).
        let mut merge_blocks: Vec<(BlockIndex, u32)> = Vec::new();
        let mut drop_blocks: Vec<BlockIndex> = Vec::new();
        let mut newly_quiescent: Vec<BlockIndex> = Vec::new();
        for (block, entry) in self.btt.iter_mut() {
            if let Some(loc) = entry.pending.take() {
                let region = match loc {
                    WactiveLoc::Nvm(r) => r,
                    // Buffered copies were drained to NVM at capture time;
                    // `pending` only ever holds NVM locations.
                    WactiveLoc::DramBuffered { slot } => {
                        debug_assert!(false, "buffered slot {slot} captured un-drained");
                        Region::A
                    }
                };
                entry.clast_region = Some(region);
                if entry.wactive.is_none() {
                    newly_quiescent.push(block);
                }
            }
            if entry.is_quiescent() && self.pending_pages.contains_key(&block.page()) {
                // Cooperation block for a page under page writeback: the
                // page's DRAM copy absorbs it (one DRAM write), entry freed.
                if let Some(pe) = self.ptt.get(block.page()) {
                    merge_blocks.push((block, pe.slot));
                    drop_blocks.push(block);
                }
            }
        }
        // Hint the freshly-quiescent entries for victim selection (ones the
        // merge below drops become stale hints, discarded lazily).
        for block in newly_quiescent {
            self.btt.note_quiescent(block);
        }
        merge_blocks.sort_unstable_by_key(|(b, _)| *b);
        for (block, slot) in merge_blocks {
            let hw = self
                .space
                .working_page(slot)
                .offset(block.slot_in_page() * BLOCK_BYTES);
            let off = self.space.working_offset(hw);
            self.working_write(off, BLOCK_BYTES as u32, retire_at);
        }
        for block in drop_blocks {
            self.btt.remove(block);
        }

        // Rotate page versions and thaw.
        for (page, pending) in std::mem::take(&mut self.pending_pages) {
            if let Some(entry) = self.ptt.get_mut(page) {
                entry.clast_region = Some(pending.target);
                entry.frozen = false;
            }
        }

        // Deferred scheme switching (§3.4), now that the system is quiescent.
        self.apply_scheme_switches(retire_at);

        // Background scrubbing between epochs: proactively remap blocks the
        // wear model has marked stuck before the next epoch reads them.
        if self.cfg.media.scrub {
            self.scrub_media(retire_at);
        }

        // Free table pressure: entries belonging only to committed
        // checkpoints are reclaimed once occupancy is high (§4.3 frees
        // penultimate-checkpoint entries at epoch boundaries). The `C_last`
        // copies stranded in Region A migrate home, charged as migration
        // traffic off the critical path.
        if self.btt.len() * 10 >= self.btt.capacity() * 6 {
            let excess = self.btt.len().saturating_sub(self.btt.capacity() * 6 / 10);
            self.reclaim_quiescent(retire_at, excess);
        }

        // Epoch boundary: one health-ladder evaluation over the signals the
        // retired epoch (and its scrub pass) left behind.
        self.health_evaluate();
    }

    /// Applies promotions/demotions decided from the previous epoch's store
    /// counters.
    fn apply_scheme_switches(&mut self, now: Cycle) {
        let counts = std::mem::take(&mut self.pending_switch_counts);
        self.apply_scheme_switches_with(&counts, now);
        // Recycle the snapshot's allocation for the next epoch.
        self.switch_scratch = counts;
        self.switch_scratch.clear();
    }

    /// The body of [`Self::apply_scheme_switches`], with the store-counter
    /// snapshot borrowed so its allocation can be recycled by the caller.
    fn apply_scheme_switches_with(&mut self, counts: &FxHashMap<PageIndex, u32>, now: Cycle) {
        if self.cfg.thynvm.mode == CkptMode::BlockOnly {
            return;
        }
        let promote = u32::from(self.cfg.thynvm.promote_threshold);
        let demote = u32::from(self.cfg.thynvm.demote_threshold);
        let force_pages = self.cfg.thynvm.mode == CkptMode::PageOnly;

        // Promotions: hot pages move under page writeback (most promotions
        // already happened intra-epoch; this sweeps stragglers).
        let mut hot_pages: Vec<PageIndex> = counts
            .iter()
            .filter(|(_, &count)| count >= promote || (force_pages && count > 0))
            .map(|(&page, _)| page)
            .collect();
        hot_pages.sort_unstable();
        for page in hot_pages {
            if self.ptt.get(page).is_none() {
                self.promote_page(page, now);
            }
        }

        if force_pages {
            return; // PageOnly never demotes
        }

        // Demotions: cold pages leave DRAM (migration NVM write).
        let mut cold: Vec<PageIndex> = self
            .ptt
            .iter()
            .filter(|(page, e)| {
                !e.dirty
                    && !e.frozen
                    && counts.get(page).copied().unwrap_or(0) <= demote
            })
            .map(|(page, _)| page)
            .collect();
        cold.sort_unstable();
        for page in cold {
            self.demote_page(page, now);
        }
    }

    /// Moves `page` under the page-writeback scheme: allocates a PTT entry
    /// and DRAM slot, assembles the page's current contents into DRAM (bulk
    /// NVM read + DRAM fill), and retires the page's block-remapping state.
    /// Returns the DRAM slot, or `None` if the PTT/DRAM is full (in
    /// `PageOnly` mode a clean resident page is demoted to make room).
    fn promote_page(&mut self, page: PageIndex, now: Cycle) -> Option<u32> {
        if self.ptt.get(page).is_some() {
            return self.ptt.get(page).map(|e| e.slot);
        }
        if self.ptt.is_full() && self.cfg.thynvm.mode == CkptMode::PageOnly {
            // Page-only ablation: evict a clean, idle page (CoW-style).
            let victim = self
                .ptt
                .iter()
                .filter(|(_, e)| !e.dirty && !e.frozen)
                .map(|(p, _)| p)
                .min();
            if let Some(victim) = victim {
                self.demote_page(victim, now);
            }
        }
        let slot = self.ptt.insert(page)?;
        // Assemble the page: bulk NVM read + DRAM fill.
        self.nvm.access(
            self.space.home(page.base_addr()),
            AccessKind::Read,
            PAGE_BYTES as u32,
            now,
        );
        self.stats.nvm_reads += 1;
        self.stats.nvm_read_bytes += PAGE_BYTES;
        let off = self.space.working_offset(self.space.working_page(slot));
        self.working_write(off, PAGE_BYTES as u32, now);
        self.stats.pages_promoted += 1;
        // The DRAM copy is now authoritative: block entries without an
        // in-flight checkpoint are dropped; ones still being checkpointed
        // keep their pending state and are swept after retirement.
        for block in page.blocks() {
            let drop_it = match self.btt.get_mut(block) {
                Some(e) => {
                    e.wactive = None;
                    e.pending.is_none()
                }
                None => false,
            };
            if drop_it {
                self.btt.remove(block);
            }
        }
        Some(slot)
    }

    /// Demotes `page` out of DRAM: one 4 KiB migration write to the Home
    /// Region, PTT entry freed.
    fn demote_page(&mut self, page: PageIndex, now: Cycle) {
        let Some(entry) = self.ptt.remove(page) else { return };
        let off = self.space.working_offset(self.space.working_page(entry.slot));
        self.working_read(off, PAGE_BYTES as u32, now);
        let poisoned = self.dram_poisoned_in(off, PAGE_BYTES);
        if !poisoned.is_empty() {
            // The page is clean (demotion skips dirty pages), so its exact
            // bytes exist intact in NVM: source the migration copy from
            // `C_last` instead of the poisoned DRAM — NVM-to-NVM, counted
            // as refetches because no data is lost.
            if let Some(ecc) = self.dram_fault.as_mut() {
                for b in &poisoned {
                    ecc.clear_block(*b);
                }
            }
            self.stats.dram.poison_refetched += poisoned.len() as u64;
            if let Some(region) = entry.clast_region {
                let src = self.space.checkpoint_page(region, page);
                self.nvm.access(src, AccessKind::Read, PAGE_BYTES as u32, now);
                self.stats.nvm_reads += 1;
                self.stats.nvm_read_bytes += PAGE_BYTES;
                let dst = self.remapped(self.space.home(page.base_addr()));
                self.nvm.access(dst, AccessKind::Write, PAGE_BYTES as u32, now);
                self.stats.record_nvm_write(PAGE_BYTES, NvmWriteClass::Migration);
                self.media_note_write(dst, PAGE_BYTES as u32);
                self.security_note_write(dst, PAGE_BYTES as u32);
            }
            // With no checkpointed copy the Home Region already holds the
            // page's bytes, so the demotion is pure bookkeeping.
            self.stats.pages_demoted += 1;
            return;
        }
        let dst = self.remapped(self.space.home(page.base_addr()));
        self.nvm.access(dst, AccessKind::Write, PAGE_BYTES as u32, now);
        self.stats.record_nvm_write(PAGE_BYTES, NvmWriteClass::Migration);
        self.media_note_write(dst, PAGE_BYTES as u32);
        self.security_note_write(dst, PAGE_BYTES as u32);
        self.stats.pages_demoted += 1;
    }

    /// The page-writeback store: write the block into the page's DRAM slot.
    fn write_to_page(&mut self, block: BlockIndex, bytes: u32, now: Cycle) -> Cycle {
        let entry = self.ptt.get_mut(block.page()).expect("page resident");
        entry.dirty = true;
        bump_counter(&mut entry.store_count);
        let hw = self
            .space
            .working_page(entry.slot)
            .offset(block.slot_in_page() * BLOCK_BYTES);
        let off = self.space.working_offset(hw);
        let done = self.working_write(off, bytes, now);
        self.dram_wq.push(done, now)
    }

    // ------------------------------------------------------------------
    // Store / load paths
    // ------------------------------------------------------------------

    /// Allocates (or reuses) a DRAM buffer slot for a cooperation /
    /// unsafe-`C_penult` block write and performs the DRAM write.
    fn buffered_block_write(&mut self, block: BlockIndex, bytes: u32, now: Cycle) -> Cycle {
        if self.btt.entry_or_insert(block).is_none() {
            // Overflow during cooperation: reclaim committed entries first;
            // if nothing is reclaimable, flag an early epoch end and spill
            // (bounded by one platform event).
            if self.reclaim_quiescent(now, 64) == 0 {
                if self.epoch.overflow_pending {
                    self.last_overflow_error = Some(Error::TableFull { table: "BTT" });
                }
                self.epoch.overflow_pending = true;
                self.btt_spills += 1;
            }
        }
        let entry = self.btt.force_insert(block);
        bump_counter(&mut entry.store_count);
        let slot = match entry.wactive {
            Some(WactiveLoc::DramBuffered { slot }) => slot,
            _ => {
                let slot = self.next_block_slot;
                self.next_block_slot = self.next_block_slot.wrapping_add(1);
                entry.wactive = Some(WactiveLoc::DramBuffered { slot });
                self.epoch_dirty_blocks += 1;
                slot
            }
        };
        let hw = self.space.working_block(slot, self.ptt.capacity());
        let off = self.space.working_offset(hw);
        let done = self.working_write(off, bytes, now);
        self.dram_wq.push(done, now)
    }

    /// The Figure 6(a) store path for one ≤64 B block-granule write.
    fn write_block(&mut self, block: BlockIndex, bytes: u32, now: Cycle, class: NvmWriteClass) -> Cycle {
        let page = block.page();
        let count = {
            let c = self.page_store_counts.entry(page).or_insert(0);
            *c += 1;
            *c
        };

        // PTT hit: page writeback scheme.
        if self.ptt.get(page).is_some() {
            if self.epoch.page_frozen(page, now) {
                if self.cfg.thynvm.mode == CkptMode::PageOnly {
                    // No block scheme to absorb the write: the store blocks
                    // the controller until the page's writeback completes —
                    // the Table 1 quadrant-❹ pain the dual scheme removes.
                    let done = self.epoch.job.as_ref().expect("frozen implies job").done_at;
                    self.stats.ckpt_stall_cycles += done.saturating_sub(now);
                    self.input_blocked_until = self.input_blocked_until.max(done);
                    self.retire_job_if_done(done);
                    return self.write_to_page(block, bytes, done);
                }
                // §3.4 cooperation: absorb via block remapping in DRAM.
                return self.buffered_block_write(block, bytes, now);
            }
            return self.write_to_page(block, bytes, now);
        }

        // Intra-epoch promotion: once a page's store counter crosses the
        // threshold (§4.2; every write in the PageOnly ablation), it moves
        // under page writeback immediately, relieving BTT pressure.
        let promotable = match self.cfg.thynvm.mode {
            CkptMode::Dual => count >= u32::from(self.cfg.thynvm.promote_threshold),
            CkptMode::PageOnly => true,
            CkptMode::BlockOnly => false,
        };
        if promotable && self.promote_page(page, now).is_some() {
            return self.write_to_page(block, bytes, now);
        }

        // Block remapping.
        if self.epoch.job_running(now) {
            // `C_penult` unsafe to overwrite: buffer in DRAM (§4.1).
            return self.buffered_block_write(block, bytes, now);
        }
        let entry = match self.btt.entry_or_insert(block) {
            Some(e) => e,
            None => {
                // §4.3: replace a committed entry if possible; only when no
                // entry can be replaced does the epoch end early.
                if self.reclaim_quiescent(now, 64) == 0 {
                    if self.epoch.overflow_pending {
                        self.last_overflow_error = Some(Error::TableFull { table: "BTT" });
                    }
                    self.epoch.overflow_pending = true;
                    self.btt_spills += 1;
                    self.btt.force_insert(block)
                } else {
                    self.btt.entry_or_insert(block).expect("space reclaimed")
                }
            }
        };
        bump_counter(&mut entry.store_count);
        let mut newly_dirty = false;
        let region = match entry.wactive {
            Some(WactiveLoc::Nvm(r)) => r, // coalesce in place
            Some(WactiveLoc::DramBuffered { .. }) => {
                // Rare: buffered earlier this epoch while a job ran; keep
                // coalescing in the buffer for simplicity.
                return self.buffered_block_write(block, bytes, now);
            }
            None => {
                newly_dirty = true;
                entry.clast_region.map_or(Region::A, Region::other)
            }
        };
        entry.wactive = Some(WactiveLoc::Nvm(region));
        if newly_dirty {
            self.epoch_dirty_blocks += 1;
        }
        let hw = self.remapped(self.space.checkpoint_block(region, block));
        let done = self.nvm.access(hw, AccessKind::Write, bytes, now);
        self.stats.record_nvm_write(u64::from(bytes), class);
        self.media_note_write(hw, bytes);
        self.security_note_write(hw, bytes);
        let resume = self.wpq_push(hw, now, done, WpqKind::Data);
        self.nvm_wq.push(done, now).max(resume)
    }

    /// Reclaims quiescent BTT entries, migrating `C_last` home when needed
    /// (§4.3 overflow handling). Returns the number reclaimed.
    fn reclaim_quiescent(&mut self, now: Cycle, max: usize) -> usize {
        let mut victims = std::mem::take(&mut self.reclaim_scratch);
        self.btt.reclaimable_victims_into(max, &mut victims);
        let mut reclaimed = 0;
        for &block in &victims {
            let entry = self.btt.remove(block).expect("listed as reclaimable");
            if entry.clast_region == Some(Region::A) {
                // C_last lives in Region A: copy it to the Home Region so
                // the entry can be dropped.
                let src = self.space.checkpoint_block(Region::A, block);
                self.nvm.access(src, AccessKind::Read, BLOCK_BYTES as u32, now);
                self.stats.nvm_reads += 1;
                self.stats.nvm_read_bytes += BLOCK_BYTES;
                let dst = self.remapped(self.space.home(block.base_addr()));
                self.nvm.access(dst, AccessKind::Write, BLOCK_BYTES as u32, now);
                self.stats.record_nvm_write(BLOCK_BYTES, NvmWriteClass::Migration);
                self.media_note_write(dst, BLOCK_BYTES as u32);
                self.security_note_write(dst, BLOCK_BYTES as u32);
            }
            reclaimed += 1;
        }
        self.reclaim_scratch = victims;
        reclaimed
    }

    /// The load path: locate the software-visible copy (§4.1) and read it.
    fn read_block(&mut self, block: BlockIndex, bytes: u32, now: Cycle) -> Cycle {
        let page = block.page();
        if let Some(entry) = self.ptt.get(page) {
            let (slot, dirty, frozen, clast) =
                (entry.slot, entry.dirty, entry.frozen, entry.clast_region);
            let hw = self
                .space
                .working_page(slot)
                .offset(block.slot_in_page() * BLOCK_BYTES);
            let off = self.space.working_offset(hw);
            let done = self.working_read(off, bytes, now);
            if self.dram_poison_free(off, u64::from(bytes)) {
                return done;
            }
            if dirty {
                // Dirty data under the poison: the bytes exist nowhere
                // else, so there is nothing to re-fetch. Quarantine now
                // rather than let the poison age toward a checkpoint.
                return self.quarantine_page(page, done);
            }
            // Clean (or frozen-and-captured) page: the block's exact bytes
            // sit intact in NVM — re-fetch them and heal the DRAM copy.
            let in_page = block.slot_in_page() * BLOCK_BYTES;
            let src = match self.pending_pages.get(&page) {
                Some(p) if frozen => self.space.checkpoint_page(p.target, page).offset(in_page),
                _ => match clast {
                    Some(r) => self.space.checkpoint_page(r, page).offset(in_page),
                    None => self.space.home(block.base_addr()),
                },
            };
            return self.dram_refetch_block(block, off, src, done);
        }
        if let Some(entry) = self.btt.get(block) {
            let loc = entry.wactive.or(entry.pending);
            match loc {
                Some(WactiveLoc::DramBuffered { slot }) => {
                    let hw = self.space.working_block(slot, self.ptt.capacity());
                    let off = self.space.working_offset(hw);
                    let done = self.working_read(off, bytes, now);
                    if self.dram_poison_free(off, u64::from(bytes)) {
                        return done;
                    }
                    // A buffered working copy is dirty by construction:
                    // quarantine the block, then serve the rolled-back
                    // bytes from its surviving checkpointed copy.
                    let done = self.quarantine_buffered_block(block, off, done);
                    let entry = self.btt.get(block);
                    let src = match entry.and_then(|e| e.pending) {
                        Some(WactiveLoc::Nvm(r)) => self.space.checkpoint_block(r, block),
                        _ => match entry.and_then(|e| e.clast_region) {
                            Some(r) => self.space.checkpoint_block(r, block),
                            None => self.space.home(block.base_addr()),
                        },
                    };
                    return self.nvm_data_read(block, src, bytes, done);
                }
                Some(WactiveLoc::Nvm(region)) => {
                    let hw = self.space.checkpoint_block(region, block);
                    return self.nvm_data_read(block, hw, bytes, now);
                }
                None => {
                    let region = entry.clast_region.unwrap_or(Region::B);
                    let hw = self.space.checkpoint_block(region, block);
                    return self.nvm_data_read(block, hw, bytes, now);
                }
            }
        }
        // Home Region.
        let hw = self.space.home(block.base_addr());
        self.nvm_data_read(block, hw, bytes, now)
    }

    // ------------------------------------------------------------------
    // Checkpointing (Figure 6b)
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // §6 extensions: explicit persistence and bug tolerance
    // ------------------------------------------------------------------

    /// Explicit persistence trigger (§6: "persistence of data can also be
    /// explicitly triggered by the program via a new instruction added to
    /// the ISA that forces ThyNVM to end an epoch"). Equivalent to an
    /// epoch boundary: everything stored before the barrier is captured by
    /// the checkpoint this starts and becomes durable when it completes.
    ///
    /// Returns the cycle at which execution resumes; use
    /// [`MemorySystem::drain`] to wait for full durability.
    pub fn persist_barrier(&mut self, now: Cycle) -> Cycle {
        self.begin_checkpoint(now, &[])
    }

    /// Configures the periodic persistence guarantee (§6: "such a system
    /// is only allowed to lose data updates that happened in the last
    /// *n* ms, where *n* is configurable").
    pub fn set_persistence_interval_ms(&mut self, ms: u64) {
        self.cfg.thynvm.epoch_max_ms = ms;
    }

    /// Enables the §6 bug-tolerance extension: retain up to `depth` past
    /// committed checkpoint images that [`ThyNvm::rollback_to_checkpoint`]
    /// can restore ("devising mechanisms to find and recover to past
    /// bug-free checkpoints"). `0` disables archiving (the default; the
    /// archive costs memory proportional to the footprint).
    pub fn set_archive_depth(&mut self, depth: usize) {
        self.archive_depth = depth;
        while self.archive.len() > depth {
            self.archive.pop_front();
        }
    }

    /// Checkpoint numbers currently held in the archive, oldest first.
    pub fn archived_checkpoints(&self) -> Vec<u64> {
        self.archive.iter().map(|(n, _)| *n).collect()
    }

    /// Distribution of epoch execution-phase lengths, in cycles.
    pub fn epoch_length_histogram(&self) -> &thynvm_types::Histogram {
        &self.epoch_length_hist
    }

    /// Distribution of checkpointing-phase durations, in cycles.
    pub fn job_duration_histogram(&self) -> &thynvm_types::Histogram {
        &self.job_duration_hist
    }

    /// Rolls the system back to archived checkpoint `number` (as if a
    /// crash had occurred immediately after it completed), discarding all
    /// later state — including later archived checkpoints, which are now
    /// "the future".
    ///
    /// # Errors
    ///
    /// Returns [`thynvm_types::Error::NoCheckpoint`] if `number` is not in
    /// the archive.
    pub fn rollback_to_checkpoint(
        &mut self,
        number: u64,
        now: Cycle,
    ) -> Result<RecoveryReport, thynvm_types::Error> {
        let image = self
            .archive
            .iter()
            .find(|(n, _)| *n == number)
            .map(|(_, img)| img.clone())
            .ok_or(thynvm_types::Error::NoCheckpoint)?;
        // Invalidate the in-flight job and everything after `number`.
        self.epoch.job = None;
        self.committed = image;
        // The archived image becomes `C_last` by deliberate operator
        // action: re-authenticate it so recovery's MAC verification does
        // not mistake the sanctioned rollback for tampering.
        if self.security.is_some() {
            self.mac_last = self.committed.fingerprint_with_basis(self.mac_key);
        }
        self.archive.retain(|(n, _)| *n <= number);
        let report = self.crash_and_recover(now);
        Ok(report)
    }

    /// Ends the active epoch immediately (test/benchmark helper; the
    /// platform normally calls [`MemorySystem::begin_checkpoint`] after the
    /// processor flush). Returns the cycle at which execution may resume.
    pub fn force_checkpoint(&mut self, now: Cycle) -> Cycle {
        self.begin_checkpoint(now, &[])
    }

    /// Whether any state from the active epoch would be lost on a crash.
    pub fn has_uncheckpointed_writes(&self) -> bool {
        !self.working_log.is_empty()
            || self.btt.dirty_entries() > 0
            || self.ptt.iter().any(|(_, e)| e.dirty)
    }

    // ------------------------------------------------------------------
    // Functional API (used by crash-consistency tests and examples)
    // ------------------------------------------------------------------

    /// Writes `data` at physical address `addr`, updating both the
    /// software-visible contents and the timing model. Returns the cycle at
    /// which the store is acknowledged.
    pub fn store_bytes(&mut self, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        // Power already failed: the store never reaches the controller.
        if let Some(resume) = self.poll_crash(now) {
            return resume.max(now);
        }
        // ReadOnly/FailSafe posture: durability of fresh data can no longer
        // be promised, so the store is refused — no mutation, no traffic.
        // (Retire first: a completed checkpoint may have promoted the rung.)
        self.retire_job_if_done(now);
        if self.degraded_store_rejection().is_some() {
            return now;
        }
        self.visible.write(thynvm_types::HwAddr::new(addr.raw()), data);
        self.working_log.push((addr.raw(), data.to_vec()));
        let req = MemRequest::write(addr, u32::try_from(data.len()).expect("write too large"));
        self.access(&req, now)
    }

    /// Bounds-checked variant of [`ThyNvm::store_bytes`]: rejects spans
    /// that leave the identity-mapped Home Region (they would alias
    /// checkpoint storage) instead of wrapping into it, and surfaces
    /// health-ladder store rejections as errors.
    ///
    /// # Errors
    ///
    /// Returns [`thynvm_types::Error::AddressOutOfRange`] when
    /// `[addr, addr + data.len())` crosses [`crate::PHYS_LIMIT`], and
    /// [`thynvm_types::Error::Degraded`] when the health ladder sits at
    /// `ReadOnly` or `FailSafe` (the store is refused, nothing mutates).
    pub fn try_store_bytes(
        &mut self,
        addr: PhysAddr,
        data: &[u8],
        now: Cycle,
    ) -> Result<Cycle, Error> {
        self.space.check_phys(addr, data.len() as u64)?;
        // A stale rejection from an earlier call must not masquerade as
        // this store's outcome.
        self.last_health_error = None;
        let done = self.store_bytes(addr, data, now);
        match self.last_health_error.take() {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// Bounds-checked variant of [`ThyNvm::load_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`thynvm_types::Error::AddressOutOfRange`] when
    /// `[addr, addr + buf.len())` crosses [`crate::PHYS_LIMIT`].
    pub fn try_load_bytes(
        &mut self,
        addr: PhysAddr,
        buf: &mut [u8],
        now: Cycle,
    ) -> Result<Cycle, Error> {
        self.space.check_phys(addr, buf.len() as u64)?;
        Ok(self.load_bytes(addr, buf, now))
    }

    /// Reads `buf.len()` bytes at physical address `addr` from the
    /// software-visible image, paying the timing cost. Returns the cycle at
    /// which the load completes.
    pub fn load_bytes(&mut self, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        // Power already failed: the load observes the *recovered* image.
        let now = match self.poll_crash(now) {
            Some(resume) => resume.max(now),
            None => now,
        };
        self.visible.read(thynvm_types::HwAddr::new(addr.raw()), buf);
        self.pending_corruption = None;
        let q0 = self.stats.dram.quarantine_dropped_bytes;
        let req = MemRequest::read(addr, u32::try_from(buf.len()).expect("read too large"));
        let done = self.access(&req, now);
        // A poisoned range was quarantined while servicing this load: the
        // visible image just rolled back, so the bytes captured above are
        // stale — deliver the rolled-back contents instead.
        if self.stats.dram.quarantine_dropped_bytes != q0 {
            self.visible.read(thynvm_types::HwAddr::new(addr.raw()), buf);
        }
        // Without integrity protection an undetected media fault reaches
        // software: deliver the corrupted byte, not the stored one.
        if let Some((paddr, mask)) = self.pending_corruption.take() {
            if let Some(i) = paddr.checked_sub(addr.raw()) {
                if let Some(b) = buf.get_mut(i as usize) {
                    *b ^= mask;
                }
            }
        }
        done
    }

    /// Applies an armed tamper to the persisted state it forges. The raw
    /// store mutations model an attacker with physical NVM access writing
    /// out-of-band — they deliberately bypass the controller's write path
    /// (no counters bump, no MAC rotates), which is exactly why the next
    /// recovery's recomputed MAC rejects the forged image.
    // lint: recovery-path
    fn apply_tamper(&mut self, fault: TamperFault) {
        self.stats.security.tampers_injected += 1;
        let forge = |store: &mut SparseStore, addr: u64| {
            let mut b = [0u8];
            store.read(HwAddr::new(addr), &mut b);
            b.iter_mut().for_each(|x| *x ^= 0xA5);
            store.write(HwAddr::new(addr), &b);
        };
        match fault {
            TamperFault::ClastData { addr } => forge(&mut self.committed, addr),
            TamperFault::StaleCounterTable => self
                .security
                .as_mut()
                .expect("invariant: tamper applied only with secure mode on")
                .tamper_stale_table(),
            TamperFault::TornRootMeta => self
                .security
                .as_mut()
                .expect("invariant: tamper applied only with secure mode on")
                .tamper_torn_root(),
            TamperFault::BothImages { addr } => {
                forge(&mut self.committed, addr);
                forge(&mut self.committed_prev, addr);
            }
        }
    }

    /// Simulates a power failure at `now` followed by the §4.5 recovery
    /// procedure, and returns the recovery report.
    ///
    /// All volatile state (DRAM contents, CPU-side data, queued NVM writes,
    /// the active epoch's working copies and any *incomplete* checkpoint)
    /// is lost; the software-visible image rolls back to the most recent
    /// completed checkpoint.
    ///
    /// Recovery itself is a cycle-accounted, interruptible step machine:
    /// crash points still queued via [`ThyNvm::queue_crash_point`] fire at
    /// recovery-step boundaries as *nested* crashes, aborting the attempt.
    /// Every step is idempotent — the restarted attempt begins again from
    /// the persisted commit record and converges to the same byte-identical
    /// image an uninterrupted recovery produces.
    pub fn crash_and_recover(&mut self, now: Cycle) -> RecoveryReport {
        // A checkpoint that finished before the crash counts.
        self.retire_job_if_done(now);

        // Volatile persist buffer: the partial flush decides which
        // in-flight entries each bank salvaged on residual energy. If the
        // in-flight checkpoint's commit marker became durable *and* no
        // data entry was lost, the checkpoint is complete at the device
        // even though its timeline had not finished — commit it early
        // (recovery restores `C_last`, not `C_penult`). A marker that
        // outran dropped payload never commits: the fence discipline (and
        // its L10 audit) exists precisely to keep that window closed.
        if let Some(p) = self.pbuf.as_mut() {
            let flush = p.crash(now);
            self.stats.wpq = *p.stats();
            self.last_wpq_flush = Some(flush);
            if flush.commit_salvaged() {
                if let Some(job) = self.epoch.job.take() {
                    self.epoch.completed += 1;
                    self.commit_job(job);
                }
            }
        }

        // Ambient torn write: power failed mid-Finalize, while the 8-word
        // commit record was streaming to NVM. Only a prefix of the record
        // persists; recovery sees an unset/invalid commit flag, so the
        // interrupted checkpoint is discarded exactly as §4.5 already does.
        if self.cfg.media.torn_writes {
            let in_finalize = self
                .epoch
                .job
                .as_ref()
                .is_some_and(|j| !j.is_done(now) && j.phase_at(now) == CkptPhase::Finalize);
            if in_finalize {
                if let Some(f) = self.fault.as_mut() {
                    let _ = f.torn_words(COMMIT_RECORD_WORDS);
                    self.stats.media.record_fault(FaultKind::TornWrite);
                }
            }
        }

        // Anything in flight is lost — including the rung captured by the
        // incomplete checkpoint's health record (its commit flag never set).
        let rolled_back_incomplete = self.epoch.job.take().is_some();
        self.pending_health_rung = None;
        self.ckpting_log.clear();
        self.working_log.clear();
        self.pending_pages.clear();
        self.pending_switch_counts.clear();
        self.page_store_counts.clear();
        let lost = self.nvm_wq.discard_lost(now) + self.dram_wq.discard_lost(now);
        self.stats.wq_writes_lost += lost as u64;
        self.epoch_dirty_blocks = 0;
        self.input_blocked_until = Cycle::ZERO;
        // DRAM contents vanish with power — and with them any outstanding
        // poison (the next boot re-reads everything from NVM, which the
        // quarantine discipline kept poison-free).
        if let Some(ecc) = self.dram_fault.as_mut() {
            self.stats.dram.poison_cleared_by_crash += ecc.clear_all() as u64;
        }
        // The controller's volatile counter cache reverts to the persisted
        // table; the counters bumped mid-epoch are a *bounded, known* set
        // that recovery replays — never guesses (arXiv:1901.00620).
        if let Some(sec) = self.security.as_mut() {
            self.stats.security.counters_replayed += sec.crash() as u64;
        }

        // Adversarial tamper schedule: the seeded stream may decide this
        // crash window is when the attacker strikes. The stream always
        // advances (determinism is a function of crash count, not of which
        // branch fires); a manually armed tamper takes precedence.
        if let Some(sec) = self.security.as_mut() {
            let roll = sec.tamper_roll();
            if self.injected_tamper.is_none() && self.epoch.completed > 0 {
                if let Some(h) = roll {
                    let addr = (h >> 8) & 0xf_ffff; // somewhere in the image
                    self.injected_tamper = Some(match h % 3 {
                        0 => TamperFault::ClastData { addr },
                        1 => TamperFault::StaleCounterTable,
                        _ => TamperFault::TornRootMeta,
                    });
                }
            }
        }
        // Apply the armed tamper once a completed checkpoint exists to
        // forge. The mutation is *real* (bytes / model state change), so
        // every restarted recovery attempt re-derives the same verdict by
        // recomputation — no flag peeking needed.
        if self.security.is_some() && self.epoch.completed > 0 {
            if let Some(t) = self.injected_tamper.take() {
                self.apply_tamper(t);
            }
        }

        // Restartable recovery: run attempts until one completes. A queued
        // crash point overrun by an attempt's timeline aborts it (a nested
        // crash); the next attempt restarts at the interrupting cycle.
        let tampers_before = self.stats.security.tampers_detected;
        let wal_redos_before = self.stats.media.wal_redos;
        let nested_before = self.stats.nested_crashes;
        let mut integrity_fallback = false;
        let mut unrecoverable = false;
        let mut attempts = 0u64;
        let mut start = now;
        let (steps, restored, mut end) = loop {
            attempts += 1;
            match self.recovery_attempt(
                start,
                rolled_back_incomplete,
                &mut integrity_fallback,
                &mut unrecoverable,
            ) {
                Ok(done) => break done,
                Err(at) => start = start.max(at),
            }
        };

        // Roll the visible image back to the recovered checkpoint.
        self.visible = self.committed.clone();

        // Rehydrate the health ladder with the rung that was durable
        // alongside the restored image (the rotation in the fallback paths
        // keeps `health_rung_last` tracking `committed`). A tamper detected
        // by *this* recovery, or an unrecoverable verdict, overrides it:
        // the ladder lands at FailSafe, which never promotes.
        if self.health_mon.is_some() {
            // `health_rung_last` mirrors the durable record at
            // `health_record()` exactly: it starts Healthy (no record, no
            // standing degradation) and only changes when a record commits
            // — checkpoint retirement, fallback rotation, or the
            // override-persist below.
            let persisted = self.health_rung_last;
            let rung = if unrecoverable
                || self.stats.security.tampers_detected > tampers_before
            {
                HealthRung::FailSafe
            } else if self.stats.media.wal_redos - wal_redos_before
                >= self.cfg.health.readonly_wal_redos
            {
                // WAL redos only ever happen inside recovery, and
                // `rehydrate` re-baselines the monitor's counters at the
                // post-recovery values — so redos crossing the threshold
                // must escalate here or they would never reach the ladder.
                persisted.max(HealthRung::ReadOnly)
            } else {
                persisted
            };
            let signals = self.health_signals();
            let mon = self.health_mon.as_mut().expect("invariant: is_some() checked above");
            mon.rehydrate(rung, &signals, &mut self.stats.health);
            // An override that outranks the durable record (tamper →
            // FailSafe, WAL-redo → ReadOnly) is persisted before recovery
            // hands control back: a follow-on crash would otherwise
            // rehydrate the stale pre-incident rung and launder the
            // degradation away. The persist is WAL-bracketed (L8): recovery
            // runs with no checkpoint in flight, so a crash tearing the
            // record mid-write would otherwise leave a corrupt rung with
            // nothing to redo it from.
            if rung > persisted {
                // WAL intent: the escalated rung about to be recorded.
                let wal = self.space.backup_wal(self.wal_seq);
                self.wal_seq += 1;
                let intent_start = end;
                end = self.nvm.access(wal, AccessKind::Write, 64, end);
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                self.wpq_push(wal, intent_start, end, WpqKind::Data);
                let rung_start = end;
                end = self.nvm.access(self.space.health_record(), AccessKind::Write, 64, end);
                self.stats.record_nvm_write(64, NvmWriteClass::Checkpoint);
                self.charge_crc(64);
                self.wpq_push(self.space.health_record(), rung_start, end, WpqKind::Data);
                // §4.4: intent and record must be durable before the seal.
                end = self.wpq_fence(end);
                // CRC seal: the override commits when this lands.
                end = self.nvm.access(wal, AccessKind::Write, 64, end);
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                self.stats.media.wal_seals += 1;
                self.stats.health.rung_persists += 1;
                self.health_rung_last = rung;
            }
        }

        // Fresh epoch begins after recovery.
        self.epoch = EpochState {
            active_epoch: self.epoch.active_epoch,
            epoch_start: end,
            job: None,
            overflow_pending: false,
            completed: self.epoch.completed,
        };

        let report = RecoveryReport {
            recovered_checkpoints: self.epoch.completed,
            rolled_back_incomplete,
            restored_pages: restored,
            integrity_fallback,
            unrecoverable,
            recovery_cycles: end.saturating_sub(now),
            steps,
            nested_crashes: self.stats.nested_crashes - nested_before,
            attempts,
        };
        self.stats.recovery_cycles += report.recovery_cycles;
        self.last_recovery = Some(report.clone());
        report
    }

    /// One pass of the §4.5 recovery step machine, beginning at `start`.
    /// Returns the completed steps, pages restored, and end cycle — or
    /// `Err(at)` when a queued crash point at cycle `at` aborted it, with
    /// any unsealed recovery-side remaps rolled back (their torn WAL
    /// records mean the next attempt redoes them from scratch).
    #[allow(clippy::type_complexity)]
    fn recovery_attempt(
        &mut self,
        start: Cycle,
        rolled_back_incomplete: bool,
        integrity_fallback: &mut bool,
        unrecoverable: &mut bool,
    ) -> Result<(Vec<(RecoveryStep, Cycle)>, usize, Cycle), Cycle> {
        let mut remaps = Vec::new();
        let result = self.recovery_attempt_run(
            start,
            rolled_back_incomplete,
            integrity_fallback,
            unrecoverable,
            &mut remaps,
        );
        if let Err(at) = result {
            // Bad-block remaps whose WAL seal had not landed when power
            // failed never took effect: drop the in-memory indirection and
            // return the spare slots. Sealed remaps (seal ≤ at) persist.
            for (base, sealed) in remaps.into_iter().rev() {
                if sealed > at {
                    self.bad_blocks.remove(&base);
                    self.next_spare_slot -= 1;
                    self.stats.media.wal_redos += 1;
                }
            }
        }
        result
    }

    /// Checks whether completing a recovery step at `t_end` overruns the
    /// earliest queued crash point: if so, power failed mid-recovery. The
    /// point is consumed, a nested crash is recorded against `step`, and
    /// the attempt aborts.
    fn recovery_interrupt(
        &mut self,
        step: RecoveryStep,
        t_end: Cycle,
        rolled_back_incomplete: bool,
        integrity_fallback: bool,
        unrecoverable: bool,
    ) -> Result<(), Cycle> {
        let Some(&at) = self.crash_points.first() else {
            return Ok(());
        };
        if t_end <= at {
            return Ok(());
        }
        self.crash_points.remove(0);
        let outcome = if unrecoverable {
            thynvm_types::RecoveryOutcome::Unrecoverable
        } else if integrity_fallback {
            thynvm_types::RecoveryOutcome::CPenultIntegrityFallback
        } else if rolled_back_incomplete {
            thynvm_types::RecoveryOutcome::CPenult
        } else {
            thynvm_types::RecoveryOutcome::CLast
        };
        let event = thynvm_types::CrashEvent {
            cycle: at,
            epoch: self.epoch.active_epoch,
            phase: CkptPhase::Execution,
            inflight_writebacks: 0,
            outcome,
            recovery_step: Some(step),
        };
        self.stats.record_nested_crash(event);
        Err(at)
    }

    /// One fault-aware NVM read on the recovery path: resolves the
    /// bad-block indirection, pays the device latency, verifies CRCs, and
    /// — when retries exhaust — remaps the block, recording the WAL seal
    /// cycle in `remaps` so an aborted attempt can undo unsealed ones.
    fn recovery_read(
        &mut self,
        hw: HwAddr,
        bytes: u32,
        now: Cycle,
        remaps: &mut Vec<(u64, Cycle)>,
    ) -> Cycle {
        let hw = self.remapped(hw);
        self.stats.nvm_reads += 1;
        self.stats.nvm_read_bytes += u64::from(bytes);
        let mut done = self.nvm.access(hw, AccessKind::Read, bytes, now);
        self.charge_crc(u64::from(bytes));
        self.charge_crypto(u64::from(bytes), false);
        if self.fault.is_none() || !self.cfg.media.integrity {
            return done;
        }
        if self.fault.as_mut().expect("invariant: is_none() checked above").read_fault(hw, bytes).is_none() {
            return done;
        }
        for (_, backoff) in self.media_retry_policy().schedule() {
            done += backoff;
            done = self.nvm.access(hw, AccessKind::Read, bytes, done);
            self.stats.nvm_reads += 1;
            self.stats.nvm_read_bytes += u64::from(bytes);
            self.stats.media.retries += 1;
            self.stats.retry.recovery_attempts += 1;
            self.charge_crc(u64::from(bytes));
            if self.fault.as_mut().expect("invariant: is_none() checked above").read_fault(hw, bytes).is_none() {
                return done;
            }
        }
        let base = hw.raw() & !(BLOCK_BYTES - 1);
        if let Some(sealed) = self.remap_bad_block(base, done) {
            remaps.push((base, sealed));
            done = sealed;
        }
        done
    }

    /// The body of one recovery attempt. Each step pays its modeled NVM
    /// latency, then checks the queued crash points before its effects are
    /// considered complete.
    #[allow(clippy::type_complexity)]
    fn recovery_attempt_run(
        &mut self,
        start: Cycle,
        rolled_back_incomplete: bool,
        integrity_fallback: &mut bool,
        unrecoverable: &mut bool,
        remaps: &mut Vec<(u64, Cycle)>,
    ) -> Result<(Vec<(RecoveryStep, Cycle)>, usize, Cycle), Cycle> {
        // Power restore: volatile device state (row buffers, bank busy
        // times) starts fresh on every attempt.
        self.dram.power_cycle();
        self.nvm.power_cycle();
        let mut steps = Vec::with_capacity(5);

        // Step 1: read the checkpoint commit record.
        let mut t = self.recovery_read(self.space.backup(0), 64, start, remaps);
        self.recovery_interrupt(
            RecoveryStep::ReadCommitRecord,
            t,
            rolled_back_incomplete,
            *integrity_fallback,
            *unrecoverable,
        )?;
        steps.push((RecoveryStep::ReadCommitRecord, t));

        // Step 2: verify `C_last`'s integrity (commit-record checksum +
        // BTT/PTT metadata CRCs). A latent fault in any of them makes
        // `C_last` unusable; step 3 then falls back to `C_penult`, which a
        // completed checkpoint always leaves intact.
        if self.cfg.media.integrity && self.epoch.completed > 0 {
            let meta_bytes = ((self.btt.len() + self.ptt.len()).max(1) as u64) * META_ENTRY_BYTES
                + 2 * META_CRC_BYTES;
            let meta_len = u32::try_from(meta_bytes.min(u64::from(u32::MAX)))
                .expect("invariant: value clamped to u32::MAX on the previous line")
                .max(64);
            t = self.recovery_read(self.space.backup(8192), meta_len, t, remaps);
            // Peek — never consume — the injected latent faults: whether
            // `C_last` is corrupt is a property of the persisted bytes, so
            // a restarted attempt must reach the same verdict.
            let torn = self.injected_torn_commit;
            let flip = self.injected_clast_flip;
            let meta = self.injected_meta_corrupt;
            if torn {
                self.stats.media.record_fault(FaultKind::TornWrite);
            }
            if flip.is_some() {
                self.stats.media.record_fault(FaultKind::BitFlip);
            }
            if meta {
                self.stats.media.record_fault(FaultKind::Metadata);
            }
            let corrupt = torn || flip.is_some() || meta;
            self.recovery_interrupt(
                RecoveryStep::VerifyClast,
                t,
                rolled_back_incomplete,
                *integrity_fallback,
                *unrecoverable,
            )?;
            steps.push((RecoveryStep::VerifyClast, t));

            // Step 3: fall back to `C_penult` — write-ahead + CRC-sealed,
            // so an interruption leaves a torn WAL record that the next
            // attempt detects and redoes, never a half-applied fallback.
            if corrupt {
                let wal = self.space.backup_wal(self.wal_seq);
                self.wal_seq += 1;
                let mut w = self.nvm.access(wal, AccessKind::Write, 64, t);
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                w = self.nvm.access(wal, AccessKind::Write, 64, w); // seal
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                if let Err(at) = self.recovery_interrupt(
                    RecoveryStep::IntegrityFallback,
                    w,
                    rolled_back_incomplete,
                    *integrity_fallback,
                    *unrecoverable,
                ) {
                    // The seal never landed: nothing took effect. The next
                    // attempt re-detects the corruption and redoes this.
                    self.stats.media.wal_redos += 1;
                    return Err(at);
                }
                self.stats.media.wal_seals += 1;
                // Sealed: the fallback commits, and the corrupt `C_last`
                // image is no longer reachable — consume the faults.
                self.injected_torn_commit = false;
                self.injected_clast_flip = None;
                self.injected_meta_corrupt = false;
                self.committed = self.committed_prev.clone();
                self.committed_prev = self.committed.clone();
                // The fallback image's MAC becomes the reference `C_last`
                // MAC, exactly as the images themselves rotated — and so
                // does the health rung persisted alongside it.
                if self.security.is_some() {
                    self.mac_last = self.mac_penult;
                }
                if self.health_mon.is_some() {
                    self.health_rung_last = self.health_rung_penult;
                }
                self.epoch.completed -= 1;
                self.stats.media.integrity_fallbacks += 1;
                *integrity_fallback = true;
                t = w;
                steps.push((RecoveryStep::IntegrityFallback, t));
            }
        }

        // Step 2b/3b: secure-mode authentication. The MAC over the
        // committed image and the integrity-tree root over the counter
        // table are *recomputed* from persisted state — pure functions of
        // it, so a restarted attempt converges on the same verdict. A CRC
        // fallback that landed on `completed == 0` still authenticates:
        // the fallback image was cloned from persisted `C_penult` bytes an
        // attacker with physical access can forge, so skipping the MAC
        // here would replay unauthenticated data (a forged penult behind a
        // torn commit record with exactly one completed checkpoint).
        if self.security.is_some() && (self.epoch.completed > 0 || *integrity_fallback) {
            let table_bytes = (self.security.as_ref().expect("invariant: secure mode is on in this block").table_entries()
                as u64
                * META_ENTRY_BYTES)
                .max(64);
            t = self.recovery_read(self.space.security_root(), 64, t, remaps);
            t = self.recovery_read(
                self.space.security_counters(0),
                u32::try_from(table_bytes.min(u64::from(u32::MAX))).expect("invariant: clamped to u32::MAX above"),
                t,
                remaps,
            );
            self.charge_crypto(table_bytes + 64, false);
            // An armed media fault with CRC protection off: nothing else
            // would detect it, but the MAC does — accidentally corrupt
            // bytes fail authentication just like forged ones.
            let media_caught = !self.cfg.media.integrity
                && (self.injected_torn_commit
                    || self.injected_clast_flip.is_some()
                    || self.injected_meta_corrupt);
            let mac_ok = !media_caught
                && self.committed.fingerprint_with_basis(self.mac_key) == self.mac_last;
            let table_ok = self.security.as_ref().expect("invariant: secure mode is on in this block").table_authentic();
            self.recovery_interrupt(
                RecoveryStep::VerifyMacs,
                t,
                rolled_back_incomplete,
                *integrity_fallback,
                *unrecoverable,
            )?;
            steps.push((RecoveryStep::VerifyMacs, t));

            if !mac_ok || !table_ok {
                let root_torn = self.security.as_ref().expect("invariant: secure mode is on in this block").root_is_torn();
                let penult_ok = mac_ok
                    || self.committed_prev.fingerprint_with_basis(self.mac_key)
                        == self.mac_penult;
                // Either outcome commits through the WAL first — intent,
                // act, seal — so an interruption leaves a torn record the
                // next attempt detects and redoes, never a half-applied
                // fallback or reset.
                let wal = self.space.backup_wal(self.wal_seq);
                self.wal_seq += 1;
                let mut w = self.nvm.access(wal, AccessKind::Write, 64, t);
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                w = self.nvm.access(wal, AccessKind::Write, 64, w); // seal
                self.stats.record_nvm_write(64, NvmWriteClass::Migration);
                self.charge_crc(64);
                if let Err(at) = self.recovery_interrupt(
                    RecoveryStep::IntegrityFallback,
                    w,
                    rolled_back_incomplete,
                    *integrity_fallback,
                    *unrecoverable,
                ) {
                    self.stats.media.wal_redos += 1;
                    return Err(at);
                }
                self.stats.media.wal_seals += 1;
                t = w;
                // Sealed: count the detection exactly once — a restarted
                // attempt after the seal finds healed state and detects
                // nothing, so these ledgers never double-count.
                self.stats.security.tampers_detected += 1;
                if root_torn {
                    self.stats.security.classified_torn += 1;
                } else if media_caught {
                    self.stats.security.classified_media += 1;
                } else {
                    // A rolled-back counter table (replay attack) or a
                    // content forgery: deliberate tampering either way.
                    self.stats.security.classified_tamper += 1;
                }
                if media_caught {
                    // The MAC caught what the absent CRCs could not; the
                    // fallback makes the faulted image unreachable.
                    self.injected_torn_commit = false;
                    self.injected_clast_flip = None;
                    self.injected_meta_corrupt = false;
                }
                if penult_ok {
                    // Degrade to `C_penult` exactly as CRC failures do,
                    // re-deriving and re-sealing the counter table from
                    // the surviving authenticated image.
                    self.committed = self.committed_prev.clone();
                    self.committed_prev = self.committed.clone();
                    self.mac_last = self.mac_penult;
                    if self.health_mon.is_some() {
                        self.health_rung_last = self.health_rung_penult;
                    }
                    // Saturating: a CRC fallback may already have landed on
                    // zero completed checkpoints before this second fallback.
                    self.epoch.completed = self.epoch.completed.saturating_sub(1);
                    self.security.as_mut().expect("invariant: secure mode is on in this block").heal_table();
                    self.stats.security.verify_fallbacks += 1;
                    *integrity_fallback = true;
                    steps.push((RecoveryStep::IntegrityFallback, t));
                } else {
                    // Both images fail authentication: replaying either
                    // would hand unauthenticated (possibly attacker-
                    // chosen) data to software. Reset to the provably
                    // empty image and surface the error instead.
                    self.committed = SparseStore::new();
                    self.committed_prev = SparseStore::new();
                    self.mac_last = SparseStore::new().fingerprint_with_basis(self.mac_key);
                    self.mac_penult = self.mac_last;
                    self.btt = Btt::new(self.cfg.thynvm.btt_entries);
                    self.ptt = Ptt::new(
                        self.cfg.thynvm.ptt_entries.min(self.cfg.thynvm.dram_pages() as usize),
                    );
                    self.epoch.completed = 0;
                    self.security.as_mut().expect("invariant: secure mode is on in this block").reset();
                    self.stats.security.unrecoverable += 1;
                    self.last_security_error = Some(Error::IntegrityUnrecoverable {
                        epoch: self.epoch.active_epoch,
                    });
                    *unrecoverable = true;
                    steps.push((RecoveryStep::IntegrityFallback, t));
                }
            }
        }

        // Step 4 (§4.5 step 1): replay BTT/PTT metadata from the backup
        // region, dropping uncommitted working copies. Re-running this on
        // already-normalized tables changes nothing.
        let stale: Vec<BlockIndex> = self
            .btt
            .iter_mut()
            .filter_map(|(b, e)| {
                e.wactive = None;
                if rolled_back_incomplete {
                    e.pending = None;
                }
                if e.clast_region.is_none() && e.pending.is_none() {
                    Some(b)
                } else {
                    None
                }
            })
            .collect();
        for b in stale {
            self.btt.remove(b);
        }
        // The surgery above can quiesce any number of entries at once:
        // re-derive the victim-selection hints from the live table.
        self.btt.rebuild_quiescent_hints();
        let meta_bytes = (self.btt.len() + self.ptt.len()) as u64 * META_ENTRY_BYTES
            + self.cfg.thynvm.cpu_state_bytes;
        let meta_len = u32::try_from(meta_bytes.max(64).min(u64::from(u32::MAX)))
            .expect("invariant: value clamped to u32::MAX on the previous line");
        t = self.recovery_read(self.space.backup(0), meta_len, t, remaps);
        self.recovery_interrupt(
            RecoveryStep::ReplayMetadata,
            t,
            rolled_back_incomplete,
            *integrity_fallback,
            *unrecoverable,
        )?;
        steps.push((RecoveryStep::ReplayMetadata, t));

        // Step 5 (§4.5 step 2): re-arm the DRAM working set — restore
        // page-writeback pages from their checkpoint copies.
        let mut restored = 0usize;
        let mut pages: Vec<(PageIndex, u32, Option<Region>)> = self
            .ptt
            .iter_mut()
            .map(|(p, e)| {
                e.dirty = false;
                e.frozen = false;
                e.store_count = 0;
                (p, e.slot, e.clast_region)
            })
            .collect();
        pages.sort_unstable_by_key(|(p, _, _)| *p);
        for (page, slot, clast) in pages {
            let region = clast.unwrap_or(Region::B);
            let src = self.space.checkpoint_page(region, page);
            t = self.recovery_read(src, PAGE_BYTES as u32, t, remaps);
            let off = self.space.working_offset(self.space.working_page(slot));
            t = self.working_write(off, PAGE_BYTES as u32, t);
            restored += 1;
        }
        self.recovery_interrupt(
            RecoveryStep::RearmWorkingSet,
            t,
            rolled_back_incomplete,
            *integrity_fallback,
            *unrecoverable,
        )?;
        steps.push((RecoveryStep::RearmWorkingSet, t));

        Ok((steps, restored, t))
    }
}

impl MemorySystem for ThyNvm {
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        let now = now.max(self.input_blocked_until);
        // The request begins processing at `now`; if the armed crash point
        // has been reached by then, power fails before it is serviced.
        if let Some(resume) = self.poll_crash(now) {
            return resume.max(now);
        }
        self.retire_job_if_done(now);
        let t = now + self.cfg.timing.table_lookup();
        match req.kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                let mut done = t;
                let mut remaining = u64::from(req.bytes);
                let mut addr = req.addr;
                while remaining > 0 {
                    let in_block = BLOCK_BYTES - addr.block_offset();
                    let chunk = in_block.min(remaining) as u32;
                    done = done.max(self.read_block(addr.block(), chunk, t));
                    addr = addr.offset(u64::from(chunk));
                    remaining -= u64::from(chunk);
                }
                self.stats.service_cycles += done.saturating_sub(now);
                done
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                let mut done = t;
                let mut remaining = u64::from(req.bytes);
                let mut addr = req.addr;
                while remaining > 0 {
                    let in_block = BLOCK_BYTES - addr.block_offset();
                    let chunk = in_block.min(remaining) as u32;
                    done = done.max(self.write_block(addr.block(), chunk, t, NvmWriteClass::Cpu));
                    addr = addr.offset(u64::from(chunk));
                    remaining -= u64::from(chunk);
                }
                self.stats.service_cycles += done.saturating_sub(now);
                done
            }
        }
    }

    fn checkpoint_due(&self, now: Cycle) -> bool {
        // Epoch timer / overflow flag, or BTT pressure: end the epoch once
        // ~90 % of the block budget carries working copies, leaving
        // headroom for the checkpoint-time cache flush. A Wounded (or
        // worse) health rung adds the emergency-early timer.
        self.epoch.due(now, self.cfg.thynvm.epoch_max())
            || self.epoch_dirty_blocks * 10 >= self.btt.capacity() * 9
            || self.emergency_epoch_due(now)
    }

    fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
        // Power already failed: the checkpoint request never happens.
        if let Some(resume) = self.poll_crash(now) {
            return resume.max(now);
        }
        // The Wounded emergency timer — and nothing else — demanded this
        // checkpoint: count it so the posture's cost is observable.
        if self.emergency_epoch_due(now)
            && !self.epoch.due(now, self.cfg.thynvm.epoch_max())
            && self.epoch_dirty_blocks * 10 < self.btt.capacity() * 9
        {
            self.stats.health.emergency_checkpoints += 1;
        }
        self.retire_job_if_done(now);

        // If the previous checkpoint is still running, the new epoch cannot
        // start its own checkpointing phase yet: stall (Figure 3b).
        let mut t = now;
        if self.epoch.job_running(t) {
            let done = self.epoch.job.as_ref().expect("running").done_at;
            // Power fails while stalled waiting for the in-flight job.
            if self.crash_before(done) {
                return self.trigger_crash().max(now);
            }
            self.stats.ckpt_stall_cycles += done - t;
            t = done;
            self.retire_job_if_done(t);
        }

        // Snapshot store counters for deferred scheme switching, then age
        // them by halving. The paper zeroes counters each 10 ms epoch;
        // overflow-shortened epochs would starve promotion under a plain
        // reset, so aging preserves hotness across short epochs while cold
        // pages still decay below the demotion threshold within a couple of
        // boundaries.
        let mut snap = std::mem::take(&mut self.switch_scratch);
        snap.clone_from(&self.page_store_counts);
        self.pending_switch_counts = snap;
        self.page_store_counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.btt.reset_store_counters();
        self.ptt.reset_store_counters();

        // CPU data flush: the processor's dirty cache blocks are writes of
        // the epoch that is ending. The processor only *initiates* these
        // writebacks (§4.4) — it resumes once they are issued, while the
        // checkpoint's metadata persist waits for them in the background
        // (`flush_done`). A flush larger than the remaining BTT budget is
        // split across multiple checkpoint rounds — the §4.3 overflow rule
        // applied during the flush itself; intermediate rounds block the
        // processor.
        let mut flush_done = t;
        let mut i = 0usize;
        while i < flushed.len() {
            let block = flushed[i].block();
            let absorbable = self.ptt.get(block.page()).is_some()
                || self.btt.get(block).is_some()
                || !self.btt.is_full()
                || self.reclaim_quiescent(t, 64) > 0;
            if absorbable {
                let done = self.write_block(block, BLOCK_BYTES as u32, t, NvmWriteClass::Checkpoint);
                flush_done = flush_done.max(done);
                i += 1;
            } else {
                t = self.checkpoint_round(t, flush_done, false);
                // An intermediate round that outlives the armed crash point
                // never completes: power fails mid-round.
                if self.crash_before(t) {
                    return self.trigger_crash().max(now);
                }
                flush_done = flush_done.max(t);
            }
        }

        let resume = self.checkpoint_round(t, flush_done, true);
        self.stats.ckpt_stall_cycles += resume.saturating_sub(now);
        resume
    }

    fn drain(&mut self, now: Cycle) -> Cycle {
        // Power already failed: nothing left to drain.
        if let Some(resume) = self.poll_crash(now) {
            return resume.max(now);
        }
        let mut t = now;
        if self.epoch.job_running(t) {
            let done = self.epoch.job.as_ref().expect("running").done_at;
            // Power fails while waiting for the in-flight job.
            if self.crash_before(done) {
                return self.trigger_crash().max(now);
            }
            t = done;
        }
        self.retire_job_if_done(t);
        if self.has_uncheckpointed_writes() {
            let crashes_before = self.stats.crashes_injected;
            t = self.begin_checkpoint(t, &[]);
            if self.stats.crashes_injected > crashes_before {
                // The crash fired inside the checkpoint; `t` is the resume.
                return t.max(now);
            }
            if self.epoch.job_running(t) {
                let done = self.epoch.job.as_ref().expect("running").done_at;
                if self.crash_before(done) {
                    return self.trigger_crash().max(now);
                }
                t = done;
            }
            self.retire_job_if_done(t);
        }
        t.max(self.nvm.idle_at()).max(self.dram.idle_at())
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        match (self.cfg.thynvm.mode, self.cfg.thynvm.overlap) {
            (CkptMode::Dual, true) => "ThyNVM",
            (CkptMode::Dual, false) => "ThyNVM-nooverlap",
            (CkptMode::BlockOnly, _) => "ThyNVM-blockonly",
            (CkptMode::PageOnly, _) => "ThyNVM-pageonly",
        }
    }
}

impl ThyNvm {
    /// One checkpoint round: the Figure 6(b) sequence. `data_ready` is when
    /// the epoch's initiated cache writebacks complete — the metadata
    /// persist must not start earlier. `final_round` captures the
    /// functional write log and honors the overlap setting; intermediate
    /// rounds (metadata/timing only) always block until the round completes
    /// and is retired. Returns the processor-resume cycle.
    fn checkpoint_round(&mut self, t: Cycle, data_ready: Cycle, final_round: bool) -> Cycle {
        let ckpt_start = t;

        // Checkpoint operations are issued as fast as the devices accept
        // them; bank busy-times arbitrate, so independent blocks/pages
        // proceed in parallel while same-bank operations serialize. The
        // Figure 6(b) order is preserved *between* phases.

        // (1) Drain DRAM-buffered block working copies to NVM: read the
        // DRAM buffer, then write NVM once the data is available.
        let mut buffered: Vec<(BlockIndex, u32)> = self
            .btt
            .iter()
            .filter_map(|(b, e)| match e.wactive {
                Some(WactiveLoc::DramBuffered { slot }) => Some((b, slot)),
                _ => None,
            })
            .collect();
        buffered.sort_unstable_by_key(|(b, _)| *b);
        let mut writeback_done: Vec<Cycle> = Vec::new();
        let mut phase1_done = ckpt_start.max(data_ready);
        for (block, slot) in buffered {
            let src = self.space.working_block(slot, self.ptt.capacity());
            let off = self.space.working_offset(src);
            let read_done = self.working_read(off, BLOCK_BYTES as u32, ckpt_start);
            if !self.dram_poison_free(off, BLOCK_BYTES) {
                // Poison must never reach NVM: drop the block's dirty data
                // instead of draining it.
                let q_done = self.quarantine_buffered_block(block, off, read_done);
                phase1_done = phase1_done.max(q_done);
                continue;
            }
            let entry = self.btt.get(block).expect("iterated above");
            let region = entry.clast_region.map_or(Region::A, Region::other);
            let dst = self.remapped(self.space.checkpoint_block(region, block));
            let write_done = self.nvm.access(dst, AccessKind::Write, BLOCK_BYTES as u32, read_done);
            self.stats.record_nvm_write(BLOCK_BYTES, NvmWriteClass::Checkpoint);
            self.media_note_write(dst, BLOCK_BYTES as u32);
            self.security_note_write(dst, BLOCK_BYTES as u32);
            self.charge_crc(BLOCK_BYTES); // per-64 B data CRC generation
            let resume = self.wpq_push(dst, read_done, write_done, WpqKind::Data);
            writeback_done.push(write_done);
            phase1_done = phase1_done.max(write_done).max(resume);
            let entry = self.btt.get_mut(block).expect("present");
            entry.wactive = Some(WactiveLoc::Nvm(region));
        }

        // CPU state persists synchronously; the processor resumes after.
        // The write is prioritized ahead of the background flush drains
        // (modeled as an uncontended write: row miss + burst transfer).
        let cpu_state = self.cfg.thynvm.cpu_state_bytes;
        let bursts = cpu_state.max(64).div_ceil(64);
        let resume_after_flush = t
            + self.cfg.timing.nvm_clean_miss()
            + Cycle::from_ns(thynvm_mem::device::BURST_NS * bursts.saturating_sub(1));
        self.stats.record_nvm_write(cpu_state, NvmWriteClass::Checkpoint);

        // (2) Checkpoint the BTT once the buffered drains are durable. With
        // integrity protection the serialized table carries a trailing CRC.
        let meta_crc = if self.cfg.media.integrity { META_CRC_BYTES } else { 0 };
        let btt_bytes = (self.btt.dirty_entries().max(1) as u64) * META_ENTRY_BYTES + meta_crc;
        // §4.4: checkpoint data must be durable before the metadata that
        // references it.
        let meta_start = self.wpq_fence(phase1_done.max(resume_after_flush));
        let btt_done = self.nvm.access(
            self.space.backup(8192),
            AccessKind::Write,
            u32::try_from(btt_bytes.max(64)).expect("bounded"),
            meta_start,
        );
        self.stats.record_nvm_write(btt_bytes, NvmWriteClass::Checkpoint);
        self.charge_crc(btt_bytes);
        self.wpq_push(self.space.backup(8192), meta_start, btt_done, WpqKind::Data);

        // Capture block versions: working copies in NVM become pending
        // checkpoints (no data movement, §3.2).
        for (_, entry) in self.btt.iter_mut() {
            if let Some(loc) = entry.wactive.take() {
                debug_assert!(matches!(loc, WactiveLoc::Nvm(_)), "buffers drained above");
                entry.pending = Some(loc);
            }
        }
        self.epoch_dirty_blocks = 0;

        // (3) Write dirty pages back to the alternate checkpoint region.
        let dirty_pages = self.ptt.dirty_pages();
        let mut frozen = FxHashSet::with_capacity_and_hasher(dirty_pages.len(), Default::default());
        let mut phase3_done = btt_done;
        for page in dirty_pages {
            let slot = self.ptt.get(page).expect("dirty page listed").slot;
            let off = self.space.working_offset(self.space.working_page(slot));
            let read_done = self.working_read(off, PAGE_BYTES as u32, btt_done);
            if !self.dram_poison_free(off, PAGE_BYTES) {
                // An uncorrectable DRAM error sits under this page's dirty
                // data: writing it back would make the corruption durable.
                // Quarantine instead — the dirty epoch is dropped, the page
                // rolls back to `C_last` and leaves the page scheme.
                let q_done = self.quarantine_page(page, read_done);
                phase3_done = phase3_done.max(q_done);
                continue;
            }
            let entry = self.ptt.get_mut(page).expect("dirty page listed");
            let target = entry.clast_region.map_or(Region::A, Region::other);
            entry.dirty = false;
            entry.frozen = true;
            let dst = self.remapped(self.space.checkpoint_page(target, page));
            let write_done = self.nvm.access(dst, AccessKind::Write, PAGE_BYTES as u32, read_done);
            self.stats.record_nvm_write(PAGE_BYTES, NvmWriteClass::Checkpoint);
            self.media_note_write(dst, PAGE_BYTES as u32);
            self.security_note_write(dst, PAGE_BYTES as u32);
            self.charge_crc(PAGE_BYTES); // per-64 B data CRCs for the page
            let resume = self.wpq_push(dst, read_done, write_done, WpqKind::Data);
            writeback_done.push(write_done);
            phase3_done = phase3_done.max(write_done).max(resume);
            self.pending_pages.insert(page, PendingPage { target });
            frozen.insert(page);
        }

        // (4) Checkpoint the PTT, flush the NVM write queue, set the
        // completion flag.
        let ptt_bytes = (self.ptt.len().max(1) as u64) * META_ENTRY_BYTES + meta_crc;
        let mut bg = self.nvm.access(
            self.space.backup(16384),
            AccessKind::Write,
            u32::try_from(ptt_bytes.max(64)).expect("bounded"),
            phase3_done,
        );
        self.stats.record_nvm_write(ptt_bytes, NvmWriteClass::Checkpoint);
        self.charge_crc(ptt_bytes);
        self.wpq_push(self.space.backup(16384), phase3_done, bg, WpqKind::Data);
        bg = bg.max(self.nvm_wq.drain_time(bg));

        // (4b) Secure mode: persist the dirty encryption counters, the
        // distinct integrity-tree nodes on their paths to the root, and
        // finally the root record itself — all *before* the commit record,
        // so the state the commit flag covers is already authenticated.
        // This rides the same discipline as the BTT/PTT images: a crash
        // anywhere in here leaves the commit flag unset and the previous
        // epoch's sealed metadata intact.
        if self.security.is_some() {
            let receipt = self.security.as_mut().expect("invariant: secure mode is on in this block").persist();
            if receipt.counter_entries > 0 {
                let ctr_bytes = receipt.counter_entries as u64 * META_ENTRY_BYTES;
                let ctr_start = bg;
                bg = self.nvm.access(
                    self.space.security_counters(0),
                    AccessKind::Write,
                    u32::try_from(ctr_bytes.max(64).min(u64::from(u32::MAX))).expect("bounded"),
                    bg,
                );
                self.stats.record_nvm_write(ctr_bytes, NvmWriteClass::Checkpoint);
                self.stats.security.counter_persists += 1;
                self.stats.security.counter_bytes += ctr_bytes;
                self.wpq_push(self.space.security_counters(0), ctr_start, bg, WpqKind::Data);
                let tree_bytes = receipt.tree_nodes * META_ENTRY_BYTES;
                let tree_start = bg;
                bg = self.nvm.access(
                    self.space.security_tree(0),
                    AccessKind::Write,
                    u32::try_from(tree_bytes.max(64).min(u64::from(u32::MAX))).expect("bounded"),
                    bg,
                );
                self.stats.record_nvm_write(tree_bytes, NvmWriteClass::Checkpoint);
                self.stats.security.tree_node_persists += receipt.tree_nodes;
                self.stats.security.tree_bytes += tree_bytes;
                self.wpq_push(self.space.security_tree(0), tree_start, bg, WpqKind::Data);
            }
            // §4.4: counter table and tree nodes must be durable before
            // the root that authenticates them.
            bg = self.wpq_fence(bg);
            // The 64 B root + MAC record persists every round: it binds
            // the table generation, which is what makes a rolled-back
            // table (counter-replay attack) detectable.
            let root_start = bg;
            bg = self.nvm.access(self.space.security_root(), AccessKind::Write, 64, bg);
            self.stats.record_nvm_write(64, NvmWriteClass::Checkpoint);
            self.stats.security.root_persists += 1;
            self.charge_crypto(64, true);
            self.wpq_push(self.space.security_root(), root_start, bg, WpqKind::Data);
        }

        // (4c) Health ladder: persist the current rung as a 64 B record
        // just before the commit record, riding the same discipline — a
        // crash before the commit flag leaves the previous epoch's sealed
        // rung in effect, exactly like every other piece of metadata.
        if let Some(rung) = self.health_mon.as_ref().map(HealthMonitor::rung) {
            let rung_start = bg;
            bg = self.nvm.access(self.space.health_record(), AccessKind::Write, 64, bg);
            self.stats.record_nvm_write(64, NvmWriteClass::Checkpoint);
            self.charge_crc(64);
            self.wpq_push(self.space.health_record(), rung_start, bg, WpqKind::Data);
            self.stats.health.rung_persists += 1;
            self.pending_health_rung = Some(rung);
        }

        // §4.4: everything the commit record covers — data, metadata,
        // security and health records — must be durable before it.
        bg = self.wpq_fence(bg);
        let commit_start = bg;
        bg = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, bg);
        self.stats.record_nvm_write(1, NvmWriteClass::Checkpoint);
        self.charge_crc(64); // checksummed commit record
        self.wpq_push_marker(self.space.backup(0), commit_start, bg);

        // Functional capture: the ending epoch's writes are now "being
        // checkpointed"; they commit when the job retires. Intermediate
        // rounds persist metadata only — a crash among them rolls back to
        // the previous full epoch boundary (conservative, see DESIGN.md).
        debug_assert!(self.ckpting_log.is_empty(), "previous job retired above");
        if final_round {
            self.ckpting_log = std::mem::take(&mut self.working_log);
        }

        self.stats.ckpt_busy_cycles += bg - ckpt_start;
        self.stats.epochs_completed += 1; // checkpoints taken
        self.epoch_length_hist
            .record(ckpt_start.saturating_sub(self.epoch.epoch_start).raw());
        self.job_duration_hist.record((bg - ckpt_start).raw());

        let job = CkptJob {
            epoch: self.epoch.active_epoch,
            started: ckpt_start,
            commit_at: commit_start,
            done_at: bg,
            drained_at: phase1_done,
            btt_at: btt_done,
            pages_at: phase3_done,
            writeback_done,
            frozen_pages: frozen,
        };
        self.epoch.start_job(job, t);

        if final_round && self.cfg.thynvm.overlap {
            resume_after_flush.max(t)
        } else {
            // Stop-the-world: wait for the round to complete and retire it.
            self.retire_job_if_done(bg);
            bg
        }
    }
}

impl thynvm_types::PersistentMemory for ThyNvm {
    fn store_bytes(&mut self, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        ThyNvm::store_bytes(self, addr, data, now)
    }

    fn load_bytes(&mut self, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        ThyNvm::load_bytes(self, addr, buf, now)
    }

    fn persist(&mut self, now: Cycle) -> Cycle {
        let t = self.force_checkpoint(now);
        MemorySystem::drain(self, t)
    }

    fn power_fail(&mut self, now: Cycle) -> Cycle {
        let report = self.crash_and_recover(now);
        now + report.recovery_cycles
    }
}

impl ThyNvm {
    /// Convenience driver used by tests: runs trace events directly against
    /// the controller (no caches), honoring the checkpoint handshake.
    pub fn run_raw_trace<I>(&mut self, events: I, mut now: Cycle) -> Cycle
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        for e in events {
            now += Cycle::new(u64::from(e.gap));
            now = self.access(&e.req, now);
            if self.checkpoint_due(now) {
                now = self.begin_checkpoint(now, &[]);
            }
        }
        self.drain(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ThyNvm {
        ThyNvm::new(SystemConfig::small_test())
    }

    fn write64(sys: &mut ThyNvm, addr: u64, now: u64) -> Cycle {
        sys.access(&MemRequest::write(PhysAddr::new(addr), 64), Cycle::new(now))
    }

    #[test]
    fn first_write_goes_to_nvm_region_a() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let entry = sys.btt().get(BlockIndex::new(0)).expect("BTT entry created");
        assert_eq!(entry.wactive, Some(WactiveLoc::Nvm(Region::A)));
        assert_eq!(sys.stats().nvm_write_bytes_cpu, 64);
        assert_eq!(sys.stats().dram_write_bytes, 0);
    }

    #[test]
    fn writes_coalesce_in_same_working_copy() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        write64(&mut sys, 0, 10_000);
        assert_eq!(sys.btt().len(), 1);
        assert_eq!(sys.stats().nvm_write_bytes_cpu, 128);
        let entry = sys.btt().get(BlockIndex::new(0)).unwrap();
        assert_eq!(entry.wactive, Some(WactiveLoc::Nvm(Region::A)));
    }

    #[test]
    fn checkpoint_rotates_block_version_to_clast() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let t = sys.force_checkpoint(Cycle::new(1_000));
        let t = sys.drain(t);
        let entry = sys.btt().get(BlockIndex::new(0)).expect("entry kept");
        assert_eq!(entry.clast_region, Some(Region::A));
        assert_eq!(entry.wactive, None);
        assert_eq!(entry.pending, None);
        assert!(t > Cycle::new(1_000));
    }

    #[test]
    fn next_epoch_write_targets_other_region() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let t = sys.force_checkpoint(Cycle::new(1_000));
        let t = sys.drain(t);
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        let entry = sys.btt().get(BlockIndex::new(0)).unwrap();
        assert_eq!(entry.wactive, Some(WactiveLoc::Nvm(Region::B)));
    }

    #[test]
    fn write_during_inflight_checkpoint_is_buffered_in_dram() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let resume = sys.force_checkpoint(Cycle::new(1_000));
        // Job still in flight right at resume: new write must not touch NVM.
        assert!(sys.epoch_state().job_running(resume));
        let nvm_before = sys.stats().nvm_write_bytes_total();
        sys.access(&MemRequest::write(PhysAddr::new(4096), 64), resume);
        assert_eq!(sys.stats().nvm_write_bytes_total(), nvm_before);
        let entry = sys.btt().get(BlockIndex::new(64)).expect("buffered entry");
        assert!(matches!(entry.wactive, Some(WactiveLoc::DramBuffered { .. })));
        assert!(sys.stats().dram_write_bytes >= 64);
    }

    #[test]
    fn buffered_blocks_drain_at_next_checkpoint() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let resume = sys.force_checkpoint(Cycle::new(1_000));
        sys.access(&MemRequest::write(PhysAddr::new(4096), 64), resume);
        // Wait for job 0, then checkpoint epoch 1.
        let done = sys.epoch_state().job.as_ref().unwrap().done_at;
        let resume2 = sys.force_checkpoint(done);
        let _ = sys.drain(resume2);
        let entry = sys.btt().get(BlockIndex::new(64)).expect("entry");
        assert!(entry.clast_region.is_some());
        // The drain wrote the block to NVM as checkpoint traffic.
        assert!(sys.stats().nvm_write_bytes_ckpt >= 64);
    }

    #[test]
    fn hot_page_promoted_to_page_writeback() {
        let mut sys = small();
        // 30 stores to the same page in epoch 0 (threshold is 22).
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.force_checkpoint(now);
        let t = sys.drain(t);
        assert!(sys.ptt().get(PageIndex::new(0)).is_some(), "page should be promoted");
        assert_eq!(sys.stats().pages_promoted, 1);
        // Next write to the page goes to DRAM.
        let dram_before = sys.stats().dram_write_bytes;
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        assert_eq!(sys.stats().dram_write_bytes, dram_before + 64);
        assert!(sys.ptt().get(PageIndex::new(0)).unwrap().dirty);
    }

    #[test]
    fn cold_page_demoted_back_to_block_remapping() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.force_checkpoint(now);
        let t = sys.drain(t);
        assert!(sys.ptt().get(PageIndex::new(0)).is_some());
        // Epoch with zero writes to the page → demote at next retirement.
        let t2 = sys.force_checkpoint(t + Cycle::new(10));
        let t2 = sys.drain(t2);
        let t3 = sys.force_checkpoint(t2 + Cycle::new(10));
        let _ = sys.drain(t3);
        assert!(sys.ptt().get(PageIndex::new(0)).is_none(), "cold page demoted");
        assert!(sys.stats().pages_demoted >= 1);
        assert!(sys.stats().nvm_write_bytes_migration >= PAGE_BYTES);
    }

    #[test]
    fn dirty_page_checkpoint_writes_whole_page() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now); // promote
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        let ckpt_before = sys.stats().nvm_write_bytes_ckpt;
        let t2 = sys.force_checkpoint(t + Cycle::new(100));
        let _ = sys.drain(t2);
        assert!(
            sys.stats().nvm_write_bytes_ckpt >= ckpt_before + PAGE_BYTES,
            "page writeback persists 4 KiB"
        );
    }

    #[test]
    fn store_to_frozen_page_is_absorbed_by_block_remapping() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now); // page promoted
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t); // dirty it
        let resume = sys.force_checkpoint(t + Cycle::new(100));
        // Page is frozen while the job writes it back.
        assert!(sys.epoch_state().page_frozen(PageIndex::new(0), resume));
        let nvm_before = sys.stats().nvm_write_bytes_total();
        sys.access(&MemRequest::write(PhysAddr::new(64), 64), resume);
        // Cooperation: absorbed in DRAM, no NVM write, no stall on the page.
        assert_eq!(sys.stats().nvm_write_bytes_total(), nvm_before);
        let entry = sys.btt().get(BlockIndex::new(1)).expect("cooperation entry");
        assert!(matches!(entry.wactive, Some(WactiveLoc::DramBuffered { .. })));
    }

    #[test]
    fn btt_overflow_forces_early_epoch_end() {
        let mut sys = small(); // 64 BTT entries
        let mut now = Cycle::ZERO;
        // Touch 65 distinct pages (each write = one block, distinct pages so
        // no promotion).
        for i in 0..65u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new(i * PAGE_BYTES), 64), now);
        }
        assert!(sys.checkpoint_due(now), "overflow must request an epoch end");
    }

    #[test]
    fn overlap_resumes_before_job_completes() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now);
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        let resume = sys.force_checkpoint(t + Cycle::new(100));
        let job_done = sys.epoch_state().job.as_ref().expect("job").done_at;
        assert!(resume < job_done, "overlapped checkpoint must not block execution");
    }

    #[test]
    fn no_overlap_mode_blocks_until_done() {
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.overlap = false;
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let resume = sys.force_checkpoint(now);
        assert!(!sys.epoch_state().job_running(resume), "stop-the-world returns at completion");
    }

    #[test]
    fn back_to_back_checkpoints_stall_for_first_job() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now);
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        let r1 = sys.force_checkpoint(t + Cycle::new(10));
        let stall_before = sys.stats().ckpt_stall_cycles;
        // Immediately demand another checkpoint: must wait for job 1.
        sys.access(&MemRequest::write(PhysAddr::new(8 * PAGE_BYTES), 64), r1);
        let _r2 = sys.force_checkpoint(r1 + Cycle::new(1));
        assert!(sys.stats().ckpt_stall_cycles > stall_before, "second checkpoint stalls");
    }

    // ---------------- functional / crash-consistency ----------------

    #[test]
    fn recover_to_last_completed_checkpoint() {
        let mut sys = small();
        sys.store_bytes(PhysAddr::new(100), b"AAAA", Cycle::ZERO);
        let t = sys.force_checkpoint(Cycle::new(1_000));
        let t = sys.drain(t);
        sys.store_bytes(PhysAddr::new(100), b"BBBB", t);
        // Crash before the second value is checkpointed.
        let report = sys.crash_and_recover(t + Cycle::new(1));
        assert!(!report.rolled_back_incomplete);
        assert_eq!(report.recovered_checkpoints, 1);
        let mut buf = [0u8; 4];
        sys.load_bytes(PhysAddr::new(100), &mut buf, t);
        assert_eq!(&buf, b"AAAA");
    }

    #[test]
    fn crash_during_checkpoint_rolls_back_to_penultimate() {
        let mut sys = small();
        sys.store_bytes(PhysAddr::new(0), b"epoch0", Cycle::ZERO);
        let t = sys.drain(Cycle::new(100)); // checkpoint 0 complete
        sys.store_bytes(PhysAddr::new(0), b"epoch1", t);
        let resume = sys.force_checkpoint(t + Cycle::new(10));
        // Crash while checkpoint 1 is in flight.
        assert!(sys.epoch_state().job_running(resume));
        let report = sys.crash_and_recover(resume);
        assert!(report.rolled_back_incomplete);
        let mut buf = [0u8; 6];
        sys.load_bytes(PhysAddr::new(0), &mut buf, resume);
        assert_eq!(&buf, b"epoch0", "incomplete checkpoint discarded");
    }

    #[test]
    fn crash_after_checkpoint_done_keeps_it() {
        let mut sys = small();
        sys.store_bytes(PhysAddr::new(0), b"epoch0", Cycle::ZERO);
        let t = sys.drain(Cycle::new(100));
        sys.store_bytes(PhysAddr::new(0), b"epoch1", t);
        let resume = sys.force_checkpoint(t + Cycle::new(10));
        let done = sys.epoch_state().job.as_ref().unwrap().done_at;
        let _ = resume;
        // Crash *after* the job completed.
        let report = sys.crash_and_recover(done + Cycle::new(1));
        assert!(!report.rolled_back_incomplete);
        let mut buf = [0u8; 6];
        sys.load_bytes(PhysAddr::new(0), &mut buf, done);
        assert_eq!(&buf, b"epoch1");
    }

    #[test]
    fn crash_with_no_checkpoint_recovers_to_zeroes() {
        let mut sys = small();
        sys.store_bytes(PhysAddr::new(0), b"lost", Cycle::ZERO);
        let report = sys.crash_and_recover(Cycle::new(10));
        assert_eq!(report.recovered_checkpoints, 0);
        let mut buf = [9u8; 4];
        sys.load_bytes(PhysAddr::new(0), &mut buf, Cycle::new(20));
        assert_eq!(buf, [0u8; 4], "nothing was ever made durable");
    }

    #[test]
    fn recovery_restores_promoted_pages_to_dram() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.store_bytes(PhysAddr::new((i % 64) * 64), &[i as u8; 64], now);
        }
        let t = sys.drain(now); // page promoted + checkpointed
        let report = sys.crash_and_recover(t);
        assert!(report.restored_pages >= 1, "PTT pages reload into DRAM (§4.5)");
        assert!(report.recovery_cycles > Cycle::ZERO);
    }

    #[test]
    fn visible_reads_see_working_copy_before_checkpoint() {
        let mut sys = small();
        sys.store_bytes(PhysAddr::new(64), b"fresh", Cycle::ZERO);
        let mut buf = [0u8; 5];
        sys.load_bytes(PhysAddr::new(64), &mut buf, Cycle::new(10));
        assert_eq!(&buf, b"fresh", "W_active is software-visible (§4.1)");
    }

    #[test]
    fn run_raw_trace_completes_and_checkpoints() {
        let mut sys = small();
        let events: Vec<TraceEvent> = (0..200u64)
            .map(|i| TraceEvent::new(10, MemRequest::write(PhysAddr::new((i * 64) % 8192), 64)))
            .collect();
        let end = sys.run_raw_trace(events, Cycle::ZERO);
        assert!(end > Cycle::ZERO);
        assert!(sys.stats().epochs_completed >= 1);
        assert!(!sys.has_uncheckpointed_writes());
    }

    #[test]
    fn reads_from_home_region_for_untracked_data() {
        let mut sys = small();
        let before = sys.stats().nvm_reads;
        sys.access(&MemRequest::read(PhysAddr::new(1 << 20), 64), Cycle::ZERO);
        assert_eq!(sys.stats().nvm_reads, before + 1);
        assert_eq!(sys.stats().reads, 1);
    }

    #[test]
    fn reads_of_page_mode_data_hit_dram() {
        let mut sys = small();
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now);
        let dram_reads_before = sys.stats().dram_reads;
        sys.access(&MemRequest::read(PhysAddr::new(0), 64), t);
        assert_eq!(sys.stats().dram_reads, dram_reads_before + 1);
    }

    #[test]
    fn drain_leaves_system_quiescent() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let t = sys.drain(Cycle::new(100));
        assert!(!sys.has_uncheckpointed_writes());
        assert!(!sys.epoch_state().job_running(t));
        // Idempotent.
        assert_eq!(sys.drain(t), t);
    }

    #[test]
    fn name_reflects_mode() {
        assert_eq!(small().name(), "ThyNVM");
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.mode = CkptMode::BlockOnly;
        assert_eq!(ThyNvm::new(cfg).name(), "ThyNVM-blockonly");
        cfg.thynvm.mode = CkptMode::PageOnly;
        assert_eq!(ThyNvm::new(cfg).name(), "ThyNVM-pageonly");
        cfg.thynvm.mode = CkptMode::Dual;
        cfg.thynvm.overlap = false;
        assert_eq!(ThyNvm::new(cfg).name(), "ThyNVM-nooverlap");
    }

    #[test]
    fn ckpt_busy_cycles_accumulate() {
        let mut sys = small();
        write64(&mut sys, 0, 0);
        let t = sys.force_checkpoint(Cycle::new(1_000));
        let _ = sys.drain(t);
        assert!(sys.stats().ckpt_busy_cycles > Cycle::ZERO);
    }

    // ---------------- §6 extensions ----------------

    #[test]
    fn persist_barrier_makes_preceding_stores_durable() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), b"before", Cycle::ZERO);
        let t = sys.persist_barrier(t);
        let t = sys.drain(t);
        let t2 = sys.store_bytes(PhysAddr::new(64), b"after!", t);
        let _ = sys.crash_and_recover(t2);
        let mut a = [0u8; 6];
        let mut b = [0u8; 6];
        sys.load_bytes(PhysAddr::new(0), &mut a, t2);
        sys.load_bytes(PhysAddr::new(64), &mut b, t2);
        assert_eq!(&a, b"before", "pre-barrier data survives");
        assert_eq!(&b, &[0u8; 6], "post-barrier data was never persisted");
    }

    #[test]
    fn persistence_interval_is_configurable() {
        let mut sys = small();
        sys.set_persistence_interval_ms(2);
        assert!(!sys.checkpoint_due(Cycle::from_ms(1)));
        assert!(sys.checkpoint_due(Cycle::from_ms(2)));
    }

    #[test]
    fn archive_retains_past_checkpoints() {
        let mut sys = small();
        sys.set_archive_depth(2);
        let mut t = Cycle::ZERO;
        for i in 1u8..=3 {
            t = sys.store_bytes(PhysAddr::new(0), &[i], t);
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        // Depth 2: only the two most recent checkpoints retained.
        assert_eq!(sys.archived_checkpoints().len(), 2);
    }

    #[test]
    fn rollback_to_archived_checkpoint_restores_old_image() {
        let mut sys = small();
        sys.set_archive_depth(4);
        let mut t = Cycle::ZERO;
        for i in 1u8..=3 {
            t = sys.store_bytes(PhysAddr::new(0), &[i], t);
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        let archived = sys.archived_checkpoints();
        assert_eq!(archived.len(), 3);
        // Roll back to the first checkpoint (value 1).
        let _ = sys.rollback_to_checkpoint(archived[0], t).expect("in archive");
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf[0], 1, "the 'bug-free' past image is restored");
        // Later checkpoints are gone from the archive.
        assert_eq!(sys.archived_checkpoints(), vec![archived[0]]);
    }

    #[test]
    fn rollback_to_unknown_checkpoint_errors() {
        let mut sys = small();
        sys.set_archive_depth(2);
        let err = sys.rollback_to_checkpoint(99, Cycle::ZERO).unwrap_err();
        assert_eq!(err, thynvm_types::Error::NoCheckpoint);
    }

    #[test]
    fn nvm_working_region_functions_identically() {
        // §4.1 footnote 3 exploration: correctness must be placement-
        // independent; only timing and traffic accounting change.
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.working_region = thynvm_types::WorkingRegion::Nvm;
        let mut sys = ThyNvm::new(cfg);
        let t = sys.store_bytes(PhysAddr::new(0x40), b"nvm-working", Cycle::ZERO);
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        let _ = sys.crash_and_recover(t);
        let mut buf = [0u8; 11];
        sys.load_bytes(PhysAddr::new(0x40), &mut buf, t);
        assert_eq!(&buf, b"nvm-working");
        // No DRAM traffic at all in this placement.
        assert_eq!(sys.stats().dram_write_bytes, 0);
        assert_eq!(sys.stats().dram_reads, 0);
    }

    #[test]
    fn nvm_working_region_page_writes_hit_nvm() {
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.working_region = thynvm_types::WorkingRegion::Nvm;
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for i in 0..30u64 {
            now = sys.access(&MemRequest::write(PhysAddr::new((i % 64) * 64), 64), now);
        }
        let t = sys.drain(now); // page promoted into the NVM working region
        assert!(sys.ptt().get(PageIndex::new(0)).is_some());
        let nvm_before = sys.stats().nvm_write_bytes_cpu;
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), t);
        assert!(sys.stats().nvm_write_bytes_cpu > nvm_before, "page write went to NVM");
        assert_eq!(sys.stats().dram_write_bytes, 0);
    }

    #[test]
    fn archive_disabled_by_default() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), &[1], Cycle::ZERO);
        let t = sys.force_checkpoint(t);
        let _ = sys.drain(t);
        assert!(sys.archived_checkpoints().is_empty());
    }

    // ---------------- fault injection ----------------

    #[test]
    fn armed_crash_fires_on_next_request_past_the_point() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), &[1], Cycle::ZERO);
        sys.arm_crash_point(t + Cycle::new(10));
        assert_eq!(sys.armed_crash_point(), Some(t + Cycle::new(10)));
        // A store before the point proceeds normally.
        let t2 = sys.store_bytes(PhysAddr::new(64), &[2], t);
        assert!(sys.take_crash_report().is_none());
        // The first request strictly past the point triggers the crash.
        let resume = sys.store_bytes(PhysAddr::new(128), &[3], t2 + Cycle::new(1_000));
        let crash = sys.take_crash_report().expect("crash fired");
        assert_eq!(crash.event.cycle, t + Cycle::new(10));
        assert_eq!(crash.resume_at, resume);
        assert_eq!(sys.armed_crash_point(), None);
        assert_eq!(sys.stats().crashes_injected, 1);
        // No checkpoint had completed: everything reads zero, including the
        // dropped store.
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(128), &mut buf, resume);
        assert_eq!(buf[0], 0, "the crashed store must be dropped");
    }

    #[test]
    fn crash_during_checkpoint_classifies_phase_and_rolls_back() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), &[7], Cycle::ZERO);
        // First checkpoint completes: C_last = {7}.
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        let t = sys.store_bytes(PhysAddr::new(0), &[8], t);
        // Second checkpoint starts; crash one cycle before its commit.
        let resume = sys.force_checkpoint(t);
        let job_done = sys.epoch_state().job.as_ref().expect("job in flight").done_at;
        sys.arm_crash_point(job_done - Cycle::new(1));
        let after = sys.load_bytes(PhysAddr::new(0), &mut [0u8; 1], job_done + Cycle::new(1));
        let _ = (resume, after);
        let crash = sys.take_crash_report().expect("crash fired");
        assert!(crash.report.rolled_back_incomplete, "checkpoint was in flight");
        assert_eq!(crash.event.outcome, thynvm_types::RecoveryOutcome::CPenult);
        assert_ne!(crash.event.phase, thynvm_types::CkptPhase::Execution);
        // Recovery restored the first checkpoint's value.
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(0), &mut buf, crash.resume_at);
        assert_eq!(buf[0], 7);
        assert_eq!(sys.stats().recoveries_to_cpenult, 1);
    }

    #[test]
    fn crash_after_checkpoint_commit_keeps_clast() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), &[9], Cycle::ZERO);
        let t = sys.force_checkpoint(t);
        let job_done = sys.epoch_state().job.as_ref().map(|j| j.done_at).unwrap_or(t);
        // Crash exactly at the commit cycle: the checkpoint counts.
        sys.arm_crash_point(job_done);
        sys.load_bytes(PhysAddr::new(0), &mut [0u8; 1], job_done + Cycle::new(1));
        let crash = sys.take_crash_report().expect("crash fired");
        assert!(!crash.report.rolled_back_incomplete);
        assert_eq!(crash.event.outcome, thynvm_types::RecoveryOutcome::CLast);
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(0), &mut buf, crash.resume_at);
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn crash_fires_while_stalled_on_inflight_job() {
        let mut sys = small();
        let t = sys.store_bytes(PhysAddr::new(0), &[1], Cycle::ZERO);
        let resume = sys.force_checkpoint(t);
        let job_done = sys.epoch_state().job.as_ref().expect("overlap job").done_at;
        assert!(resume < job_done, "needs an overlapped in-flight job");
        // Arm inside the job's window, then request a second checkpoint:
        // the controller would stall until `job_done`, but power fails
        // mid-wait.
        sys.arm_crash_point(job_done - Cycle::new(1));
        sys.force_checkpoint(resume);
        let crash = sys.take_crash_report().expect("crash fired during stall");
        assert!(crash.report.rolled_back_incomplete);
    }

    #[test]
    fn disarm_prevents_the_crash() {
        let mut sys = small();
        sys.arm_crash_point(Cycle::new(5));
        assert_eq!(sys.disarm_crash_point(), Some(Cycle::new(5)));
        let t = sys.store_bytes(PhysAddr::new(0), &[1], Cycle::new(100));
        assert!(sys.take_crash_report().is_none());
        assert!(t > Cycle::new(100));
        assert_eq!(sys.stats().crashes_injected, 0);
    }

    #[test]
    fn poll_crash_fires_between_requests() {
        let mut sys = small();
        sys.arm_crash_point(Cycle::new(50));
        // Power fails at the *end* of cycle 50: not due at 50 itself.
        assert!(sys.poll_crash(Cycle::new(49)).is_none());
        assert!(sys.poll_crash(Cycle::new(50)).is_none());
        let resume = sys.poll_crash(Cycle::new(51)).expect("due");
        assert!(resume >= Cycle::new(50));
        assert!(sys.take_crash_report().is_some());
    }

    #[test]
    fn crash_events_record_epoch_and_inflight_counts() {
        let mut sys = small();
        let mut t = Cycle::ZERO;
        for round in 0u8..3 {
            t = sys.store_bytes(PhysAddr::new(0), &[round + 1], t);
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        let epoch_before = sys.epoch_state().active_epoch;
        sys.arm_crash_point(t + Cycle::new(1));
        sys.store_bytes(PhysAddr::new(0), &[9], t + Cycle::new(2));
        let crash = sys.take_crash_report().expect("fired");
        assert_eq!(crash.event.epoch, epoch_before);
        assert_eq!(crash.event.phase, thynvm_types::CkptPhase::Execution);
        // The same record landed in the stats layer.
        assert_eq!(sys.stats().crash_events.len(), 1);
        assert_eq!(sys.stats().crash_events[0], crash.event);
    }

    // ------------------------------------------------------------------
    // Media faults & self-healing
    // ------------------------------------------------------------------

    fn media_cfg(f: impl FnOnce(&mut thynvm_types::MediaFaultConfig)) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.media = thynvm_types::MediaFaultConfig::hardened();
        f(&mut cfg.media);
        cfg.validate().expect("valid media config");
        cfg
    }

    /// Stores `val` over block 0 and completes a full checkpoint.
    fn store_and_checkpoint(sys: &mut ThyNvm, val: u8, t: Cycle) -> Cycle {
        let t = sys.store_bytes(PhysAddr::new(0), &[val; 64], t);
        let t = sys.force_checkpoint(t);
        sys.drain(t)
    }

    #[test]
    fn torn_commit_record_falls_back_to_cpenult() {
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_media_fault(MediaFault::TornCommitRecord);
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        assert!(!report.rolled_back_incomplete);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64], "recovered to C_penult's contents");
        assert_eq!(sys.stats().media.torn_writes, 1);
        assert_eq!(sys.stats().media.integrity_fallbacks, 1);
    }

    #[test]
    fn clast_bit_flip_falls_back_to_cpenult() {
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_media_fault(MediaFault::ClastBitFlip { addr: 0 });
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
        assert_eq!(sys.stats().media.bit_flips, 1);
    }

    #[test]
    fn corrupt_ptt_metadata_falls_back_to_cpenult() {
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_media_fault(MediaFault::CorruptPttMetadata);
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
        assert_eq!(sys.stats().media.meta_corruptions, 1);
    }

    #[test]
    fn injected_fault_stays_armed_until_a_checkpoint_exists() {
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        sys.inject_media_fault(MediaFault::TornCommitRecord);
        // No completed checkpoint: nothing persisted to corrupt yet.
        let report = sys.crash_and_recover(Cycle::new(100));
        assert!(!report.integrity_fallback);
        assert_eq!(sys.stats().media.integrity_fallbacks, 0);
        // After the first checkpoint the armed fault fires and recovery
        // falls back to the pre-checkpoint (empty) image.
        let t = store_and_checkpoint(&mut sys, 3, Cycle::new(200));
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [0u8; 64], "fell back to the initial zero image");
    }

    #[test]
    fn transient_flip_is_healed_by_retry() {
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        let t = sys.store_bytes(PhysAddr::new(0), &[0xAA; 64], Cycle::ZERO);
        sys.fault_model_mut().expect("media on").arm_transient_flips(1);
        let mut buf = [0u8; 64];
        let t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [0xAA; 64], "CRC+retry delivered the true bytes");
        let m = sys.stats().media;
        assert_eq!(m.bit_flips, 1);
        assert_eq!(m.retries, 1, "one retry healed the transient flip");
        assert_eq!(m.remaps, 0);
        assert_eq!(m.integrity_fallbacks, 0);
        assert!(sys.take_media_error().is_none());
        // And the system keeps working afterwards.
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [0xAA; 64]);
    }

    #[test]
    fn silent_corruption_reaches_software_without_integrity() {
        let mut sys = ThyNvm::new(media_cfg(|m| {
            m.integrity = false;
            m.scrub = false;
        }));
        let t = sys.store_bytes(PhysAddr::new(0), &[0xAA; 64], Cycle::ZERO);
        sys.fault_model_mut().expect("media on").arm_transient_flips(1);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_ne!(buf, [0xAA; 64], "no CRC, so the flip is delivered");
        assert_eq!(sys.stats().media.silent_corruptions, 1);
        assert_eq!(sys.stats().media.retries, 0);
        // The fault model still records what software never saw.
        let err = sys.take_media_error().expect("invariant: a corruption was just delivered");
        assert!(
            matches!(err, Error::MediaCorruption { kind: FaultKind::BitFlip, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn stuck_cell_is_remapped_exactly_once() {
        let mut sys = ThyNvm::new(media_cfg(|m| {
            m.stuck_at_threshold = 2;
            m.scrub = false; // exercise the read path, not the scrubber
        }));
        // Two writes to the same row cross the wear threshold.
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], Cycle::ZERO);
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], t);
        assert_eq!(sys.stats().media.stuck_faults, 1, "wear created a stuck cell");
        let mut buf = [0u8; 64];
        let t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [7u8; 64], "functional contents survive the remap");
        let m = sys.stats().media;
        assert_eq!(m.remaps, 1, "retries exhausted, block remapped to spare");
        assert_eq!(m.retries, 3, "all bounded retries failed on a stuck cell");
        assert_eq!(sys.bad_block_remaps(), 1);
        let err = sys.take_media_error().expect("retries-exhausted error");
        assert!(matches!(err, Error::RetriesExhausted { attempts: 3, .. }));
        // A second read resolves through the bad-block table: no new
        // retries, no second remap.
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [7u8; 64]);
        let m = sys.stats().media;
        assert_eq!(m.remaps, 1, "a block is remapped at most once");
        assert_eq!(m.retries, 3, "remapped reads are clean");
    }

    #[test]
    fn scrubber_remaps_stuck_blocks_between_epochs() {
        let mut sys = ThyNvm::new(media_cfg(|m| m.stuck_at_threshold = 2));
        let t = sys.store_bytes(PhysAddr::new(0), &[5u8; 64], Cycle::ZERO);
        let t = sys.store_bytes(PhysAddr::new(0), &[5u8; 64], t);
        assert_eq!(sys.stats().media.stuck_faults, 1);
        // Retiring the checkpoint runs the scrubber.
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        let m = sys.stats().media;
        assert_eq!(m.scrub_repairs, 1, "scrubber proactively remapped the block");
        assert_eq!(m.remaps, 1);
        // Reads after scrubbing never hit the stuck cell.
        let retries_before = m.retries;
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [5u8; 64]);
        assert_eq!(sys.stats().media.retries, retries_before);
    }

    #[test]
    fn zero_rate_media_model_matches_default_timing_and_stats() {
        // With the model enabled but all fault sources at zero and
        // integrity off, timing and stats are identical to media-off.
        let mut cfg = SystemConfig::small_test();
        cfg.media.enabled = true;
        cfg.media.bit_flip_rate = 0.0;
        let mut faulty = ThyNvm::new(cfg);
        let mut plain = small();
        let mut t_f = Cycle::ZERO;
        let mut t_p = Cycle::ZERO;
        for round in 0u8..4 {
            for blk in 0u64..8 {
                t_f = faulty.store_bytes(PhysAddr::new(blk * 64), &[round; 64], t_f);
                t_p = plain.store_bytes(PhysAddr::new(blk * 64), &[round; 64], t_p);
            }
            t_f = faulty.force_checkpoint(t_f);
            t_f = faulty.drain(t_f);
            t_p = plain.force_checkpoint(t_p);
            t_p = plain.drain(t_p);
            let mut buf = [0u8; 64];
            t_f = faulty.load_bytes(PhysAddr::new(64), &mut buf, t_f);
            t_p = plain.load_bytes(PhysAddr::new(64), &mut buf, t_p);
        }
        assert_eq!(t_f, t_p, "zero-rate media model must not perturb timing");
        assert_eq!(faulty.stats().nvm_reads, plain.stats().nvm_reads);
        assert_eq!(faulty.stats().nvm_write_bytes_ckpt, plain.stats().nvm_write_bytes_ckpt);
        assert!(!faulty.stats().media.any());
        assert_eq!(faulty.stats().media.crc_check_cycles, Cycle::ZERO);
    }

    #[test]
    fn integrity_crc_costs_are_stats_only() {
        // CRC work is attributed to dedicated counters, never to the
        // service-time accounting of the store/load paths.
        let mut sys = ThyNvm::new(media_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 9, Cycle::ZERO);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        let m = sys.stats().media;
        assert!(m.crc_checked_blocks > 0, "checkpoint + load verified CRCs");
        assert!(m.crc_check_cycles > Cycle::ZERO);
    }

    // ------------------------------------------------------------------
    // Restartable recovery & crash-point queue
    // ------------------------------------------------------------------

    #[test]
    fn recovery_is_cycle_accounted_and_reports_steps() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 3, Cycle::ZERO);
        let report = sys.crash_and_recover(t);
        assert!(report.recovery_cycles > Cycle::ZERO, "recovery pays modeled latency");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.nested_crashes, 0);
        assert_eq!(report.steps.first().map(|&(s, _)| s), Some(RecoveryStep::ReadCommitRecord));
        assert_eq!(report.steps.last().map(|&(s, _)| s), Some(RecoveryStep::RearmWorkingSet));
        // Step-end cycles are strictly ordered along the recovery timeline.
        for pair in report.steps.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "steps out of order: {:?}", report.steps);
        }
        assert_eq!(sys.stats().recovery_cycles, report.recovery_cycles);
        assert_eq!(sys.stats().nested_crashes, 0);
    }

    #[test]
    fn queue_crash_point_orders_and_disarm_pops_earliest() {
        let mut sys = small();
        sys.queue_crash_point(Cycle::new(300));
        sys.queue_crash_point(Cycle::new(100));
        sys.queue_crash_point(Cycle::new(200));
        assert_eq!(
            sys.armed_crash_points(),
            &[Cycle::new(100), Cycle::new(200), Cycle::new(300)]
        );
        assert_eq!(sys.armed_crash_point(), Some(Cycle::new(100)));
        // Disarm removes only the earliest; the rest stay queued.
        assert_eq!(sys.disarm_crash_point(), Some(Cycle::new(100)));
        assert_eq!(sys.armed_crash_point(), Some(Cycle::new(200)));
        // Arming replaces the whole queue.
        sys.arm_crash_point(Cycle::new(50));
        assert_eq!(sys.armed_crash_points(), &[Cycle::new(50)]);
        assert_eq!(sys.disarm_crash_point(), Some(Cycle::new(50)));
        assert_eq!(sys.disarm_crash_point(), None);
    }

    #[test]
    fn queued_point_survives_into_recovery_as_nested_crash() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 5, Cycle::ZERO);
        sys.arm_crash_point(t);
        // One cycle after the crash: recovery's first step overruns it.
        sys.queue_crash_point(t + Cycle::new(1));
        let resume = sys.poll_crash(t + Cycle::new(2)).expect("crash fires");
        let crash = sys.take_crash_report().expect("reported");
        assert_eq!(crash.report.nested_crashes, 1, "queued point fired mid-recovery");
        assert_eq!(crash.report.attempts, 2);
        assert_eq!(sys.stats().crashes_injected, 1, "nested crashes are not top-level");
        assert_eq!(sys.stats().nested_crashes, 1);
        // The nested event names the interrupted recovery step.
        let nested = sys
            .stats()
            .crash_events
            .iter()
            .find(|e| e.recovery_step.is_some())
            .expect("nested event recorded");
        assert_eq!(nested.recovery_step, Some(RecoveryStep::ReadCommitRecord));
        assert_eq!(nested.cycle, t + Cycle::new(1));
        // Both queued points are consumed; recovery still lands on C_last.
        assert_eq!(sys.armed_crash_points(), &[] as &[Cycle]);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, resume);
        assert_eq!(buf, [5u8; 64]);
    }

    #[test]
    fn nested_crash_recovery_converges_to_the_uninterrupted_image() {
        // Probe twin: identical workload, single crash — learns the step
        // boundaries and the reference image.
        let mut probe = small();
        let mut trial = small();
        let mut tp = Cycle::ZERO;
        let mut tt = Cycle::ZERO;
        for (i, val) in [(0u64, 1u8), (64, 2), (4096, 3), (8192, 4)] {
            tp = probe.store_bytes(PhysAddr::new(i), &[val; 64], tp);
            tt = trial.store_bytes(PhysAddr::new(i), &[val; 64], tt);
        }
        tp = probe.force_checkpoint(tp);
        tp = probe.drain(tp);
        tt = trial.force_checkpoint(tt);
        tt = trial.drain(tt);
        assert_eq!(tp, tt, "twins share a timeline");
        probe.arm_crash_point(tp);
        probe.poll_crash(tp + Cycle::new(1)).expect("probe crash");
        let probe_report = probe.take_crash_report().expect("probe report").report;
        assert_eq!(probe_report.nested_crashes, 0);

        // Trial: nested crash points at every step boundary of the probe's
        // recovery (one cycle before each completion).
        trial.arm_crash_point(tt);
        for &(_, end) in &probe_report.steps {
            trial.queue_crash_point(end.saturating_sub(Cycle::new(1)));
        }
        trial.poll_crash(tt + Cycle::new(1)).expect("trial crash");
        let trial_report = trial.take_crash_report().expect("trial report").report;
        assert!(trial_report.nested_crashes > 0, "boundary points interrupted recovery");
        assert_eq!(trial_report.attempts, trial_report.nested_crashes + 1);
        // Idempotence: byte-identical to the uninterrupted recovery.
        assert_eq!(trial.visible_fingerprint(), probe.visible_fingerprint());
        assert_eq!(trial_report.recovered_checkpoints, probe_report.recovered_checkpoints);
        assert_eq!(trial_report.restored_pages, probe_report.restored_pages);
        // Interrupted recovery takes at least as long as the clean one.
        assert!(trial_report.recovery_cycles >= probe_report.recovery_cycles);
    }

    #[test]
    fn leftover_queued_points_stay_armed_after_recovery() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 9, Cycle::ZERO);
        sys.arm_crash_point(t);
        // Far beyond the end of recovery: must NOT fire as a nested crash.
        let far = t + Cycle::new(1_000_000_000);
        sys.queue_crash_point(far);
        let resume = sys.poll_crash(t + Cycle::new(1)).expect("first crash");
        let first = sys.take_crash_report().expect("first report");
        assert_eq!(first.report.nested_crashes, 0);
        assert_eq!(sys.armed_crash_points(), &[far], "distant point survives recovery");
        // It fires later as an ordinary top-level crash.
        let resume2 = sys.poll_crash(far + Cycle::new(1)).expect("second crash");
        assert!(resume2 > resume);
        assert_eq!(sys.stats().crashes_injected, 2);
        assert_eq!(sys.stats().nested_crashes, 0);
    }

    #[test]
    fn disarm_prevents_a_queued_point_from_reaching_recovery() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 7, Cycle::ZERO);
        sys.arm_crash_point(t);
        sys.queue_crash_point(t + Cycle::new(1));
        // Disarming pops the earliest point: the nested-crash candidate at
        // t+1 becomes the (only) top-level crash point.
        assert_eq!(sys.disarm_crash_point(), Some(t));
        sys.poll_crash(t + Cycle::new(2)).expect("remaining point fires");
        let crash = sys.take_crash_report().expect("reported");
        assert_eq!(crash.event.cycle, t + Cycle::new(1));
        assert_eq!(crash.report.nested_crashes, 0, "no queued point left to nest");
    }

    #[test]
    fn crash_during_integrity_fallback_still_lands_on_cpenult() {
        // Probe twin learns where the IntegrityFallback step completes.
        let mut probe = ThyNvm::new(media_cfg(|_| {}));
        let mut trial = ThyNvm::new(media_cfg(|_| {}));
        let tp = store_and_checkpoint(&mut probe, 1, Cycle::ZERO);
        let tp = store_and_checkpoint(&mut probe, 2, tp);
        let tt = store_and_checkpoint(&mut trial, 1, Cycle::ZERO);
        let tt = store_and_checkpoint(&mut trial, 2, tt);
        assert_eq!(tp, tt);
        probe.inject_media_fault(MediaFault::TornCommitRecord);
        probe.arm_crash_point(tp);
        probe.poll_crash(tp + Cycle::new(1)).expect("probe crash");
        let probe_report = probe.take_crash_report().expect("probe").report;
        let fallback_end = probe_report
            .steps
            .iter()
            .find(|&&(s, _)| s == RecoveryStep::IntegrityFallback)
            .map(|&(_, end)| end)
            .expect("probe recovery ran the fallback step");

        // Trial: power fails again one cycle before the fallback's WAL
        // seal lands — the fallback must be redone, never compounded.
        trial.inject_media_fault(MediaFault::TornCommitRecord);
        trial.arm_crash_point(tt);
        trial.queue_crash_point(fallback_end.saturating_sub(Cycle::new(1)));
        trial.poll_crash(tt + Cycle::new(1)).expect("trial crash");
        let crash = trial.take_crash_report().expect("trial");
        assert!(crash.report.integrity_fallback, "second recovery still picks C_penult");
        assert_eq!(crash.event.outcome, thynvm_types::RecoveryOutcome::CPenultIntegrityFallback);
        assert_eq!(crash.report.nested_crashes, 1);
        let m = trial.stats().media;
        assert_eq!(m.integrity_fallbacks, 1, "the fallback applied exactly once");
        assert!(m.wal_redos >= 1, "the torn WAL record was detected and redone");
        assert!(m.wal_seals >= 1);
        // Byte-identical to the uninterrupted fallback recovery.
        assert_eq!(trial.visible_fingerprint(), probe.visible_fingerprint());
        let mut buf = [0u8; 64];
        trial.load_bytes(PhysAddr::new(0), &mut buf, crash.resume_at);
        assert_eq!(buf, [1u8; 64], "C_penult's contents");
    }

    #[test]
    fn spare_pool_exhaustion_degrades_gracefully() {
        // One spare, two worn-out blocks: the second remap must be refused
        // without losing data or the first block's healing.
        let mut sys = ThyNvm::new(media_cfg(|m| {
            m.stuck_at_threshold = 2;
            m.scrub = false;
            m.spare_blocks = 1;
        }));
        let mut t = Cycle::ZERO;
        for addr in [0u64, 16 * PAGE_BYTES] {
            t = sys.store_bytes(PhysAddr::new(addr), &[0xAB; 64], t);
            t = sys.store_bytes(PhysAddr::new(addr), &[0xAB; 64], t);
        }
        assert_eq!(sys.stats().media.stuck_faults, 2, "wear stuck both rows");
        let mut buf = [0u8; 64];
        // First bad block consumes the only spare.
        t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [0xAB; 64]);
        assert_eq!(sys.bad_block_remaps(), 1);
        assert!(!sys.spares_exhausted() || sys.config().media.spare_blocks == 1);
        // Second bad block: no spare left. Served anyway, via CRC retries.
        t = sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, t);
        assert_eq!(buf, [0xAB; 64], "graceful degradation keeps serving data");
        let m = sys.stats().media;
        assert_eq!(m.remaps, 1, "the refused remap was not half-applied");
        assert!(m.spare_exhausted >= 1);
        assert_eq!(sys.bad_block_remaps(), 1);
        assert!(sys.spares_exhausted());
        let err = sys.take_media_error().expect("spare-exhausted error surfaced");
        assert!(matches!(err, Error::SpareExhausted { .. }), "got {err:?}");
        // Every later read of the unhealed block keeps paying retries —
        // degraded, but correct.
        let retries_before = sys.stats().media.retries;
        sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, t);
        assert_eq!(buf, [0xAB; 64]);
        assert!(sys.stats().media.retries > retries_before);
    }

    #[test]
    fn out_of_range_accesses_are_rejected_not_wrapped() {
        let mut sys = ThyNvm::new(SystemConfig::small_test());
        let mut t = Cycle::ZERO;
        // In range: behaves exactly like the unchecked API.
        t = sys
            .try_store_bytes(PhysAddr::new(0), &[5u8; 64], t)
            .expect("invariant: address 0 is in range");
        let mut buf = [0u8; 64];
        sys.try_load_bytes(PhysAddr::new(0), &mut buf, t)
            .expect("invariant: address 0 is in range");
        assert_eq!(buf, [5u8; 64]);
        // Out of range: rejected with the offending address and the limit.
        let bad = PhysAddr::new(crate::PHYS_LIMIT);
        let err = sys.try_store_bytes(bad, &[1u8; 64], t).expect_err("must reject");
        assert_eq!(err, Error::AddressOutOfRange { addr: bad, limit: crate::PHYS_LIMIT });
        let err = sys.try_load_bytes(bad, &mut buf, t).expect_err("must reject");
        assert!(matches!(err, Error::AddressOutOfRange { .. }));
        // A span that *ends* out of range is rejected too.
        let edge = PhysAddr::new(crate::PHYS_LIMIT - 32);
        assert!(matches!(
            sys.try_store_bytes(edge, &[1u8; 64], t),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn btt_emergency_spill_forces_an_early_checkpoint_and_drains() {
        // Tiny BTT; fill it while a checkpoint is in flight so inserts must
        // spill, then verify the overflow handshake ends the epoch and the
        // spilled entry is drained into the checkpoint.
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.btt_entries = 4;
        cfg.thynvm.promote_threshold = 255; // keep everything under block remapping
        let mut sys = ThyNvm::new(cfg);
        let mut t = Cycle::ZERO;
        for i in 0..4u64 {
            t = sys.store_bytes(PhysAddr::new(i * 64), &[i as u8; 64], t);
        }
        // Start a checkpoint but do NOT wait for it: the job is in flight.
        t = sys.force_checkpoint(t);
        assert!(sys.epoch_state().job_running(t), "checkpoint must be in flight");
        // New blocks while the BTT is full and nothing is reclaimable.
        for i in 4..9u64 {
            t = sys.store_bytes(PhysAddr::new(i * 64), &[i as u8; 64], t);
        }
        assert!(sys.btt_spills() >= 1, "inserts past capacity spilled");
        assert!(sys.epoch_state().overflow_pending, "spill demanded an early epoch end");
        // Spills kept arriving while the first spill's early epoch end was
        // still pending: the table was genuinely full.
        let err = sys.take_overflow_error().expect("invariant: repeated spills recorded");
        assert!(matches!(err, Error::TableFull { table: "BTT" }), "got {err:?}");
        assert!(sys.take_overflow_error().is_none(), "error is taken once");
        // The platform's next event fires the forced early checkpoint.
        assert!(sys.checkpoint_due(t), "overflow makes the checkpoint due immediately");
        let epochs_before = sys.stats().epochs_completed;
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        assert!(sys.stats().epochs_completed > epochs_before, "early checkpoint fired");
        assert!(!sys.epoch_state().overflow_pending, "spill drained");
        // The spilled blocks' contents are durable: crash and verify.
        let report = sys.crash_and_recover(t);
        let mut buf = [0u8; 64];
        for i in 0..9u64 {
            sys.load_bytes(PhysAddr::new(i * 64), &mut buf, t + report.recovery_cycles);
            assert_eq!(buf, [i as u8; 64], "block {i} survived the spill");
        }
    }

    // ------------------------------------------------------------------
    // DRAM fault domain (ECC, poison containment, quarantine)
    // ------------------------------------------------------------------

    fn dram_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.dram_fault = thynvm_types::DramFaultConfig::hardened();
        cfg.validate().expect("valid dram-fault config");
        cfg
    }

    /// Promotes page 0 (22 stores of `val` across its first 22 blocks) and
    /// completes a checkpoint, so the page sits clean under page writeback
    /// with `val` durable. Returns the resume cycle.
    fn promote_and_checkpoint(sys: &mut ThyNvm, val: u8, mut t: Cycle) -> Cycle {
        for i in 0..22u64 {
            t = sys.store_bytes(PhysAddr::new(i * 64), &[val; 64], t);
        }
        assert!(sys.ptt().get(PageIndex::new(0)).is_some(), "page promoted");
        t = sys.force_checkpoint(t);
        sys.drain(t)
    }

    /// Working-region offset of block `i` of page 0's DRAM slot.
    fn page0_block_off(sys: &ThyNvm, i: u64) -> u64 {
        let slot = sys.ptt().get(PageIndex::new(0)).expect("resident").slot;
        u64::from(slot) * PAGE_BYTES + i * BLOCK_BYTES
    }

    #[test]
    fn ecc_model_disabled_keeps_timing_and_contents_identical() {
        // An enabled model with zero fault rates must behave exactly like
        // the disabled one: no extra device traffic, identical bytes.
        let mut plain = small();
        let mut armed = ThyNvm::new(dram_cfg());
        let mut tp = Cycle::ZERO;
        let mut ta = Cycle::ZERO;
        for round in 0u8..3 {
            tp = promote_and_checkpoint(&mut plain, round + 1, tp);
            ta = promote_and_checkpoint(&mut armed, round + 1, ta);
        }
        assert_eq!(tp, ta, "cycle-identical timelines");
        assert_eq!(plain.visible_fingerprint(), armed.visible_fingerprint());
        assert!(!armed.stats().dram.any(), "quiet model left no counters");
    }

    #[test]
    fn quiet_fault_models_are_skipped_and_the_skips_are_counted() {
        // Hardened models with every rate at zero are "quiet": the
        // controller skips their per-read consultation entirely. The perf
        // counters witness the skip so the fast path cannot silently rot.
        let mut cfg = SystemConfig::small_test();
        cfg.media = thynvm_types::MediaFaultConfig::hardened();
        cfg.dram_fault = thynvm_types::DramFaultConfig::hardened();
        cfg.validate().expect("valid config");
        let mut sys = ThyNvm::new(cfg);
        let t = promote_and_checkpoint(&mut sys, 7, Cycle::ZERO);

        // Page-scheme read: lands in the DRAM working region, where the
        // quiet SEC-DED model is skipped.
        let dram_skips = sys.stats().perf.dram_quiet_reads;
        let t = sys.access(&MemRequest::read(PhysAddr::new(0), 64), t);
        assert!(
            sys.stats().perf.dram_quiet_reads > dram_skips,
            "DRAM read must take the quiet fast path"
        );

        // Block-scheme read of an untouched block: served from the NVM home
        // region, where the quiet media model is skipped.
        let nvm_skips = sys.stats().perf.nvm_quiet_reads;
        let _ = sys.access(&MemRequest::read(PhysAddr::new(PAGE_BYTES * 4), 64), t);
        assert!(
            sys.stats().perf.nvm_quiet_reads > nvm_skips,
            "NVM read must take the quiet fast path"
        );
        assert!(!sys.stats().dram.any(), "no DRAM fault counters moved");
    }

    #[test]
    fn corrected_flips_are_counted_and_harmless() {
        let mut sys = ThyNvm::new(dram_cfg());
        let t = promote_and_checkpoint(&mut sys, 5, Cycle::ZERO);
        sys.dram_ecc_mut().expect("model on").arm_corrected_flips(1);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [5u8; 64], "corrected data is good data");
        assert_eq!(sys.stats().dram.corrected_flips, 1);
        assert_eq!(sys.stats().dram.poisoned_blocks, 0);
        assert!(sys.take_poison_error().is_none());
    }

    #[test]
    fn poisoned_clean_block_refetches_from_nvm() {
        let mut sys = ThyNvm::new(dram_cfg());
        let t = promote_and_checkpoint(&mut sys, 5, Cycle::ZERO);
        sys.dram_ecc_mut().expect("model on").arm_poison(1);
        let mut buf = [0u8; 64];
        let done = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [5u8; 64], "clean data healed transparently");
        let d = &sys.stats().dram;
        assert_eq!(d.poisoned_blocks, 1);
        assert_eq!(d.poison_refetched, 1);
        assert_eq!(d.refetch_retries, 2, "paid the configured retry budget");
        assert_eq!(d.quarantined_pages, 0, "no data was lost");
        assert_eq!(sys.dram_ecc().expect("model on").outstanding(), 0);
        assert!(sys.ptt().get(PageIndex::new(0)).is_some(), "page stays resident");
        assert!(done > t, "healing costs cycles");
        assert!(sys.take_poison_error().is_none(), "nothing was lost");
    }

    #[test]
    fn poisoned_dirty_page_is_quarantined_at_checkpoint() {
        let mut sys = ThyNvm::new(dram_cfg());
        let mut t = promote_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        // Dirty the page, then poison a block under the dirty data.
        t = sys.store_bytes(PhysAddr::new(0), &[9u8; 64], t);
        let off = page0_block_off(&sys, 0);
        sys.dram_ecc_mut().expect("model on").poison_block(off);
        // The checkpoint must refuse to persist the poisoned page.
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        assert!(sys.ptt().get(PageIndex::new(0)).is_none(), "page left the page scheme");
        let d = &sys.stats().dram;
        assert_eq!(d.quarantined_pages, 1);
        assert_eq!(d.poison_dropped, 1);
        assert_eq!(d.quarantine_dropped_bytes, PAGE_BYTES);
        let err = sys.take_poison_error().expect("loss surfaced");
        assert!(
            matches!(err, Error::DramPoisonLost { bytes: PAGE_BYTES, .. }),
            "got {err:?}"
        );
        assert_eq!(sys.take_quarantine_events(), vec![(0, PAGE_BYTES)]);
        assert!(sys.take_quarantine_events().is_empty(), "events drain once");
        // The dirty write is gone; the checkpointed bytes survive.
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [1u8; 64], "rolled back to C_last");
        // And the rollback is durable: crash and re-verify.
        let report = sys.crash_and_recover(t);
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64], "recovered image is poison-free");
    }

    #[test]
    fn poison_under_dirty_read_quarantines_immediately() {
        let mut sys = ThyNvm::new(dram_cfg());
        let mut t = promote_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        t = sys.store_bytes(PhysAddr::new(0), &[9u8; 64], t);
        sys.dram_ecc_mut().expect("model on").arm_poison(1);
        // The load itself discovers the poison; the delivered bytes must be
        // the rolled-back ones, not the stale pre-quarantine snapshot.
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [1u8; 64], "load observes the rollback");
        assert_eq!(sys.stats().dram.quarantined_pages, 1);
        assert!(sys.ptt().get(PageIndex::new(0)).is_none());
        assert!(matches!(
            sys.take_poison_error(),
            Some(Error::DramPoisonLost { .. })
        ));
    }

    #[test]
    fn full_block_overwrite_clears_poison_in_place() {
        let mut sys = ThyNvm::new(dram_cfg());
        let mut t = promote_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let off = page0_block_off(&sys, 0);
        sys.dram_ecc_mut().expect("model on").poison_block(off);
        // A whole-block store re-encodes the ECC word: nothing is lost.
        t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], t);
        assert_eq!(sys.stats().dram.poison_overwritten, 1);
        assert_eq!(sys.dram_ecc().expect("model on").outstanding(), 0);
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [7u8; 64], "overwrite persisted normally");
        assert_eq!(sys.stats().dram.quarantined_pages, 0);
    }

    #[test]
    fn crash_clears_outstanding_poison() {
        let mut sys = ThyNvm::new(dram_cfg());
        let t = promote_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let off = page0_block_off(&sys, 0);
        sys.dram_ecc_mut().expect("model on").poison_block(off);
        let report = sys.crash_and_recover(t);
        assert_eq!(sys.stats().dram.poison_cleared_by_crash, 1);
        assert_eq!(sys.dram_ecc().expect("model on").outstanding(), 0);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64], "DRAM poison never taints recovery");
    }

    #[test]
    fn poisoned_buffered_block_is_quarantined_not_drained() {
        // Block under block remapping, buffered in DRAM during an in-flight
        // checkpoint (§4.1), with poison landing on the buffer slot.
        let mut cfg = dram_cfg();
        cfg.thynvm.promote_threshold = 255; // stay under block remapping
        let mut sys = ThyNvm::new(cfg);
        let mut t = sys.store_bytes(PhysAddr::new(0), &[1u8; 64], Cycle::ZERO);
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        // Start a checkpoint and write the block mid-flight: DRAM-buffered.
        t = sys.store_bytes(PhysAddr::new(64), &[2u8; 64], t);
        t = sys.force_checkpoint(t);
        let during = sys.epoch_state().job.as_ref().map(|j| j.started).unwrap_or(t);
        let mut t2 = sys.store_bytes(PhysAddr::new(0), &[9u8; 64], during);
        // Reading it back now poisons the buffer slot: the dirty block is
        // dropped and rolls back to its checkpointed value.
        sys.dram_ecc_mut().expect("model on").arm_poison(1);
        let mut buf = [0u8; 64];
        t2 = sys.load_bytes(PhysAddr::new(0), &mut buf, t2);
        assert_eq!(buf, [1u8; 64], "buffered dirty block rolled back");
        let d = &sys.stats().dram;
        assert_eq!(d.poison_dropped, 1);
        assert_eq!(d.quarantine_dropped_bytes, BLOCK_BYTES);
        assert!(matches!(
            sys.take_poison_error(),
            Some(Error::DramPoisonLost { bytes: BLOCK_BYTES, .. })
        ));
        assert_eq!(sys.take_quarantine_events(), vec![(0, BLOCK_BYTES)]);
        // The rollback is durable across the checkpoint and a crash.
        t2 = sys.drain(t2);
        let report = sys.crash_and_recover(t2);
        sys.load_bytes(PhysAddr::new(0), &mut buf, t2 + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn quarantined_page_repromotes_when_hot_again() {
        // Satellite: a quarantine-demoted page that turns write-dense again
        // re-enters page writeback via the §3.3 counters, and the visible
        // fingerprint is stable across the demote/re-promote round trip.
        let mut sys = ThyNvm::new(dram_cfg());
        let mut t = promote_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        t = sys.store_bytes(PhysAddr::new(0), &[9u8; 64], t);
        let off = page0_block_off(&sys, 0);
        sys.dram_ecc_mut().expect("model on").poison_block(off);
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        assert!(sys.ptt().get(PageIndex::new(0)).is_none(), "quarantine demoted");
        let fp = sys.visible_fingerprint();
        // Write-dense again, storing the bytes the page already holds so the
        // visible image is untouched by the re-promotion mechanics.
        for i in 0..22u64 {
            t = sys.store_bytes(PhysAddr::new(i * 64), &[1u8; 64], t);
        }
        assert!(
            sys.ptt().get(PageIndex::new(0)).is_some(),
            "hot page re-promoted after quarantine"
        );
        assert_eq!(sys.visible_fingerprint(), fp, "round trip preserved contents");
        // And the re-promoted page checkpoints normally.
        t = sys.force_checkpoint(t);
        t = sys.drain(t);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(buf, [1u8; 64]);
        assert_eq!(sys.stats().dram.quarantined_pages, 1, "no second quarantine");
    }

    // ---- secure persistent memory mode ----

    /// `small_test` with the security model enabled (and optional tweaks).
    fn secure_cfg(f: impl FnOnce(&mut thynvm_types::SecurityConfig)) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.security = thynvm_types::SecurityConfig::hardened();
        f(&mut cfg.security);
        cfg.validate().expect("valid secure config");
        cfg
    }

    /// Asserts the SecurityStats conservation invariants (§ DESIGN 10).
    fn assert_security_conservation(sys: &ThyNvm) {
        let s = sys.stats().security;
        assert_eq!(s.classified_total(), s.tampers_detected, "classification conservation");
        assert_eq!(s.detections_accounted(), s.tampers_detected, "resolution conservation");
        // Media-caught detections come from media faults, not tampers, so
        // they sit on the "injected" side of the inequality.
        assert!(
            s.tampers_injected + s.classified_media >= s.tampers_detected,
            "cannot detect more than was injected"
        );
    }

    #[test]
    fn security_off_charges_nothing_and_exposes_no_model() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let report = sys.crash_and_recover(t);
        assert!(!report.unrecoverable);
        assert!(sys.security_model().is_none());
        assert!(!sys.stats().security.any(), "disabled mode records nothing");
        assert_eq!(sys.stats().security.crypto_cycles, Cycle::ZERO);
        assert!(sys.take_security_error().is_none());
    }

    #[test]
    fn secure_mode_preserves_contents_and_adds_crypto_cost() {
        // The same workload on the secure and baseline configs must agree
        // on *contents*; the secure run pays extra modeled cycles.
        let mut base = small();
        let mut sec = ThyNvm::new(secure_cfg(|_| {}));
        let tb = store_and_checkpoint(&mut base, 7, Cycle::ZERO);
        let ts = store_and_checkpoint(&mut sec, 7, Cycle::ZERO);
        assert_eq!(base.visible_fingerprint(), sec.visible_fingerprint());
        assert!(ts >= tb, "crypto + metadata persists never make a checkpoint faster");
        let s = sec.stats().security;
        assert!(s.blocks_encrypted > 0, "write path encrypted blocks");
        assert!(s.crypto_cycles > Cycle::ZERO);
        assert!(!base.stats().security.any());
    }

    #[test]
    fn checkpoint_persists_counters_tree_and_root() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let s = sys.stats().security;
        assert_eq!(s.counter_persists, 1, "dirty counters persisted once");
        assert!(s.counter_bytes > 0);
        assert!(s.tree_node_persists > 0, "ancestor tree nodes rewritten");
        assert!(s.tree_bytes > 0);
        assert_eq!(s.root_persists, 1, "root sealed with the commit record");
        let model = sys.security_model().expect("enabled");
        assert_eq!(model.dirty_count(), 0, "persist cleared the dirty set");
        assert_eq!(model.generation(), 1);
        // A quiet checkpoint still seals the root but persists no counters.
        let t2 = sys.force_checkpoint(t);
        sys.drain(t2);
        let s = sys.stats().security;
        assert_eq!(s.counter_persists, 1, "nothing dirty: no counter persist");
        assert_eq!(s.root_persists, 2, "root still sealed every round");
    }

    #[test]
    fn mid_epoch_crash_replays_lost_counters() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        // Dirty counters that never reached an epoch boundary…
        let t = sys.store_bytes(PhysAddr::new(128), &[2u8; 64], t);
        assert!(sys.security_model().expect("enabled").dirty_count() > 0);
        let report = sys.crash_and_recover(t);
        // …are re-derived by bounded replay, never guessed.
        assert!(sys.stats().security.counters_replayed > 0);
        assert_eq!(sys.security_model().expect("enabled").dirty_count(), 0);
        assert!(!report.integrity_fallback, "counter replay is not a fallback");
        assert_security_conservation(&sys);
    }

    #[test]
    fn tampered_clast_is_detected_and_falls_back_to_cpenult() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::ClastData { addr: 0 });
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback, "MAC mismatch degrades to C_penult");
        assert!(!report.unrecoverable);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64], "recovered to the authenticated image");
        let s = sys.stats().security;
        assert_eq!(s.tampers_injected, 1);
        assert_eq!(s.tampers_detected, 1);
        assert_eq!(s.classified_tamper, 1, "forged data is adversarial");
        assert_eq!(s.verify_fallbacks, 1);
        assert_eq!(s.unrecoverable, 0);
        assert!(report.steps.iter().any(|(st, _)| *st == RecoveryStep::VerifyMacs));
        assert_security_conservation(&sys);
    }

    #[test]
    fn stale_counter_table_is_classified_as_replay_attack() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::StaleCounterTable);
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        let s = sys.stats().security;
        assert_eq!(s.classified_tamper, 1, "rolled-back counters = replay attack");
        assert_eq!(s.classified_torn, 0);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
        assert_security_conservation(&sys);
    }

    #[test]
    fn torn_root_metadata_is_classified_as_torn_not_tamper() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::TornRootMeta);
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        let s = sys.stats().security;
        assert_eq!(s.classified_torn, 1, "power loss mid-persist, not an attack");
        assert_eq!(s.classified_tamper, 0);
        assert_security_conservation(&sys);
    }

    #[test]
    fn both_images_tampered_is_unrecoverable_never_replayed() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::BothImages { addr: 0 });
        let report = sys.crash_and_recover(t);
        assert!(report.unrecoverable, "no authenticated image exists");
        assert!(matches!(
            sys.take_security_error(),
            Some(Error::IntegrityUnrecoverable { .. })
        ));
        let s = sys.stats().security;
        assert_eq!(s.unrecoverable, 1);
        assert_eq!(s.verify_fallbacks, 0);
        // Unauthenticated data is never replayed: the image is provably empty.
        let mut buf = [0xFFu8; 64];
        let t = sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [0u8; 64], "reset to the empty image");
        assert_security_conservation(&sys);
        // The system keeps working after the reset.
        let t = store_and_checkpoint(&mut sys, 9, t);
        let report = sys.crash_and_recover(t);
        assert!(!report.unrecoverable);
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [9u8; 64]);
    }

    #[test]
    fn crc_fallback_to_zero_checkpoints_still_authenticates_the_image() {
        // A torn commit record with exactly one completed checkpoint makes
        // the CRC step fall back to `C_penult` and land on zero completed
        // checkpoints. The fallback image is still cloned from persisted
        // bytes an attacker can forge, so MAC verification must run anyway
        // — skipping it would replay the forged penult unauthenticated.
        let mut cfg = SystemConfig::small_test();
        cfg.media = thynvm_types::MediaFaultConfig::hardened();
        cfg.security = thynvm_types::SecurityConfig::hardened();
        cfg.validate().expect("valid secure+media config");
        let mut sys = ThyNvm::new(cfg);
        let t = store_and_checkpoint(&mut sys, 7, Cycle::ZERO);
        sys.inject_media_fault(MediaFault::TornCommitRecord);
        sys.inject_tamper(TamperFault::BothImages { addr: 0 });
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback, "CRC step rejects the torn record");
        assert!(report.unrecoverable, "the forged fallback image fails its MAC");
        assert_eq!(sys.stats().media.integrity_fallbacks, 1);
        assert_eq!(sys.stats().security.unrecoverable, 1);
        let mut buf = [0xFFu8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [0u8; 64], "forged bytes never reach software");
        assert_security_conservation(&sys);
    }

    #[test]
    fn tamper_stays_armed_until_a_checkpoint_exists() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        sys.inject_tamper(TamperFault::ClastData { addr: 0 });
        // Nothing persisted yet: there is no image to forge.
        let report = sys.crash_and_recover(Cycle::new(100));
        assert!(!report.integrity_fallback);
        assert_eq!(sys.armed_tamper(), Some(TamperFault::ClastData { addr: 0 }));
        assert_eq!(sys.stats().security.tampers_injected, 0);
        // The first checkpoint gives the adversary a target.
        let t = store_and_checkpoint(&mut sys, 3, Cycle::new(200));
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback);
        assert_eq!(sys.armed_tamper(), None);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [0u8; 64], "fell back to the initial zero image");
        assert_security_conservation(&sys);
    }

    #[test]
    fn tamper_on_disabled_model_is_ignored() {
        let mut sys = small();
        sys.inject_tamper(TamperFault::ClastData { addr: 0 });
        assert_eq!(sys.armed_tamper(), None, "no model, nothing to arm");
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let report = sys.crash_and_recover(t);
        assert!(!report.integrity_fallback);
        assert!(!sys.stats().security.any());
    }

    #[test]
    fn mac_catches_media_corruption_when_crc_is_off() {
        // CRC layer disabled: the armed media fault would be silent, but
        // secure mode's MAC catches it and classifies it as media.
        let mut cfg = secure_cfg(|_| {});
        cfg.media = thynvm_types::MediaFaultConfig::hardened();
        cfg.media.integrity = false;
        cfg.media.scrub = false; // the scrubber needs CRCs
        cfg.validate().expect("valid");
        let mut sys = ThyNvm::new(cfg);
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_media_fault(MediaFault::TornCommitRecord);
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback, "MAC stood in for the missing CRC");
        let s = sys.stats().security;
        assert_eq!(s.classified_media, 1);
        assert_eq!(s.classified_tamper, 0);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
        assert_security_conservation(&sys);
    }

    #[test]
    fn nested_crash_during_tamper_recovery_converges() {
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::ClastData { addr: 0 });
        sys.arm_crash_point(t);
        // Interrupt the first recovery attempt one cycle in: the attempt
        // restarts and must converge on the same verdict without double
        // counting the detection.
        sys.queue_crash_point(t + Cycle::new(1));
        let resume = sys.poll_crash(t + Cycle::new(2)).expect("crash fires");
        let crash = sys.take_crash_report().expect("reported");
        assert!(crash.report.nested_crashes >= 1);
        assert!(crash.report.integrity_fallback);
        let s = sys.stats().security;
        assert_eq!(s.tampers_detected, 1, "detection counted exactly once");
        assert_eq!(s.verify_fallbacks, 1);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, resume);
        assert_eq!(buf, [1u8; 64]);
        assert_security_conservation(&sys);
    }

    #[test]
    fn random_tamper_schedule_is_deterministic_and_recoverable() {
        let run = |seed: u64| {
            let mut sys = ThyNvm::new(secure_cfg(|s| {
                s.tamper_rate = 1.0;
                s.seed = seed;
            }));
            let mut t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
            for v in 2..6u8 {
                t = store_and_checkpoint(&mut sys, v, t);
                let report = sys.crash_and_recover(t);
                assert!(!report.unrecoverable, "random schedule never draws BothImages");
                t += report.recovery_cycles;
            }
            assert_security_conservation(&sys);
            (sys.stats().security, sys.visible_fingerprint())
        };
        let (s, fp) = run(0xDEAD_BEEF);
        assert!(s.tampers_injected >= 4, "rate 1.0 tampers every eligible crash");
        assert_eq!(s.tampers_detected, s.tampers_injected, "zero silent tampers");
        let (s2, fp2) = run(0xDEAD_BEEF);
        assert_eq!(s, s2, "same seed, same schedule, same stats");
        assert_eq!(fp, fp2);
    }

    #[test]
    fn sanctioned_rollback_does_not_trip_the_mac() {
        // rollback_to_checkpoint re-authenticates the archived image so a
        // later crash does not misread the rollback as tampering.
        let mut sys = ThyNvm::new(secure_cfg(|_| {}));
        sys.set_archive_depth(4);
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        let archived = sys.archived_checkpoints();
        let _ = sys.rollback_to_checkpoint(archived[0], t).expect("archived epoch");
        let report = sys.crash_and_recover(t);
        assert!(!report.integrity_fallback, "rollback is not a MAC mismatch");
        assert_eq!(sys.stats().security.tampers_detected, 0);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [1u8; 64]);
    }

    // ------------------------------------------------------------------
    // Graceful-degradation health ladder
    // ------------------------------------------------------------------

    /// `small_test` with the health ladder enabled (and optional tweaks to
    /// the whole config, so tests can co-enable fault domains).
    fn health_cfg(f: impl FnOnce(&mut SystemConfig)) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.health = thynvm_types::HealthConfig::hardened();
        f(&mut cfg);
        cfg.validate().expect("valid health config");
        cfg
    }

    /// Asserts the HealthStats / RetryStats conservation invariants.
    fn assert_health_conservation(sys: &ThyNvm) {
        let s = sys.stats();
        assert!(s.health.promotions <= s.health.demotions, "ladder ledger");
        assert_eq!(
            s.retry.media_attempts + s.retry.recovery_attempts,
            s.media.retries,
            "every media retry is a policy-issued attempt"
        );
        assert_eq!(s.retry.dram_attempts, s.dram.refetch_retries, "DRAM retry conservation");
    }

    #[test]
    fn health_off_exposes_no_monitor_and_records_nothing() {
        let mut sys = small();
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let report = sys.crash_and_recover(t);
        assert!(!report.unrecoverable);
        assert!(sys.health_monitor().is_none());
        assert_eq!(sys.health_rung(), HealthRung::Healthy);
        assert_eq!(sys.stats().health, thynvm_types::HealthStats::default());
        assert!(sys.take_health_error().is_none());
    }

    #[test]
    fn quiet_health_run_is_content_identical_and_persists_healthy() {
        let mut base = small();
        let mut sys = ThyNvm::new(health_cfg(|_| {}));
        let tb = store_and_checkpoint(&mut base, 7, Cycle::ZERO);
        let th = store_and_checkpoint(&mut sys, 7, Cycle::ZERO);
        assert_eq!(base.visible_fingerprint(), sys.visible_fingerprint());
        assert!(th >= tb, "the 64 B rung persist never speeds a checkpoint up");
        let h = sys.stats().health;
        assert_eq!(h.rung_persists, 1, "rung persisted with the commit record");
        assert_eq!(h.evaluations, 1, "one evaluation per retired epoch");
        assert_eq!(h.demotions, 0);
        assert_eq!(sys.clast_health_rung(), HealthRung::Healthy);
        assert_health_conservation(&sys);
    }

    #[test]
    fn retry_storm_wounds_the_ladder_and_arms_emergency_checkpoints() {
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.media = thynvm_types::MediaFaultConfig::hardened();
            c.media.stuck_at_threshold = 2;
            c.media.scrub = false;
            c.health.wounded_retry_rate = 1;
        }));
        // Wear out a row, then read through it: three bounded CRC retries.
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], Cycle::ZERO);
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], t);
        let mut buf = [0u8; 64];
        let t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        assert_eq!(sys.stats().media.retries, 3);
        // The retirement-time evaluation sees the retry burst and wounds.
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        assert_eq!(sys.health_rung(), HealthRung::Wounded);
        assert_eq!(sys.stats().health.demotions, 1);
        // Wounded shortens the epoch deadline by `emergency_divisor`: with
        // a 1 ms epoch and divisor 4, dirty data makes a checkpoint due at
        // a quarter of the regular deadline.
        let t = sys.store_bytes(PhysAddr::new(4096), &[1u8; 64], t);
        let early = t + Cycle::from_ns(300_000);
        assert!(sys.checkpoint_due(early), "emergency deadline fires early");
        let _ = sys.begin_checkpoint(early, &[]);
        assert_eq!(sys.stats().health.emergency_checkpoints, 1);
        assert_health_conservation(&sys);
    }

    #[test]
    fn rung_persists_with_commit_record_and_rehydrates_after_crash() {
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.media = thynvm_types::MediaFaultConfig::hardened();
            c.media.stuck_at_threshold = 2;
            c.media.scrub = false;
            c.health.wounded_retry_rate = 1;
        }));
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], Cycle::ZERO);
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], t);
        let mut buf = [0u8; 64];
        let t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        assert_eq!(sys.health_rung(), HealthRung::Wounded);
        // The wound postdates the first commit record: `C_last` still
        // carries Healthy, so a crash here rehydrates Healthy.
        assert_eq!(sys.clast_health_rung(), HealthRung::Healthy);
        // The *next* checkpoint persists the Wounded rung…
        let t = sys.store_bytes(PhysAddr::new(4096), &[2u8; 64], t);
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        assert_eq!(sys.clast_health_rung(), HealthRung::Wounded);
        // …and recovery rehydrates it from durable state.
        let report = sys.crash_and_recover(t);
        assert!(!report.unrecoverable);
        assert_eq!(sys.health_rung(), HealthRung::Wounded);
        assert_eq!(sys.stats().health.rehydrations, 1);
        assert_health_conservation(&sys);
    }

    #[test]
    fn spare_exhaustion_escalates_to_readonly_with_bounded_read_latency() {
        // Satellite: MediaStats::spare_exhausted feeds the ladder, and a
        // drained spare pool keeps per-read latency inside the
        // RetryPolicy bound.
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.media = thynvm_types::MediaFaultConfig::hardened();
            c.media.stuck_at_threshold = 2;
            c.media.scrub = false;
            c.media.spare_blocks = 1;
        }));
        let mut t = Cycle::ZERO;
        for addr in [0u64, 16 * PAGE_BYTES] {
            t = sys.store_bytes(PhysAddr::new(addr), &[0xAB; 64], t);
            t = sys.store_bytes(PhysAddr::new(addr), &[0xAB; 64], t);
        }
        // A healthy block for the latency baseline.
        t = sys.store_bytes(PhysAddr::new(4096), &[3u8; 64], t);
        let mut buf = [0u8; 64];
        t = sys.load_bytes(PhysAddr::new(0), &mut buf, t); // consumes the spare
        t = sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, t); // refused remap
        assert!(sys.stats().media.spare_exhausted >= 1);
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        // The refused remap is an exhaustion *event*: straight to ReadOnly.
        assert_eq!(sys.health_rung(), HealthRung::ReadOnly);
        // New stores are rejected — silently on the raw path, with
        // `Error::Degraded` on the fallible one — and nothing mutates.
        let before = sys.visible_fingerprint();
        let t2 = sys.store_bytes(PhysAddr::new(8192), &[9u8; 64], t);
        assert_eq!(sys.visible_fingerprint(), before, "rejected store must not mutate");
        let err = sys.try_store_bytes(PhysAddr::new(8192), &[9u8; 64], t2).unwrap_err();
        assert!(matches!(err, Error::Degraded { rung: HealthRung::ReadOnly }), "got {err:?}");
        assert!(sys.stats().health.stores_rejected >= 2);
        // Loads still serve CRC-verified data, inside the retry bound.
        let clean_start = t2;
        let clean_end = sys.load_bytes(PhysAddr::new(4096), &mut buf, clean_start);
        assert_eq!(buf, [3u8; 64]);
        let clean_dt = clean_end.raw() - clean_start.raw();
        let bad_end = sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, clean_end);
        assert_eq!(buf, [0xAB; 64], "degraded reads still serve correct data");
        let bad_dt = bad_end.raw() - clean_end.raw();
        let policy = sys.media_retry_policy();
        assert!(
            bad_dt <= clean_dt * u64::from(policy.max_attempts() + 1) + policy.total_backoff().raw(),
            "per-read latency exceeds the RetryPolicy bound: {bad_dt} vs clean {clean_dt}"
        );
        assert_health_conservation(&sys);
    }

    #[test]
    fn scrubber_with_nothing_left_to_heal_defers_without_spinning() {
        // Satellite: the scrub "nothing left to heal" branch — spares gone,
        // the scrubber stops repairing, reads keep retrying.
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.media = thynvm_types::MediaFaultConfig::hardened();
            c.media.stuck_at_threshold = 2;
            c.media.spare_blocks = 1;
            c.health.readonly_scrub_backlog = 1;
        }));
        let mut t = Cycle::ZERO;
        for addr in [0u64, 16 * PAGE_BYTES] {
            t = sys.store_bytes(PhysAddr::new(addr), &[0xCD; 64], t);
            t = sys.store_bytes(PhysAddr::new(addr), &[0xCD; 64], t);
        }
        assert_eq!(sys.stats().media.stuck_faults, 2);
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        // The scrubber healed one block, then hit the empty pool.
        assert_eq!(sys.stats().media.scrub_repairs, 1);
        assert!(sys.spares_exhausted());
        // Exhausted pool + standing backlog pins the ladder at ReadOnly.
        let t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        assert_eq!(sys.stats().media.scrub_repairs, 1, "nothing left to heal: no new repairs");
        assert_eq!(sys.health_rung(), HealthRung::ReadOnly);
        // The unhealed block is still served, by retrying every read.
        let retries_before = sys.stats().media.retries;
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, t);
        assert_eq!(buf, [0xCD; 64]);
        assert!(sys.stats().media.retries > retries_before, "unremappable reads keep retrying");
        assert_health_conservation(&sys);
    }

    #[test]
    fn wal_redos_during_recovery_escalate_to_readonly() {
        // Satellite: WAL-redo accounting feeds the ladder. A nested crash
        // tears the fallback's WAL seal; the redo crosses the (lowered)
        // threshold and recovery lands at ReadOnly.
        let probe_cfg = || {
            health_cfg(|c| {
                c.media = thynvm_types::MediaFaultConfig::hardened();
                c.health.readonly_wal_redos = 1;
            })
        };
        let mut probe = ThyNvm::new(probe_cfg());
        let mut trial = ThyNvm::new(probe_cfg());
        let tp = store_and_checkpoint(&mut probe, 1, Cycle::ZERO);
        let tp = store_and_checkpoint(&mut probe, 2, tp);
        let tt = store_and_checkpoint(&mut trial, 1, Cycle::ZERO);
        let tt = store_and_checkpoint(&mut trial, 2, tt);
        probe.inject_media_fault(MediaFault::TornCommitRecord);
        probe.arm_crash_point(tp);
        probe.poll_crash(tp + Cycle::new(1)).expect("probe crash");
        let probe_report = probe.take_crash_report().expect("probe").report;
        assert_eq!(probe.stats().media.wal_redos, 0, "clean fallback needs no redo");
        assert_eq!(probe.health_rung(), HealthRung::Healthy, "no redo, no escalation");
        let fallback_end = probe_report
            .steps
            .iter()
            .find(|&&(s, _)| s == RecoveryStep::IntegrityFallback)
            .map(|&(_, end)| end)
            .expect("probe recovery ran the fallback step");
        trial.inject_media_fault(MediaFault::TornCommitRecord);
        trial.arm_crash_point(tt);
        trial.queue_crash_point(fallback_end.saturating_sub(Cycle::new(1)));
        trial.poll_crash(tt + Cycle::new(1)).expect("trial crash");
        assert!(trial.stats().media.wal_redos >= 1);
        assert_eq!(trial.health_rung(), HealthRung::ReadOnly);
        assert!(trial.stats().health.rehydrations >= 1);
        assert_health_conservation(&trial);
    }

    #[test]
    fn tamper_detection_rehydrates_to_failsafe_and_sticks() {
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.security = thynvm_types::SecurityConfig::hardened();
        }));
        let t = store_and_checkpoint(&mut sys, 1, Cycle::ZERO);
        let t = store_and_checkpoint(&mut sys, 2, t);
        sys.inject_tamper(TamperFault::ClastData { addr: 0 });
        let report = sys.crash_and_recover(t);
        assert!(report.integrity_fallback, "tamper detected, image fell back");
        assert_eq!(sys.stats().security.tampers_detected, 1);
        // Detected tampering overrides the persisted rung: FailSafe.
        assert_eq!(sys.health_rung(), HealthRung::FailSafe);
        // FailSafe refuses new stores…
        let err = sys
            .try_store_bytes(PhysAddr::new(4096), &[9u8; 64], t + report.recovery_cycles)
            .unwrap_err();
        assert!(matches!(err, Error::Degraded { rung: HealthRung::FailSafe }), "got {err:?}");
        // …and never promotes, no matter how many clean epochs follow.
        let mut t = t + report.recovery_cycles;
        for _ in 0..8 {
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        assert_eq!(sys.health_rung(), HealthRung::FailSafe);
        assert_health_conservation(&sys);
    }

    #[test]
    fn readonly_completes_the_inflight_checkpoint() {
        // A rung demotion mid-flight must not abort the checkpoint that is
        // already persisting: the job retires and its image is durable.
        let mut sys = ThyNvm::new(health_cfg(|c| {
            c.media = thynvm_types::MediaFaultConfig::hardened();
            c.media.stuck_at_threshold = 2;
            c.media.scrub = false;
            c.media.spare_blocks = 1;
        }));
        let mut t = Cycle::ZERO;
        for addr in [0u64, 16 * PAGE_BYTES] {
            t = sys.store_bytes(PhysAddr::new(addr), &[0xEE; 64], t);
            t = sys.store_bytes(PhysAddr::new(addr), &[0xEE; 64], t);
        }
        let mut buf = [0u8; 64];
        t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
        t = sys.load_bytes(PhysAddr::new(16 * PAGE_BYTES), &mut buf, t);
        let resume = sys.force_checkpoint(t);
        assert!(sys.epoch_state().job_running(resume), "checkpoint in flight");
        let t = sys.drain(resume);
        assert_eq!(sys.health_rung(), HealthRung::ReadOnly);
        assert_eq!(sys.epoch_state().completed, 1, "in-flight checkpoint completed");
        // The committed image survives a crash under the degraded rung.
        let report = sys.crash_and_recover(t);
        assert!(!report.unrecoverable);
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert_eq!(buf, [0xEE; 64]);
        assert_health_conservation(&sys);
    }

    // ---- volatile persist buffer (WPQ fault domain) ----

    fn wpq_cfg(salvage_rate: f64) -> SystemConfig {
        let mut c = SystemConfig::small_test();
        c.wpq = thynvm_types::PersistBufferConfig::armed();
        c.wpq.salvage_rate = salvage_rate;
        c
    }

    fn assert_wpq_conservation(sys: &ThyNvm) {
        let w = &sys.stats().wpq;
        assert_eq!(
            w.enqueued,
            w.drained + w.dropped_at_crash + w.outstanding(),
            "WPQ ledger must conserve: {w:?}"
        );
    }

    #[test]
    fn wpq_off_leaves_no_trace() {
        let mut sys = small();
        let mut t = write64(&mut sys, 0, 0);
        t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        let _ = sys.crash_and_recover(t);
        assert!(!sys.stats().wpq.any(), "disabled buffer must not count anything");
        assert!(sys.persist_buffer().is_none());
        assert!(sys.last_wpq_flush().is_none());
        assert!(sys.take_ordering_error().is_none());
    }

    #[test]
    fn wpq_fences_and_ledger_conserve_through_checkpoints() {
        let mut sys = ThyNvm::new(wpq_cfg(0.5));
        let mut t = Cycle::ZERO;
        for i in 0..8u64 {
            t = sys.store_bytes(PhysAddr::new(i * 64), &[i as u8; 64], t);
        }
        t = sys.force_checkpoint(t);
        let t = sys.drain(t);
        let w = sys.stats().wpq;
        assert!(w.enqueued > 0, "checkpoint traffic must pass through the buffer");
        // One fence before the metadata, one before the commit record.
        assert!(w.fences >= 2, "both §4.4 ordering points must fence: {w:?}");
        assert_wpq_conservation(&sys);
        // Quiescent after the drain: only the commit marker may still be
        // lazily pending (its retire is the job completion cycle).
        assert!(sys.persist_buffer().expect("armed").outstanding_at(t) <= 1);
        assert!(sys.take_ordering_error().is_none(), "fenced rounds audit clean");
    }

    #[test]
    fn unfenced_commit_is_audited_and_surfaced() {
        let mut sys = ThyNvm::new(wpq_cfg(0.5));
        let t = sys.store_bytes(PhysAddr::new(0), &[7u8; 64], Cycle::ZERO);
        sys.skip_next_fence();
        let t = sys.force_checkpoint(t);
        sys.drain(t);
        let err = sys.take_ordering_error().expect("audit must fire with fences skipped");
        assert!(
            matches!(err, Error::UnfencedCommit { pending, .. } if pending > 0),
            "got {err:?}"
        );
        assert!(err.to_string().contains("unfenced"));
        // Taken once: the violation does not linger.
        assert!(sys.take_ordering_error().is_none());
    }

    #[test]
    fn crash_salvage_commits_the_inflight_checkpoint_early() {
        let mut sys = ThyNvm::new(wpq_cfg(1.0));
        let t = sys.store_bytes(PhysAddr::new(0), &[0xAB; 64], Cycle::ZERO);
        let resume = sys.force_checkpoint(t);
        let done = sys.epoch_state().job.as_ref().expect("job in flight").done_at;
        assert!(sys.epoch_state().job_running(resume));
        // Crash inside the commit-record persist window: the marker was
        // issued but had not retired. Salvage rate 1.0 flushes it.
        let report = sys.crash_and_recover(done - Cycle::new(1));
        let flush = sys.last_wpq_flush().expect("armed buffer records the flush");
        assert!(flush.marker_salvaged && flush.commit_salvaged(), "got {flush:?}");
        assert!(!report.rolled_back_incomplete, "checkpoint committed early");
        assert_eq!(sys.epoch_state().completed, 1);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, done + report.recovery_cycles);
        assert_eq!(buf, [0xAB; 64], "early-committed data must be durable");
        assert_wpq_conservation(&sys);
    }

    #[test]
    fn crash_without_salvage_rolls_back_as_before() {
        let mut sys = ThyNvm::new(wpq_cfg(0.0));
        let t = sys.store_bytes(PhysAddr::new(0), &[0xAB; 64], Cycle::ZERO);
        let resume = sys.force_checkpoint(t);
        let done = sys.epoch_state().job.as_ref().expect("job in flight").done_at;
        assert!(sys.epoch_state().job_running(resume));
        let report = sys.crash_and_recover(done - Cycle::new(1));
        let flush = sys.last_wpq_flush().expect("armed buffer records the flush");
        assert!(flush.marker_dropped && !flush.commit_salvaged(), "got {flush:?}");
        assert!(report.rolled_back_incomplete, "no salvage: §4.5 rollback");
        assert_eq!(sys.epoch_state().completed, 0);
        let mut buf = [0u8; 64];
        sys.load_bytes(PhysAddr::new(0), &mut buf, done + report.recovery_cycles);
        assert_eq!(buf, [0u8; 64], "the in-flight epoch's data is lost");
        assert_wpq_conservation(&sys);
    }

    #[test]
    fn crash_before_the_marker_was_issued_never_salvages() {
        // Even at salvage rate 1.0, a crash before the commit record's
        // write was *issued* unwinds the marker: residual energy cannot
        // flush a write that never reached the queue.
        let mut sys = ThyNvm::new(wpq_cfg(1.0));
        let t = sys.store_bytes(PhysAddr::new(0), &[0xCD; 64], Cycle::ZERO);
        let _ = sys.force_checkpoint(t);
        let started = sys.epoch_state().job.as_ref().expect("job in flight").started;
        let report = sys.crash_and_recover(started + Cycle::new(1));
        let flush = sys.last_wpq_flush().expect("armed buffer records the flush");
        assert!(flush.marker_dropped && !flush.commit_salvaged(), "got {flush:?}");
        assert!(report.rolled_back_incomplete);
        assert_wpq_conservation(&sys);
    }
}
