//! The hardware address space of Figure 4.
//!
//! The memory controller sees a hardware address space larger than the
//! software-visible physical space. It contains:
//!
//! * **Home Region** (= **Checkpoint Region B**) — one hardware address per
//!   physical address. Data not subject to checkpointing lives here at its
//!   identity mapping; for checkpointed data this region doubles as one of
//!   the two alternating checkpoint targets, saving capacity and table
//!   entries (§4.1).
//! * **Checkpoint Region A** — the other alternating checkpoint target.
//! * **Working Data Region** — DRAM: pages cached by the page-writeback
//!   scheme, plus block-remapped working copies temporarily buffered in
//!   DRAM while the previous checkpoint is still in flight.
//! * **Backup Region** — NVM space for the checkpointed BTT/PTT, the CPU
//!   state, and the atomic checkpoint-complete flag.
//!
//! Region base offsets are fixed powers of two well above any physical
//! address used by the workloads, so the mapping is trivially invertible
//! and regions can never collide.

use thynvm_types::{BlockIndex, Error, HwAddr, PageIndex, PhysAddr, BLOCK_BYTES, PAGE_BYTES};

/// One of the two alternating NVM checkpoint regions.
///
/// `C_last` and `C_penult` are stored in opposite regions and swap on every
/// completed checkpoint (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Checkpoint Region A (dedicated checkpoint space).
    A,
    /// Checkpoint Region B, which is also the Home Region.
    B,
}

impl Region {
    /// The other region.
    #[must_use]
    pub const fn other(self) -> Region {
        match self {
            Region::A => Region::B,
            Region::B => Region::A,
        }
    }
}

/// Highest physical address (exclusive) the software-visible space can
/// reach: the Home Region maps physical addresses at identity, so anything
/// at or above Checkpoint Region A's base would alias checkpoint storage.
pub const PHYS_LIMIT: u64 = 1 << 40;

/// Base of Checkpoint Region A in the hardware address space.
const REGION_A_BASE: u64 = PHYS_LIMIT;
/// Base of the Working Data Region (DRAM) in the hardware address space.
const WORKING_BASE: u64 = 1 << 41;
/// Base of the BTT/PTT/CPU Backup Region.
const BACKUP_BASE: u64 = 1 << 42;
/// Base of the spare NVM blocks that permanently-bad blocks are remapped to
/// by the self-healing path.
const SPARE_BASE: u64 = 1 << 43;

/// Maps between physical addresses and the hardware address space regions.
///
/// # Example
///
/// ```
/// use thynvm_core::{AddressSpace, Region};
/// use thynvm_types::PhysAddr;
///
/// let space = AddressSpace::new();
/// let p = PhysAddr::new(0x1234);
/// assert_eq!(space.home(p).raw(), 0x1234); // Home Region is identity
/// assert_eq!(space.checkpoint(Region::B, p), space.home(p));
/// assert_ne!(space.checkpoint(Region::A, p), space.home(p));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddressSpace {
    _private: (),
}

impl AddressSpace {
    /// Creates the standard layout.
    pub fn new() -> Self {
        Self { _private: () }
    }

    /// Hardware address of `p` in the Home Region (identity mapping).
    pub fn home(self, p: PhysAddr) -> HwAddr {
        HwAddr::new(p.raw())
    }

    /// Checks that the physical span `[p, p + len)` fits the identity-mapped
    /// Home Region without reaching into Checkpoint Region A.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when the span crosses
    /// [`PHYS_LIMIT`].
    pub fn check_phys(self, p: PhysAddr, len: u64) -> Result<(), Error> {
        if p.raw().saturating_add(len) > PHYS_LIMIT {
            return Err(Error::AddressOutOfRange { addr: p, limit: PHYS_LIMIT });
        }
        Ok(())
    }

    /// Hardware address of `p`'s copy in checkpoint region `r`.
    ///
    /// Region B *is* the Home Region, so `checkpoint(Region::B, p)` equals
    /// [`AddressSpace::home`].
    pub fn checkpoint(self, r: Region, p: PhysAddr) -> HwAddr {
        match r {
            Region::A => HwAddr::new(REGION_A_BASE + p.raw()),
            Region::B => self.home(p),
        }
    }

    /// Hardware address of checkpoint-region copy of a whole page.
    pub fn checkpoint_page(self, r: Region, page: PageIndex) -> HwAddr {
        self.checkpoint(r, page.base_addr())
    }

    /// Hardware address of checkpoint-region copy of a block.
    pub fn checkpoint_block(self, r: Region, block: BlockIndex) -> HwAddr {
        self.checkpoint(r, block.base_addr())
    }

    /// DRAM (Working Data Region) address of page-writeback slot `slot`.
    pub fn working_page(self, slot: u32) -> HwAddr {
        HwAddr::new(WORKING_BASE + u64::from(slot) * PAGE_BYTES)
    }

    /// DRAM address of the temporary block-buffer slot `slot` (working
    /// copies absorbed by block remapping while `C_penult` is unsafe to
    /// overwrite, §4.1).
    ///
    /// Block-buffer slots live above the page slots so the two never alias.
    pub fn working_block(self, slot: u32, page_slots: usize) -> HwAddr {
        HwAddr::new(
            WORKING_BASE + page_slots as u64 * PAGE_BYTES + u64::from(slot) * BLOCK_BYTES,
        )
    }

    /// Within the working region, byte offset of a given address relative
    /// to the region base (used to address the DRAM device).
    pub fn working_offset(self, hw: HwAddr) -> u64 {
        debug_assert!(hw.raw() >= WORKING_BASE && hw.raw() < BACKUP_BASE);
        hw.raw() - WORKING_BASE
    }

    /// Whether a hardware address lies in the Working Data Region (DRAM).
    pub fn is_dram(self, hw: HwAddr) -> bool {
        (WORKING_BASE..BACKUP_BASE).contains(&hw.raw())
    }

    /// Hardware address of byte `offset` of the metadata/CPU-state backup
    /// region.
    pub fn backup(self, offset: u64) -> HwAddr {
        HwAddr::new(BACKUP_BASE + offset)
    }

    /// Hardware address of spare NVM block `slot`, the replacement target
    /// when the bad-block table remaps a permanently-bad block away from a
    /// worn-out location.
    pub fn spare_block(self, slot: u64) -> HwAddr {
        HwAddr::new(SPARE_BASE + slot * BLOCK_BYTES)
    }

    /// Hardware address of write-ahead-log record `seq` in the backup
    /// region.
    ///
    /// Recovery-side NVM mutations (bad-block remaps, integrity fallbacks)
    /// are made restartable by writing an intent record here, applying the
    /// mutation, then CRC-sealing the record: a crash between intent and
    /// seal leaves a torn record that the next recovery detects and redoes.
    /// The log is a small ring of 64 B slots placed above the PTT image so
    /// it never collides with checkpoint metadata.
    pub fn backup_wal(self, seq: u64) -> HwAddr {
        const WAL_OFFSET: u64 = 1 << 20; // 1 MiB into the backup region
        const WAL_SLOTS: u64 = 1 << 10; // ring of 1024 records
        self.backup(WAL_OFFSET + (seq % WAL_SLOTS) * BLOCK_BYTES)
    }

    /// Hardware address of byte `offset` of the persisted encryption
    /// counter table (secure mode). Placed 4 MiB into the backup region,
    /// well clear of the commit record / BTT / PTT images (first 64 KiB)
    /// and the WAL ring (1 MiB).
    pub fn security_counters(self, offset: u64) -> HwAddr {
        const COUNTER_OFFSET: u64 = 4 << 20;
        self.backup(COUNTER_OFFSET + offset)
    }

    /// Hardware address of byte `offset` of the persisted integrity-tree
    /// node storage (secure mode), 6 MiB into the backup region.
    pub fn security_tree(self, offset: u64) -> HwAddr {
        const TREE_OFFSET: u64 = 6 << 20;
        self.backup(TREE_OFFSET + offset)
    }

    /// Hardware address of the 64 B integrity-tree root + MAC record
    /// (secure mode), 8 MiB into the backup region — the atomic tip of the
    /// security metadata, persisted last, just before the checkpoint
    /// commit record.
    pub fn security_root(self) -> HwAddr {
        const ROOT_OFFSET: u64 = 8 << 20;
        self.backup(ROOT_OFFSET)
    }

    /// Hardware address of the 64 B health-ladder rung record, 9 MiB into
    /// the backup region — persisted just before each checkpoint's commit
    /// record, so the rung recovery rehydrates is always the one that was
    /// durable *with* the image it restores.
    pub fn health_record(self) -> HwAddr {
        const HEALTH_OFFSET: u64 = 9 << 20;
        self.backup(HEALTH_OFFSET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_other_is_involutive() {
        assert_eq!(Region::A.other(), Region::B);
        assert_eq!(Region::B.other(), Region::A);
        assert_eq!(Region::A.other().other(), Region::A);
    }

    #[test]
    fn home_is_identity() {
        let s = AddressSpace::new();
        assert_eq!(s.home(PhysAddr::new(0)).raw(), 0);
        assert_eq!(s.home(PhysAddr::new(0xdead_beef)).raw(), 0xdead_beef);
    }

    #[test]
    fn region_b_is_home() {
        let s = AddressSpace::new();
        let p = PhysAddr::new(0x42_0000);
        assert_eq!(s.checkpoint(Region::B, p), s.home(p));
    }

    #[test]
    fn region_a_is_disjoint_from_home() {
        let s = AddressSpace::new();
        let p = PhysAddr::new(0x42_0000);
        assert_ne!(s.checkpoint(Region::A, p), s.home(p));
        assert!(s.checkpoint(Region::A, p).raw() >= REGION_A_BASE);
    }

    #[test]
    fn page_and_block_checkpoint_addresses() {
        let s = AddressSpace::new();
        let page = PageIndex::new(3);
        let block = page.block(2);
        assert_eq!(s.checkpoint_page(Region::A, page).raw(), REGION_A_BASE + 3 * PAGE_BYTES);
        assert_eq!(
            s.checkpoint_block(Region::A, block).raw(),
            REGION_A_BASE + 3 * PAGE_BYTES + 2 * BLOCK_BYTES
        );
    }

    #[test]
    fn working_slots_do_not_alias() {
        let s = AddressSpace::new();
        let page_slots = 4;
        let last_page_end = s.working_page(3).raw() + PAGE_BYTES;
        let first_block = s.working_block(0, page_slots).raw();
        assert_eq!(last_page_end, first_block);
        assert_ne!(s.working_block(0, page_slots), s.working_block(1, page_slots));
    }

    #[test]
    fn dram_detection() {
        let s = AddressSpace::new();
        assert!(s.is_dram(s.working_page(0)));
        assert!(s.is_dram(s.working_block(7, 4096)));
        assert!(!s.is_dram(s.home(PhysAddr::new(0))));
        assert!(!s.is_dram(s.checkpoint(Region::A, PhysAddr::new(0))));
        assert!(!s.is_dram(s.backup(0)));
    }

    #[test]
    fn working_offset_roundtrip() {
        let s = AddressSpace::new();
        assert_eq!(s.working_offset(s.working_page(2)), 2 * PAGE_BYTES);
    }

    #[test]
    fn spare_blocks_are_disjoint_from_all_other_regions() {
        let s = AddressSpace::new();
        let spare = s.spare_block(0);
        assert!(spare.raw() >= SPARE_BASE);
        assert!(spare.raw() > s.backup(0).raw());
        assert!(!s.is_dram(spare));
        assert_eq!(s.spare_block(1).raw() - s.spare_block(0).raw(), BLOCK_BYTES);
    }

    #[test]
    fn wal_records_live_in_backup_clear_of_metadata_images() {
        let s = AddressSpace::new();
        // Above the commit record / BTT / PTT images (first 64 KiB)…
        assert!(s.backup_wal(0).raw() >= s.backup(1 << 16).raw());
        // …below the spare blocks, 64 B apart, and wrapping as a ring.
        assert!(s.backup_wal(0).raw() < s.spare_block(0).raw());
        assert_eq!(s.backup_wal(1).raw() - s.backup_wal(0).raw(), BLOCK_BYTES);
        assert_eq!(s.backup_wal(1 << 10), s.backup_wal(0));
    }

    #[test]
    fn security_metadata_is_disjoint_from_wal_images_and_spares() {
        let s = AddressSpace::new();
        // Above the WAL ring (1 MiB + 64 KiB of slots)…
        assert!(s.security_counters(0).raw() > s.backup_wal(1023).raw());
        // …ordered counters < tree < root with 2 MiB of headroom each…
        assert!(s.security_counters((2 << 20) - 1).raw() < s.security_tree(0).raw());
        assert!(s.security_tree((2 << 20) - 1).raw() < s.security_root().raw());
        // …and below the spare blocks.
        assert!(s.security_root().raw() + BLOCK_BYTES <= s.spare_block(0).raw());
        assert!(!s.is_dram(s.security_root()));
    }

    #[test]
    fn health_record_is_disjoint_from_security_metadata_and_spares() {
        let s = AddressSpace::new();
        // Above the security root record…
        assert!(s.health_record().raw() >= s.security_root().raw() + BLOCK_BYTES);
        // …and below the spare blocks, on NVM.
        assert!(s.health_record().raw() + BLOCK_BYTES <= s.spare_block(0).raw());
        assert!(!s.is_dram(s.health_record()));
    }

    #[test]
    fn phys_bounds_are_enforced() {
        let s = AddressSpace::new();
        assert_eq!(s.check_phys(PhysAddr::new(0), PHYS_LIMIT), Ok(()));
        assert_eq!(s.check_phys(PhysAddr::new(PHYS_LIMIT - 64), 64), Ok(()));
        // One byte over the limit aliases Checkpoint Region A.
        let err = s.check_phys(PhysAddr::new(PHYS_LIMIT - 63), 64);
        assert_eq!(
            err,
            Err(Error::AddressOutOfRange {
                addr: PhysAddr::new(PHYS_LIMIT - 63),
                limit: PHYS_LIMIT
            })
        );
        assert!(matches!(
            s.check_phys(PhysAddr::new(u64::MAX), 64),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn backup_region_is_beyond_working() {
        // Valid page slots stay below 2^29 (2 TiB of DRAM), which keeps the
        // working region strictly under the backup base.
        let s = AddressSpace::new();
        assert!(s.backup(0).raw() > s.working_page((1 << 29) - 1).raw());
    }
}
