//! The epoch state machine of §3.1 (Figure 3).
//!
//! Execution time is divided into epochs. Each epoch has an execution phase
//! and a checkpointing phase; ThyNVM overlaps the checkpointing phase of
//! epoch *N* with the execution phase of epoch *N+1*. At most one
//! checkpoint job is in flight at a time: epoch *N+1* cannot start its own
//! checkpointing phase until epoch *N*'s has completed — when both are due,
//! the processor stalls (the Figure 3(b) corner case).

use thynvm_types::{CkptPhase, Cycle, FxHashSet, PageIndex};

/// An in-flight checkpointing phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptJob {
    /// Epoch being checkpointed.
    pub epoch: u64,
    /// Cycle the checkpointing phase started.
    pub started: Cycle,
    /// Cycle the commit record's write was *issued* (after the final §4.4
    /// fence). The commit window is `[commit_at, done_at)`: a crash before
    /// `commit_at` can never salvage the marker, because the record had not
    /// entered the persist buffer yet.
    pub commit_at: Cycle,
    /// Cycle the checkpoint completes (write queue drained, completion bit
    /// set). Computed when the job is scheduled.
    pub done_at: Cycle,
    /// Cycle phase 1 (DRAM-buffered block drain) completes.
    pub drained_at: Cycle,
    /// Cycle phase 2 (BTT + CPU-state persist) completes.
    pub btt_at: Cycle,
    /// Cycle phase 3 (dirty-page writebacks) completes.
    pub pages_at: Cycle,
    /// Device-commit cycles of every data writeback this job issues
    /// (buffered block drains and page writebacks), for in-flight counts at
    /// an arbitrary crash cycle.
    pub writeback_done: Vec<Cycle>,
    /// Pages whose DRAM copies are frozen while this job writes them back.
    pub frozen_pages: FxHashSet<PageIndex>,
}

impl CkptJob {
    /// Whether the job has completed by `now`.
    pub fn is_done(&self, now: Cycle) -> bool {
        self.done_at <= now
    }

    /// Which Figure 6(b) phase this job is in at `now`.
    ///
    /// Returns [`CkptPhase::Execution`] outside the job's lifetime — before
    /// it started (the job belongs to a future the crashed timeline never
    /// reached) or after it completed.
    pub fn phase_at(&self, now: Cycle) -> CkptPhase {
        if now < self.started || self.is_done(now) {
            CkptPhase::Execution
        } else if now < self.drained_at {
            CkptPhase::DrainBlocks
        } else if now < self.btt_at {
            CkptPhase::PersistBtt
        } else if now < self.pages_at {
            CkptPhase::PageWriteback
        } else {
            CkptPhase::Finalize
        }
    }

    /// Number of this job's data writebacks still in flight at `now`.
    pub fn inflight_writebacks_at(&self, now: Cycle) -> usize {
        self.writeback_done.iter().filter(|&&d| d > now).count()
    }
}

/// Epoch bookkeeping: the active epoch, its start time, and the in-flight
/// checkpoint job, if any.
#[derive(Debug, Clone, Default)]
pub struct EpochState {
    /// Identifier of the active (executing) epoch, starting at 0.
    pub active_epoch: u64,
    /// Cycle at which the active epoch began executing.
    pub epoch_start: Cycle,
    /// The checkpointing phase still in flight, if any.
    pub job: Option<CkptJob>,
    /// Set when a table overflow demands an early epoch end (§4.3).
    pub overflow_pending: bool,
    /// Epochs whose checkpoints have completed.
    pub completed: u64,
}

impl EpochState {
    /// Creates the initial state: epoch 0 executing from cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the active epoch has run for at least `max_len` cycles, or an
    /// overflow forced an early end.
    pub fn due(&self, now: Cycle, max_len: Cycle) -> bool {
        self.overflow_pending || now.saturating_sub(self.epoch_start) >= max_len
    }

    /// Whether a checkpoint job is still running at `now`.
    pub fn job_running(&self, now: Cycle) -> bool {
        self.job.as_ref().is_some_and(|j| !j.is_done(now))
    }

    /// Takes the job if it has completed by `now` (for retirement).
    pub fn take_finished_job(&mut self, now: Cycle) -> Option<CkptJob> {
        if self.job.as_ref().is_some_and(|j| j.is_done(now)) {
            let job = self.job.take();
            if job.is_some() {
                self.completed += 1;
            }
            job
        } else {
            None
        }
    }

    /// Starts the checkpointing phase for the active epoch and begins the
    /// next epoch's execution phase.
    ///
    /// # Panics
    ///
    /// Panics if a job is still in flight — the controller must retire (or
    /// wait for) the previous job first.
    pub fn start_job(&mut self, job: CkptJob, now: Cycle) {
        assert!(self.job.is_none(), "previous checkpoint job still in flight");
        assert_eq!(job.epoch, self.active_epoch, "job must checkpoint the active epoch");
        self.job = Some(job);
        self.active_epoch += 1;
        self.epoch_start = now;
        self.overflow_pending = false;
    }

    /// Whether `page` is frozen by the in-flight job at `now`.
    pub fn page_frozen(&self, page: PageIndex, now: Cycle) -> bool {
        self.job
            .as_ref()
            .is_some_and(|j| !j.is_done(now) && j.frozen_pages.contains(&page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(epoch: u64, started: u64, done: u64) -> CkptJob {
        // Split the job's lifetime into four equal phase windows.
        let span = done - started;
        CkptJob {
            epoch,
            started: Cycle::new(started),
            commit_at: Cycle::new(started + 7 * span / 8),
            done_at: Cycle::new(done),
            drained_at: Cycle::new(started + span / 4),
            btt_at: Cycle::new(started + span / 2),
            pages_at: Cycle::new(started + 3 * span / 4),
            writeback_done: Vec::new(),
            frozen_pages: FxHashSet::default(),
        }
    }

    #[test]
    fn due_after_max_length() {
        let s = EpochState::new();
        assert!(!s.due(Cycle::new(99), Cycle::new(100)));
        assert!(s.due(Cycle::new(100), Cycle::new(100)));
    }

    #[test]
    fn overflow_forces_due() {
        let mut s = EpochState::new();
        s.overflow_pending = true;
        assert!(s.due(Cycle::ZERO, Cycle::new(1_000_000)));
    }

    #[test]
    fn job_lifecycle() {
        let mut s = EpochState::new();
        s.start_job(job(0, 10, 100), Cycle::new(10));
        assert_eq!(s.active_epoch, 1);
        assert_eq!(s.epoch_start, Cycle::new(10));
        assert!(s.job_running(Cycle::new(50)));
        assert!(!s.job_running(Cycle::new(100)));
        assert!(s.take_finished_job(Cycle::new(50)).is_none());
        let j = s.take_finished_job(Cycle::new(100)).expect("job finished");
        assert_eq!(j.epoch, 0);
        assert_eq!(s.completed, 1);
        assert!(s.job.is_none());
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn overlapping_jobs_rejected() {
        let mut s = EpochState::new();
        s.start_job(job(0, 0, 100), Cycle::ZERO);
        s.start_job(job(1, 10, 200), Cycle::new(10));
    }

    #[test]
    #[should_panic(expected = "active epoch")]
    fn job_for_wrong_epoch_rejected() {
        let mut s = EpochState::new();
        s.start_job(job(3, 0, 100), Cycle::ZERO);
    }

    #[test]
    fn frozen_pages_thaw_when_job_completes() {
        let mut s = EpochState::new();
        let mut j = job(0, 0, 100);
        j.frozen_pages.insert(PageIndex::new(5));
        s.start_job(j, Cycle::ZERO);
        assert!(s.page_frozen(PageIndex::new(5), Cycle::new(50)));
        assert!(!s.page_frozen(PageIndex::new(6), Cycle::new(50)));
        assert!(!s.page_frozen(PageIndex::new(5), Cycle::new(100)));
    }

    #[test]
    fn phase_classification_follows_timeline() {
        use thynvm_types::CkptPhase::*;
        let j = job(0, 100, 200); // drained 125, btt 150, pages 175
        assert_eq!(j.phase_at(Cycle::new(99)), Execution);
        assert_eq!(j.phase_at(Cycle::new(100)), DrainBlocks);
        assert_eq!(j.phase_at(Cycle::new(124)), DrainBlocks);
        assert_eq!(j.phase_at(Cycle::new(125)), PersistBtt);
        assert_eq!(j.phase_at(Cycle::new(150)), PageWriteback);
        assert_eq!(j.phase_at(Cycle::new(175)), Finalize);
        assert_eq!(j.phase_at(Cycle::new(199)), Finalize);
        assert_eq!(j.phase_at(Cycle::new(200)), Execution);
    }

    #[test]
    fn inflight_writebacks_count_pending_commits() {
        let mut j = job(0, 0, 100);
        j.writeback_done = vec![Cycle::new(10), Cycle::new(40), Cycle::new(90)];
        assert_eq!(j.inflight_writebacks_at(Cycle::ZERO), 3);
        assert_eq!(j.inflight_writebacks_at(Cycle::new(40)), 1);
        assert_eq!(j.inflight_writebacks_at(Cycle::new(90)), 0);
    }

    #[test]
    fn start_job_clears_overflow() {
        let mut s = EpochState::new();
        s.overflow_pending = true;
        s.start_job(job(0, 0, 10), Cycle::ZERO);
        assert!(!s.overflow_pending);
    }
}
