//! The persistence oracle: a pure model of the paper's three-version
//! crash-consistency rules (§3.2, §4.5).
//!
//! The oracle is a plain byte map plus a list of checkpoint snapshots. A
//! harness feeds it the same writes and checkpoints it feeds the simulated
//! controller; the oracle then predicts, for a crash at *any* cycle, the
//! exact byte image recovery must produce:
//!
//! * writes of the active epoch (`W_active`) are always lost;
//! * the last checkpoint (`C_last`) wins if its commit record persisted —
//!   i.e. the checkpoint *completed* — by the crash cycle;
//! * otherwise recovery falls back to the penultimate completed checkpoint
//!   (`C_penult`), and transitively to older ones, down to the initial
//!   all-zero image.
//!
//! The oracle deliberately knows nothing about the controller's BTT/PTT,
//! regions, or devices — it is the independent specification the
//! implementation is diffed against, byte for byte.

use std::collections::BTreeMap;

use thynvm_types::{Cycle, HealthRung, RecoveryOutcome};

/// One byte-level divergence between the oracle and a recovered image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleMismatch {
    /// Physical address of the diverging byte.
    pub addr: u64,
    /// What the three-version rules require.
    pub expected: u8,
    /// What recovery actually produced.
    pub actual: u8,
}

/// A checkpoint the oracle knows about.
#[derive(Debug, Clone)]
struct OracleCheckpoint {
    /// Cycle the checkpoint was initiated (its content cutoff).
    started: Cycle,
    /// Cycle its commit record persists; the checkpoint only counts for
    /// crashes at or after this cycle.
    completes_at: Cycle,
    /// Byte image as of initiation.
    image: BTreeMap<u64, u8>,
}

/// Pure reference model of what a crash at any cycle must recover to.
///
/// # Example
///
/// ```
/// use thynvm_core::PersistenceOracle;
/// use thynvm_types::Cycle;
///
/// let mut oracle = PersistenceOracle::new();
/// oracle.record_write(0x40, b"ab");
/// oracle.record_checkpoint(Cycle::new(100), Cycle::new(500));
/// oracle.record_write(0x40, b"xy"); // W_active: lost on crash
///
/// // Crash before the checkpoint's commit persisted: all-zero image.
/// assert_eq!(oracle.expected_byte_at(0x40, Cycle::new(499)), 0);
/// // Crash after: the checkpointed value survives, the overwrite does not.
/// assert_eq!(oracle.expected_byte_at(0x40, Cycle::new(500)), b'a');
/// ```
#[derive(Debug, Clone, Default)]
pub struct PersistenceOracle {
    /// Live contents as the program wrote them (the would-be `W_active`).
    current: BTreeMap<u64, u8>,
    /// Checkpoint snapshots, in initiation order.
    checkpoints: Vec<OracleCheckpoint>,
    /// Health-ladder rungs persisted alongside checkpoint commit records:
    /// `(completes_at, rung)` in persist order. Fed from a reference run's
    /// durable rung ([`crate::ThyNvm::clast_health_rung`]); a crashed twin's
    /// post-recovery rung is validated against them.
    healths: Vec<(Cycle, HealthRung)>,
}

impl PersistenceOracle {
    /// Creates an oracle with an all-zero initial image and no checkpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a program write of `data` at physical address `addr`.
    pub fn record_write(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.current.insert(addr + i as u64, b);
        }
    }

    /// Records a checkpoint initiated at `started` whose commit record
    /// persists at `completes_at`: snapshots the current image.
    pub fn record_checkpoint(&mut self, started: Cycle, completes_at: Cycle) {
        self.checkpoints.push(OracleCheckpoint {
            started,
            completes_at,
            image: self.current.clone(),
        });
    }

    /// Records a DRAM-poison quarantine of `[base, base + len)`: the
    /// controller dropped that range's uncheckpointed writes and rolled its
    /// visible bytes back to the last captured checkpoint, so the oracle's
    /// live image must forget them too. Bytes the last snapshot never held
    /// revert to zero (fresh memory). Feed this from
    /// [`crate::ThyNvm::take_quarantine_events`] *before* recording any
    /// checkpoint the quarantine preceded.
    pub fn record_quarantine(&mut self, base: u64, len: u64) {
        let prev = self.checkpoints.last().map(|c| &c.image);
        for a in base..base.saturating_add(len) {
            match prev.and_then(|img| img.get(&a)) {
                Some(&b) => {
                    self.current.insert(a, b);
                }
                None => {
                    self.current.remove(&a);
                }
            }
        }
    }

    /// Records the health-ladder rung whose 64 B record persisted with the
    /// checkpoint committing at `completes_at`. Recovery must rehydrate the
    /// rung that was durable *with the image it restores*, so rung
    /// selection follows image selection exactly — see
    /// [`PersistenceOracle::expected_rung_at`].
    pub fn record_health(&mut self, completes_at: Cycle, rung: HealthRung) {
        self.healths.push((completes_at, rung));
    }

    /// The ladder rung recovery must rehydrate after a clean crash at
    /// `crash`: the rung persisted with the most recent checkpoint whose
    /// commit record landed by then, or `Healthy` with no completed
    /// checkpoint (an empty image carries no standing degradation).
    #[must_use]
    pub fn expected_rung_at(&self, crash: Cycle) -> HealthRung {
        self.healths
            .iter()
            .rev()
            .find(|(at, _)| *at <= crash)
            .map_or(HealthRung::Healthy, |(_, r)| *r)
    }

    /// The rung recovery must rehydrate when `C_last` is rejected and the
    /// image falls back one level: the rung persisted with the *second*
    /// most recent completed checkpoint, mirroring
    /// [`PersistenceOracle::expected_fallback_image_at`].
    #[must_use]
    pub fn expected_fallback_rung_at(&self, crash: Cycle) -> HealthRung {
        self.healths
            .iter()
            .rev()
            .filter(|(at, _)| *at <= crash)
            .nth(1)
            .map_or(HealthRung::Healthy, |(_, r)| *r)
    }

    /// Every address the program has ever written (the verification
    /// domain: all other bytes are zero in both oracle and controller).
    #[must_use = "the verification domain is the whole point of querying it"]
    pub fn touched_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.current.keys().copied()
    }

    /// The full byte image a crash at `crash` must recover to: the most
    /// recent checkpoint whose commit record persisted by `crash`, or the
    /// all-zero image if none has.
    #[must_use]
    pub fn expected_image_at(&self, crash: Cycle) -> BTreeMap<u64, u8> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.completes_at <= crash)
            .map(|c| c.image.clone())
            .unwrap_or_default()
    }

    /// The single byte at `addr` a crash at `crash` must recover to.
    #[must_use]
    pub fn expected_byte_at(&self, addr: u64, crash: Cycle) -> u8 {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.completes_at <= crash)
            .and_then(|c| c.image.get(&addr).copied())
            .unwrap_or(0)
    }

    /// Which image label §4.5 assigns to a crash at `crash`: `CPenult` if a
    /// checkpoint had been initiated but its commit record had not yet
    /// persisted (that checkpoint is discarded), `CLast` otherwise.
    #[must_use]
    pub fn expected_outcome_at(&self, crash: Cycle) -> RecoveryOutcome {
        let incomplete = self
            .checkpoints
            .iter()
            .any(|c| c.started <= crash && crash < c.completes_at);
        if incomplete {
            RecoveryOutcome::CPenult
        } else {
            RecoveryOutcome::CLast
        }
    }

    /// The byte image recovery must produce when `C_last` itself is
    /// corrupt: the media-integrity check rejects the most recent completed
    /// checkpoint, so the image falls back one more level — the *second*
    /// most recent checkpoint whose commit record persisted by `crash`, or
    /// the all-zero image.
    #[must_use]
    pub fn expected_fallback_image_at(&self, crash: Cycle) -> BTreeMap<u64, u8> {
        self.checkpoints
            .iter()
            .rev()
            .filter(|c| c.completes_at <= crash)
            .nth(1)
            .map(|c| c.image.clone())
            .unwrap_or_default()
    }

    /// Which label §4.5 assigns to a crash at `crash` when `C_last` carries
    /// a latent media fault (torn commit record, flipped data bit,
    /// corrupted checkpoint metadata): if any checkpoint had completed, its
    /// integrity verification fails at recovery and the outcome is
    /// [`RecoveryOutcome::CPenultIntegrityFallback`]; with no completed
    /// checkpoint there is nothing to verify and the clean-crash rules
    /// apply unchanged.
    #[must_use]
    pub fn expected_outcome_with_corrupt_clast(&self, crash: Cycle) -> RecoveryOutcome {
        let any_completed = self.checkpoints.iter().any(|c| c.completes_at <= crash);
        if any_completed {
            RecoveryOutcome::CPenultIntegrityFallback
        } else {
            self.expected_outcome_at(crash)
        }
    }

    /// Which label recovery must produce when the persisted state carries
    /// the given secure-mode tamper at crash time. Mirrors
    /// [`PersistenceOracle::expected_outcome_with_corrupt_clast`]:
    ///
    /// * with no completed checkpoint there is nothing authenticated to
    ///   forge — the tamper stays armed and the clean-crash rules apply;
    /// * a single-image forgery, a rolled-back counter table, or a torn
    ///   metadata root fails verification and degrades to `C_penult`
    ///   ([`RecoveryOutcome::CPenultIntegrityFallback`]);
    /// * a forgery of *both* images leaves nothing authenticated to replay:
    ///   recovery must refuse and reset
    ///   ([`RecoveryOutcome::Unrecoverable`]).
    #[must_use]
    pub fn expected_outcome_with_tampered_region(
        &self,
        crash: Cycle,
        tamper: crate::TamperFault,
    ) -> RecoveryOutcome {
        let any_completed = self.checkpoints.iter().any(|c| c.completes_at <= crash);
        if !any_completed {
            return self.expected_outcome_at(crash);
        }
        match tamper {
            crate::TamperFault::BothImages { .. } => RecoveryOutcome::Unrecoverable,
            _ => RecoveryOutcome::CPenultIntegrityFallback,
        }
    }

    /// The byte image recovery must produce under the given secure-mode
    /// tamper: the fallback image for single-image tampers (exactly as
    /// [`PersistenceOracle::expected_fallback_image_at`]), the all-zero
    /// image when both images are forged (recovery refuses to replay
    /// unauthenticated data), and the clean-crash image when no checkpoint
    /// had completed (the tamper stays armed).
    #[must_use]
    pub fn expected_image_with_tampered_region(
        &self,
        crash: Cycle,
        tamper: crate::TamperFault,
    ) -> BTreeMap<u64, u8> {
        let any_completed = self.checkpoints.iter().any(|c| c.completes_at <= crash);
        if !any_completed {
            return self.expected_image_at(crash);
        }
        match tamper {
            crate::TamperFault::BothImages { .. } => BTreeMap::new(),
            _ => self.expected_fallback_image_at(crash),
        }
    }

    /// Like [`PersistenceOracle::diff`], but against the image recovery
    /// must converge to under the given secure-mode tamper
    /// ([`PersistenceOracle::expected_image_with_tampered_region`]).
    #[must_use = "a non-empty diff means recovery diverged from the oracle"]
    pub fn diff_with_tampered_region(
        &self,
        crash: Cycle,
        tamper: crate::TamperFault,
        read: impl FnMut(u64) -> u8,
    ) -> Vec<OracleMismatch> {
        self.diff_against(&self.expected_image_with_tampered_region(crash, tamper), read)
    }

    /// The byte image recovery must produce when the persist buffer's
    /// crash-time partial flush *salvaged* the in-flight checkpoint's
    /// commit record: the checkpoint is complete at the device even though
    /// its timeline had not finished, so the governing snapshot is the
    /// most recent checkpoint **initiated** by `crash` — not merely the
    /// most recent one whose commit record had persisted.
    #[must_use]
    pub fn expected_image_with_commit_salvage(&self, crash: Cycle) -> BTreeMap<u64, u8> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.started <= crash)
            .map(|c| c.image.clone())
            .unwrap_or_default()
    }

    /// Which label §4.5 assigns when the commit marker was salvaged: the
    /// in-flight checkpoint commits early, so the outcome is always
    /// [`RecoveryOutcome::CLast`] — the salvage is exactly the event that
    /// removes the `CPenult` rollback.
    #[must_use]
    pub fn expected_outcome_with_commit_salvage(&self, _crash: Cycle) -> RecoveryOutcome {
        RecoveryOutcome::CLast
    }

    /// Like [`PersistenceOracle::diff`], but against the early-committed
    /// image ([`PersistenceOracle::expected_image_with_commit_salvage`]).
    #[must_use = "a non-empty diff means recovery diverged from the oracle"]
    pub fn diff_with_commit_salvage(
        &self,
        crash: Cycle,
        read: impl FnMut(u64) -> u8,
    ) -> Vec<OracleMismatch> {
        self.diff_against(&self.expected_image_with_commit_salvage(crash), read)
    }

    /// The byte image an arbitrary *sequence* of stacked crashes must
    /// converge to. `crashes` holds the crash cycles in firing order: the
    /// first entry is the initial power failure; later entries are nested
    /// crashes that interrupted recovery (or immediate re-crashes after
    /// it). No checkpoint can complete while recovery is running, so the
    /// *first* crash alone determines which checkpoint survives — every
    /// restarted recovery must land on the same image, which is exactly
    /// the idempotence property the controller guarantees.
    ///
    /// With `clast_corrupt` the media-integrity check rejects `C_last` and
    /// the image falls back one more checkpoint — and *stays* there: a
    /// crash during the integrity fallback redoes the fallback, it never
    /// falls back twice. An empty sequence means no crash at all: the
    /// current (live) image.
    #[must_use]
    pub fn expected_image_after_crash_sequence(
        &self,
        crashes: &[Cycle],
        clast_corrupt: bool,
    ) -> BTreeMap<u64, u8> {
        let Some(&first) = crashes.first() else {
            return self.current.clone();
        };
        if clast_corrupt {
            self.expected_fallback_image_at(first)
        } else {
            self.expected_image_at(first)
        }
    }

    /// Which label §4.5 assigns to the recovery governed by the *first*
    /// crash of a stacked-crash sequence (see
    /// [`PersistenceOracle::expected_image_after_crash_sequence`]). Nested
    /// crashes restart recovery but never change which image it converges
    /// to, so the label of the governing recovery is invariant across the
    /// whole sequence. An empty sequence is no crash: `CLast`.
    #[must_use]
    pub fn expected_outcome_after_crash_sequence(
        &self,
        crashes: &[Cycle],
        clast_corrupt: bool,
    ) -> RecoveryOutcome {
        let Some(&first) = crashes.first() else {
            return RecoveryOutcome::CLast;
        };
        if clast_corrupt {
            self.expected_outcome_with_corrupt_clast(first)
        } else {
            self.expected_outcome_at(first)
        }
    }

    /// Diffs a recovered image against the oracle's prediction for a crash
    /// at `crash`, byte for byte over every touched address. `read` fetches
    /// one byte of the recovered image (e.g. a `load_bytes` wrapper).
    /// Returns every divergence; empty means recovery is oracle-identical.
    #[must_use = "a non-empty diff means recovery diverged from the oracle"]
    pub fn diff(&self, crash: Cycle, read: impl FnMut(u64) -> u8) -> Vec<OracleMismatch> {
        self.diff_against(&self.expected_image_at(crash), read)
    }

    /// Like [`PersistenceOracle::diff`], but against the image a whole
    /// stacked-crash sequence must converge to
    /// ([`PersistenceOracle::expected_image_after_crash_sequence`]).
    #[must_use = "a non-empty diff means recovery diverged from the oracle"]
    pub fn diff_after_crash_sequence(
        &self,
        crashes: &[Cycle],
        clast_corrupt: bool,
        read: impl FnMut(u64) -> u8,
    ) -> Vec<OracleMismatch> {
        self.diff_against(&self.expected_image_after_crash_sequence(crashes, clast_corrupt), read)
    }

    /// Like [`PersistenceOracle::diff`], but for a crash where `C_last` is
    /// corrupt and recovery must have fallen back one more checkpoint.
    #[must_use = "a non-empty diff means recovery diverged from the oracle"]
    pub fn diff_with_corrupt_clast(
        &self,
        crash: Cycle,
        read: impl FnMut(u64) -> u8,
    ) -> Vec<OracleMismatch> {
        self.diff_against(&self.expected_fallback_image_at(crash), read)
    }

    fn diff_against(
        &self,
        expected: &BTreeMap<u64, u8>,
        mut read: impl FnMut(u64) -> u8,
    ) -> Vec<OracleMismatch> {
        self.touched_addrs()
            .filter_map(|addr| {
                let want = expected.get(&addr).copied().unwrap_or(0);
                let got = read(addr);
                (got != want).then_some(OracleMismatch { addr, expected: want, actual: got })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_selection_mirrors_image_selection() {
        let mut o = PersistenceOracle::new();
        // No completed checkpoint: an empty image carries no degradation.
        assert_eq!(o.expected_rung_at(Cycle::new(50)), HealthRung::Healthy);
        o.record_health(Cycle::new(100), HealthRung::Healthy);
        o.record_health(Cycle::new(300), HealthRung::Wounded);
        o.record_health(Cycle::new(500), HealthRung::ReadOnly);
        // Before the first commit record lands.
        assert_eq!(o.expected_rung_at(Cycle::new(99)), HealthRung::Healthy);
        // Newest persisted rung wins at and after each commit point.
        assert_eq!(o.expected_rung_at(Cycle::new(100)), HealthRung::Healthy);
        assert_eq!(o.expected_rung_at(Cycle::new(300)), HealthRung::Wounded);
        assert_eq!(o.expected_rung_at(Cycle::new(499)), HealthRung::Wounded);
        assert_eq!(o.expected_rung_at(Cycle::new(9_999)), HealthRung::ReadOnly);
    }

    #[test]
    fn fallback_rung_steps_back_exactly_one_checkpoint() {
        let mut o = PersistenceOracle::new();
        o.record_health(Cycle::new(100), HealthRung::Wounded);
        o.record_health(Cycle::new(300), HealthRung::ReadOnly);
        // With two completed checkpoints, fallback lands on the penultimate
        // rung; with one (or none) it degrades to Healthy like the image.
        assert_eq!(o.expected_fallback_rung_at(Cycle::new(400)), HealthRung::Wounded);
        assert_eq!(o.expected_fallback_rung_at(Cycle::new(200)), HealthRung::Healthy);
        assert_eq!(o.expected_fallback_rung_at(Cycle::new(50)), HealthRung::Healthy);
    }

    #[test]
    fn no_checkpoint_expects_zeroes() {
        let mut o = PersistenceOracle::new();
        o.record_write(10, &[7, 8]);
        assert_eq!(o.expected_byte_at(10, Cycle::new(1_000_000)), 0);
        assert!(o.expected_image_at(Cycle::new(1_000_000)).is_empty());
        assert_eq!(o.expected_outcome_at(Cycle::ZERO), RecoveryOutcome::CLast);
    }

    #[test]
    fn clast_wins_once_commit_persisted() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        // Before the first commit: zeroes.
        assert_eq!(o.expected_byte_at(0, Cycle::new(99)), 0);
        // Between commits: the first checkpoint's value.
        assert_eq!(o.expected_byte_at(0, Cycle::new(100)), 1);
        assert_eq!(o.expected_byte_at(0, Cycle::new(299)), 1);
        // After the second commit: the overwrite.
        assert_eq!(o.expected_byte_at(0, Cycle::new(300)), 2);
    }

    #[test]
    fn outcome_is_cpenult_only_while_a_checkpoint_is_in_flight() {
        let mut o = PersistenceOracle::new();
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        assert_eq!(o.expected_outcome_at(Cycle::new(9)), RecoveryOutcome::CLast);
        assert_eq!(o.expected_outcome_at(Cycle::new(10)), RecoveryOutcome::CPenult);
        assert_eq!(o.expected_outcome_at(Cycle::new(99)), RecoveryOutcome::CPenult);
        assert_eq!(o.expected_outcome_at(Cycle::new(100)), RecoveryOutcome::CLast);
    }

    #[test]
    fn wactive_writes_are_always_lost() {
        let mut o = PersistenceOracle::new();
        o.record_write(5, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(20));
        o.record_write(5, &[9]);
        o.record_write(6, &[9]);
        let img = o.expected_image_at(Cycle::new(1_000));
        assert_eq!(img.get(&5), Some(&1));
        assert_eq!(img.get(&6), None);
    }

    #[test]
    fn diff_reports_divergent_bytes_only() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1, 2, 3]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(20));
        // Recovered image differs at addr 1 only.
        let recovered = |addr: u64| match addr {
            0 => 1,
            1 => 99,
            2 => 3,
            _ => 0,
        };
        let diffs = o.diff(Cycle::new(20), recovered);
        assert_eq!(diffs, vec![OracleMismatch { addr: 1, expected: 2, actual: 99 }]);
        // And is empty when recovery matches.
        assert!(o.diff(Cycle::new(19), |_| 0).is_empty());
    }

    #[test]
    fn fallback_image_skips_the_corrupt_clast() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        o.record_write(0, &[3]);
        o.record_checkpoint(Cycle::new(400), Cycle::new(500));

        // Only one checkpoint completed: the fallback is the zero image.
        assert!(o.expected_fallback_image_at(Cycle::new(100)).is_empty());
        // Two completed: C_last (value 2) is rejected, C_penult (value 1)
        // is the fallback.
        assert_eq!(o.expected_fallback_image_at(Cycle::new(300)).get(&0), Some(&1));
        // Crash mid-flight of the third: the in-flight one never counted,
        // so the corrupt "C_last" is #2 and the fallback is still #1.
        assert_eq!(o.expected_fallback_image_at(Cycle::new(450)).get(&0), Some(&1));
        // Three completed: fallback is #2.
        assert_eq!(o.expected_fallback_image_at(Cycle::new(500)).get(&0), Some(&2));
    }

    #[test]
    fn corrupt_clast_outcome_labels_the_integrity_fallback() {
        let mut o = PersistenceOracle::new();
        // No checkpoint at all: nothing to verify, clean-crash rules apply.
        assert_eq!(
            o.expected_outcome_with_corrupt_clast(Cycle::ZERO),
            RecoveryOutcome::CLast
        );
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        // In flight and never completed: still plain CPenult.
        assert_eq!(
            o.expected_outcome_with_corrupt_clast(Cycle::new(50)),
            RecoveryOutcome::CPenult
        );
        // Completed: its verification fails at recovery.
        assert_eq!(
            o.expected_outcome_with_corrupt_clast(Cycle::new(100)),
            RecoveryOutcome::CPenultIntegrityFallback
        );
    }

    #[test]
    fn diff_with_corrupt_clast_checks_the_fallback_image() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        // A recovered image holding the first checkpoint's value is correct
        // when C_last is corrupt…
        assert!(o.diff_with_corrupt_clast(Cycle::new(300), |_| 1).is_empty());
        // …and wrong for a clean crash at the same cycle.
        assert!(!o.diff(Cycle::new(300), |_| 1).is_empty());
    }

    #[test]
    fn crash_sequence_is_governed_by_its_first_crash() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        o.record_write(0, &[3]); // W_active: always lost

        // Empty sequence: no crash — the live image, labeled CLast.
        assert_eq!(o.expected_image_after_crash_sequence(&[], false).get(&0), Some(&3));
        assert_eq!(
            o.expected_outcome_after_crash_sequence(&[], false),
            RecoveryOutcome::CLast
        );

        // Nested crashes during recovery never change the converged image:
        // any suffix of stacked crashes matches the single-crash answer.
        let first = Cycle::new(300);
        let stacked = [first, Cycle::new(310), Cycle::new(350), Cycle::new(9_999)];
        assert_eq!(
            o.expected_image_after_crash_sequence(&stacked, false),
            o.expected_image_at(first)
        );
        assert_eq!(
            o.expected_outcome_after_crash_sequence(&stacked, false),
            o.expected_outcome_at(first)
        );

        // Crash during the integrity fallback: the second recovery still
        // picks C_penult — never a double fallback.
        assert_eq!(
            o.expected_image_after_crash_sequence(&stacked, true),
            o.expected_fallback_image_at(first)
        );
        assert_eq!(
            o.expected_outcome_after_crash_sequence(&stacked, true),
            RecoveryOutcome::CPenultIntegrityFallback
        );
        assert!(o
            .diff_after_crash_sequence(&stacked, true, |_| 1)
            .is_empty());
        assert!(!o.diff_after_crash_sequence(&stacked, false, |_| 1).is_empty());
    }

    #[test]
    fn tampered_region_outcomes_and_images() {
        use crate::TamperFault;
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));

        let forged = TamperFault::ClastData { addr: 0 };
        let both = TamperFault::BothImages { addr: 0 };

        // Before any checkpoint completed: nothing authenticated to forge,
        // the tamper stays armed and clean-crash rules apply.
        assert_eq!(
            o.expected_outcome_with_tampered_region(Cycle::new(50), both),
            RecoveryOutcome::CPenult
        );
        assert!(o.expected_image_with_tampered_region(Cycle::new(50), both).is_empty());

        // Single-image tampers degrade to C_penult, exactly like CRC
        // failures — for every recoverable kind.
        for t in [forged, TamperFault::StaleCounterTable, TamperFault::TornRootMeta] {
            assert_eq!(
                o.expected_outcome_with_tampered_region(Cycle::new(300), t),
                RecoveryOutcome::CPenultIntegrityFallback
            );
            assert_eq!(
                o.expected_image_with_tampered_region(Cycle::new(300), t).get(&0),
                Some(&1)
            );
        }

        // Both images forged: nothing authenticated survives.
        assert_eq!(
            o.expected_outcome_with_tampered_region(Cycle::new(300), both),
            RecoveryOutcome::Unrecoverable
        );
        assert!(o.expected_image_with_tampered_region(Cycle::new(300), both).is_empty());
        assert!(o.diff_with_tampered_region(Cycle::new(300), both, |_| 0).is_empty());
        assert!(o.diff_with_tampered_region(Cycle::new(300), forged, |_| 1).is_empty());
        assert!(!o.diff_with_tampered_region(Cycle::new(300), forged, |_| 2).is_empty());
    }

    #[test]
    fn commit_salvage_promotes_the_in_flight_checkpoint() {
        let mut o = PersistenceOracle::new();
        o.record_write(0, &[1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0, &[2]);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        // Crash mid-flight of the second checkpoint: normally CPenult with
        // value 1, but a salvaged commit marker promotes it to CLast with
        // the in-flight snapshot's value 2.
        let crash = Cycle::new(250);
        assert_eq!(o.expected_outcome_at(crash), RecoveryOutcome::CPenult);
        assert_eq!(o.expected_image_at(crash).get(&0), Some(&1));
        assert_eq!(
            o.expected_outcome_with_commit_salvage(crash),
            RecoveryOutcome::CLast
        );
        assert_eq!(o.expected_image_with_commit_salvage(crash).get(&0), Some(&2));
        assert!(o.diff_with_commit_salvage(crash, |_| 2).is_empty());
        assert!(!o.diff_with_commit_salvage(crash, |_| 1).is_empty());
        // With no checkpoint initiated, the salvage image is empty (there
        // was no marker to salvage; the prediction degrades gracefully).
        assert!(o.expected_image_with_commit_salvage(Cycle::new(5)).is_empty());
    }

    #[test]
    fn multi_byte_writes_split_into_bytes() {
        let mut o = PersistenceOracle::new();
        o.record_write(100, b"hello");
        o.record_checkpoint(Cycle::ZERO, Cycle::ZERO);
        assert_eq!(o.expected_byte_at(104, Cycle::ZERO), b'o');
        assert_eq!(o.touched_addrs().count(), 5);
    }

    #[test]
    fn quarantine_rolls_the_live_image_back_to_the_last_snapshot() {
        let mut o = PersistenceOracle::new();
        o.record_write(0x40, &[1, 1]);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        o.record_write(0x40, &[2]);
        o.record_write(0x80, &[9]); // outside the quarantined range
        // Poison under the dirty 0x40 block: the controller dropped its
        // epoch writes and rolled it back to the checkpointed bytes.
        o.record_quarantine(0x40, 64);
        o.record_checkpoint(Cycle::new(200), Cycle::new(300));
        let img = o.expected_image_at(Cycle::new(300));
        assert_eq!(img.get(&0x40), Some(&1), "rolled back to the snapshot");
        assert_eq!(img.get(&0x41), Some(&1));
        assert_eq!(img.get(&0x80), Some(&9), "outside range untouched");
    }

    #[test]
    fn quarantine_with_no_snapshot_reverts_to_zero() {
        let mut o = PersistenceOracle::new();
        o.record_write(0x40, &[7]);
        o.record_quarantine(0x40, 64);
        o.record_checkpoint(Cycle::new(10), Cycle::new(100));
        // The dropped byte never reached any checkpoint: fresh memory.
        assert_eq!(o.expected_byte_at(0x40, Cycle::new(100)), 0);
    }
}
