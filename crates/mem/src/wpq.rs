//! Content-carrying volatile persist buffer (WPQ) for the NVM device.
//!
//! The memory controller's write-pending queue is *volatile*: a write that
//! was acknowledged to the issuer is not durable until the device actually
//! retires it into the NVM array. [`crate::queue::WriteQueue`] models the
//! timing of that window; this module models its *fault domain* — which
//! bytes survive a crash that lands inside it.
//!
//! Writes enter the buffer as `(addr, data, retire_cycle)` entries and only
//! become durable in the buffer's sink [`SparseStore`] when they drain.
//! Draining is out of order **across banks** (each bank retires its own
//! queue independently, mirroring per-bank `busy_until` in
//! [`crate::device::Device`]) but in order **within a bank** — and therefore
//! within a 64 B line, because [`PersistBuffer::bank_of`] reproduces the
//! device's address→bank fold exactly, so two writes to the same line always
//! share a bank and their per-bank retire times are clamped monotone.
//!
//! [`PersistBuffer::fence`] is the §4.4 ordering primitive: it stalls the
//! issuer until every pending entry has retired, so anything enqueued after
//! the fence (e.g. a checkpoint commit record) is guaranteed to retire no
//! earlier than everything before it. [`PersistBuffer::crash`] applies the
//! partial-flush model: entries already retired are durable, and of the
//! in-flight remainder each bank salvages a seeded, deterministic,
//! retire-consistent *prefix* (hardware flushes queues front-to-back on the
//! residual energy of a dying power supply — it never skips ahead). The
//! result is genuinely torn, reordered persist state for recovery to face.

use std::collections::VecDeque;

use thynvm_types::{rng, Cycle, DeviceGeometry, HwAddr, PersistBufferConfig, WpqStats};

use crate::store::SparseStore;

/// What an entry in the persist buffer represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WpqKind {
    /// Ordinary data: checkpoint payload, WAL payload, working writeback.
    Data,
    /// A checkpoint commit record (or equivalent seal). Whether one of
    /// these survives a crash decides early-commit vs. rollback, so
    /// [`WpqCrashReport`] tracks markers separately from data.
    CommitMarker,
}

/// One pending write in the persist buffer.
#[derive(Debug, Clone)]
struct WpqEntry {
    /// Hardware (post-translation) address of the write.
    addr: HwAddr,
    /// Payload bytes; empty for timing-only entries enqueued by callers
    /// that do not have the data at hand (the sink is untouched then).
    data: Vec<u8>,
    /// Cycle the issuer enqueued the write.
    issue: Cycle,
    /// Cycle the device retires the write (durability point).
    retire: Cycle,
    kind: WpqKind,
}

/// Outcome of [`PersistBuffer::crash`]: how the partial flush resolved
/// every entry that was pending when power failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpqCrashReport {
    /// Entries durable at the crash: retired before it, plus salvaged.
    pub drained: u64,
    /// Of `drained`, how many were salvaged by the partial flush (still
    /// in flight at the crash cycle but written out on residual energy).
    pub salvaged: u64,
    /// Entries lost: in flight and not salvaged, or issued after the
    /// crash cycle (unwound — they never reached the controller).
    pub dropped: u64,
    /// Of `dropped`, how many were [`WpqKind::Data`] entries.
    pub data_dropped: u64,
    /// A [`WpqKind::CommitMarker`] was salvaged by the partial flush.
    pub marker_salvaged: bool,
    /// A [`WpqKind::CommitMarker`] was dropped.
    pub marker_dropped: bool,
}

impl WpqCrashReport {
    /// The conservative early-commit rule: the in-flight checkpoint may be
    /// treated as committed only if its commit marker became durable *and*
    /// no data entry was lost at this crash — a marker that outran dropped
    /// payload would commit a torn image (exactly the hazard §4.4 fences
    /// exist to prevent).
    pub fn commit_salvaged(&self) -> bool {
        self.marker_salvaged && self.data_dropped == 0
    }
}

/// Bounded, banked, content-carrying volatile persist buffer.
///
/// See the [module documentation](self) for the model.
///
/// # Example
///
/// ```
/// use thynvm_mem::{PersistBuffer, WpqKind};
/// use thynvm_types::{Cycle, DeviceGeometry, HwAddr, PersistBufferConfig};
///
/// let cfg = PersistBufferConfig::armed();
/// let mut wpq = PersistBuffer::new(cfg, DeviceGeometry::default());
/// wpq.push(HwAddr::new(0), b"ab", Cycle::ZERO, Cycle::new(100), WpqKind::Data);
/// // Not yet durable: the sink still reads zero.
/// let mut b = [0u8; 2];
/// wpq.sink().read(HwAddr::new(0), &mut b);
/// assert_eq!(&b, &[0, 0]);
/// // The fence stalls to the last retire and drains everything.
/// assert_eq!(wpq.fence(Cycle::new(10)), Cycle::new(100));
/// wpq.sink().read(HwAddr::new(0), &mut b);
/// assert_eq!(&b, b"ab");
/// ```
#[derive(Debug, Clone)]
pub struct PersistBuffer {
    cfg: PersistBufferConfig,
    /// Per-bank FIFO queues; retire times are nondecreasing within a bank.
    banks: Vec<VecDeque<WpqEntry>>,
    /// Durable image: drained entries' bytes land here.
    sink: SparseStore,
    stats: WpqStats,
    /// Entries currently pending across all banks.
    pending_total: usize,
    /// How many crashes this buffer has absorbed; salts the salvage stream
    /// so consecutive crashes see independent partial flushes.
    crash_ordinal: u64,
    row_bytes: u64,
    total_banks: u64,
    /// `log2(row_bytes)` when a power of two (mirrors `Device`).
    row_shift: Option<u32>,
    /// `total_banks - 1` when a power of two (mirrors `Device`).
    bank_mask: Option<u64>,
}

impl PersistBuffer {
    /// Creates a buffer with the device geometry it shadows; the bank fold
    /// must match [`crate::device::Device`] so same-line writes share a
    /// bank and drain in order.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.capacity` is zero or the geometry has no banks.
    pub fn new(cfg: PersistBufferConfig, geometry: DeviceGeometry) -> Self {
        assert!(cfg.capacity > 0, "persist buffer capacity must be nonzero");
        let total_banks = u64::from(geometry.total_banks());
        assert!(total_banks > 0, "persist buffer needs at least one bank");
        let row_bytes = geometry.row_bytes;
        assert!(row_bytes > 0, "row size must be nonzero");
        Self {
            cfg,
            banks: (0..total_banks).map(|_| VecDeque::new()).collect(),
            sink: SparseStore::new(),
            stats: WpqStats::default(),
            pending_total: 0,
            crash_ordinal: 0,
            row_bytes,
            total_banks,
            row_shift: row_bytes.is_power_of_two().then(|| row_bytes.trailing_zeros()),
            bank_mask: total_banks.is_power_of_two().then_some(total_banks - 1),
        }
    }

    /// The bank an address maps to — the same `row → bank` fold as
    /// `Device::map`, so buffer ordering matches device timing.
    pub fn bank_of(&self, addr: HwAddr) -> usize {
        let row = match self.row_shift {
            Some(s) => addr.raw() >> s,
            None => addr.raw() / self.row_bytes,
        };
        (match self.bank_mask {
            Some(m) => row & m,
            None => row % self.total_banks,
        }) as usize
    }

    /// Durable image of everything drained so far.
    pub fn sink(&self) -> &SparseStore {
        &self.sink
    }

    /// Counters, including the conservation ledger
    /// `enqueued == drained + dropped_at_crash + outstanding`.
    pub fn stats(&self) -> &WpqStats {
        &self.stats
    }

    /// Entries pending (not yet retired) at time `now`, without draining.
    pub fn outstanding_at(&self, now: Cycle) -> usize {
        self.banks.iter().flatten().filter(|e| e.retire > now).count()
    }

    /// Pending [`WpqKind::Data`] entries at time `now` — the §4.4 audit:
    /// a commit record enqueued while this is nonzero is unfenced.
    pub fn outstanding_data_at(&self, now: Cycle) -> usize {
        self.banks
            .iter()
            .flatten()
            .filter(|e| e.retire > now && e.kind == WpqKind::Data)
            .count()
    }

    /// Whether the buffer holds no entries at all (regardless of time).
    pub fn is_idle(&self) -> bool {
        self.pending_total == 0
    }

    /// [`WpqKind::Data`] entries currently *held* by the buffer, whether
    /// or not their retire cycle has passed. A fence empties the buffer,
    /// so any held entry at a commit-record persist means the §4.4 fence
    /// was skipped — this is the audit's view, stricter than
    /// [`PersistBuffer::outstanding_data_at`].
    pub fn held_data(&self) -> usize {
        self.banks.iter().flatten().filter(|e| e.kind == WpqKind::Data).count()
    }

    /// Enqueues a write the device will retire at `retire`. Returns the
    /// cycle at which the *issuer* may proceed: `issue` if the buffer had
    /// room, or the earliest pending retire time if it was full (the
    /// issuer stalls until a slot frees up).
    ///
    /// The retire time is clamped monotone *per bank*, so writes to the
    /// same bank — and in particular to the same 64 B line — drain in
    /// enqueue order; the last write to a line wins in the sink.
    pub fn push(
        &mut self,
        addr: HwAddr,
        data: &[u8],
        issue: Cycle,
        retire: Cycle,
        kind: WpqKind,
    ) -> Cycle {
        self.drain_to(issue);
        let resume = if self.pending_total >= self.cfg.capacity as usize {
            // Full: stall until the earliest in-flight entry retires. The
            // stall is charged to the same counter as fence stalls — the
            // ledger's `fence_stall_cycles` covers every cycle the issuer
            // spent waiting on the buffer, whichever primitive blocked it.
            let earliest = self
                .banks
                .iter()
                .filter_map(|b| b.front().map(|e| e.retire))
                .min()
                .expect("nonempty when full");
            self.drain_to(earliest);
            let resume = earliest.max(issue);
            self.stats.fence_stall_cycles += resume - issue;
            resume
        } else {
            issue
        };
        let bank = self.bank_of(addr);
        let last = self.banks[bank].back().map_or(Cycle::ZERO, |e| e.retire);
        let retire = retire.max(last);
        // Reorder window: how many earlier-enqueued entries this write may
        // overtake (they sit in other banks with later retire times).
        let overtaken = self
            .banks
            .iter()
            .enumerate()
            .filter(|&(b, _)| b != bank)
            .flat_map(|(_, q)| q.iter())
            .filter(|e| e.retire > retire)
            .count() as u64;
        self.stats.reorder_window_max = self.stats.reorder_window_max.max(overtaken);
        self.banks[bank].push_back(WpqEntry { addr, data: data.to_vec(), issue, retire, kind });
        self.pending_total += 1;
        self.stats.enqueued += 1;
        resume
    }

    /// §4.4 ordering fence: stalls the issuer until every pending entry
    /// has retired into the sink. Returns the cycle at which the issuer
    /// may proceed (`now` if the buffer was already drained — an empty
    /// fence costs nothing).
    pub fn fence(&mut self, now: Cycle) -> Cycle {
        self.stats.fences += 1;
        let done = self
            .banks
            .iter()
            .filter_map(|b| b.back().map(|e| e.retire))
            .max()
            .map_or(now, |r| r.max(now));
        self.stats.fence_stall_cycles += done - now;
        self.drain_to(done);
        done
    }

    /// Retires every entry with `retire <= now` into the sink, in per-bank
    /// FIFO order (retire times are monotone within a bank, so this is a
    /// prefix pop).
    fn drain_to(&mut self, now: Cycle) {
        for bank in 0..self.banks.len() {
            while let Some(front) = self.banks[bank].front() {
                if front.retire > now {
                    break;
                }
                let e = self.banks[bank].pop_front().expect("front just observed");
                self.apply(&e);
            }
        }
    }

    fn apply(&mut self, e: &WpqEntry) {
        if !e.data.is_empty() {
            self.sink.write(e.addr, &e.data);
        }
        self.pending_total -= 1;
        self.stats.drained += 1;
    }

    /// Length of the salvaged prefix for one bank at one crash: a pure
    /// function of `(seed, ordinal, bank, salvage_rate)`, exposed so tests
    /// can pin that replaying a crash reproduces the exact same partial
    /// flush (prefix-replay determinism).
    pub fn salvage_prefix_len(
        seed: u64,
        ordinal: u64,
        bank: u64,
        salvage_rate: f64,
        pending: usize,
    ) -> usize {
        let mut state = rng::mix(rng::mix(seed, ordinal), bank);
        let mut n = 0;
        while n < pending && rng::unit(rng::next(&mut state)) < salvage_rate {
            n += 1;
        }
        n
    }

    /// Power failure at cycle `at`: the partial-flush model.
    ///
    /// 1. Entries with `retire <= at` had already reached the array — they
    ///    drain normally and are durable.
    /// 2. Entries with `issue > at` are unwound: simulated time ran ahead
    ///    of the crash point, so those writes never happened. They count
    ///    as dropped for ledger conservation.
    /// 3. Of each bank's remaining in-flight entries, a seeded,
    ///    deterministic, retire-order *prefix* is salvaged (flushed on
    ///    residual energy) and becomes durable; the suffix is lost.
    ///
    /// Empties the buffer and advances the crash ordinal so the next
    /// crash sees an independent salvage stream.
    pub fn crash(&mut self, at: Cycle) -> WpqCrashReport {
        let drained_before = self.stats.drained;
        self.drain_to(at);
        let mut report = WpqCrashReport {
            drained: self.stats.drained - drained_before,
            ..WpqCrashReport::default()
        };
        for bank in 0..self.banks.len() {
            let q = std::mem::take(&mut self.banks[bank]);
            // Unwind writes from the unreached future. Issue order within
            // a bank is NOT monotone — background checkpoint timelines run
            // ahead of foreground time, so a marker issued at a later cycle
            // can sit *in front of* a foreground write issued earlier.
            // Filter the whole queue (preserving the retire order of what
            // remains) rather than popping a back suffix, or a
            // never-issued entry could hide in the salvageable prefix.
            let mut reached: VecDeque<WpqEntry> = VecDeque::with_capacity(q.len());
            for e in q {
                if e.issue > at {
                    self.drop_entry(&e, &mut report);
                } else {
                    reached.push_back(e);
                }
            }
            let keep = Self::salvage_prefix_len(
                self.cfg.seed,
                self.crash_ordinal,
                bank as u64,
                self.cfg.salvage_rate,
                reached.len(),
            );
            for (i, e) in reached.iter().enumerate() {
                if i < keep {
                    self.apply(e);
                    report.drained += 1;
                    report.salvaged += 1;
                    if e.kind == WpqKind::CommitMarker {
                        report.marker_salvaged = true;
                    }
                } else {
                    self.drop_entry(e, &mut report);
                }
            }
        }
        debug_assert_eq!(self.pending_total, 0);
        self.crash_ordinal += 1;
        report
    }

    fn drop_entry(&mut self, e: &WpqEntry, report: &mut WpqCrashReport) {
        self.pending_total -= 1;
        self.stats.dropped_at_crash += 1;
        report.dropped += 1;
        match e.kind {
            WpqKind::Data => report.data_dropped += 1,
            WpqKind::CommitMarker => report.marker_dropped = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> PersistBufferConfig {
        PersistBufferConfig::armed()
    }

    fn geom() -> DeviceGeometry {
        DeviceGeometry::default() // 8 banks, 8 KiB rows — both powers of two
    }

    fn conservation_holds(w: &PersistBuffer) {
        let s = w.stats();
        assert_eq!(
            s.enqueued,
            s.drained + s.dropped_at_crash + s.outstanding(),
            "ledger must conserve: {s:?}"
        );
        assert_eq!(s.outstanding(), w.pending_total as u64);
    }

    #[test]
    fn bank_fold_matches_device_map() {
        let w = PersistBuffer::new(armed(), geom());
        let g = geom();
        for raw in [0u64, 64, 8191, 8192, 16384, 65536, 123_456_789] {
            let row = raw / g.row_bytes;
            let bank = (row % u64::from(g.total_banks())) as usize;
            assert_eq!(w.bank_of(HwAddr::new(raw)), bank, "addr {raw:#x}");
        }
        // Non-power-of-two geometry exercises the divide/modulo path.
        let odd = DeviceGeometry { channels: 3, banks_per_channel: 2, row_bytes: 3000 };
        let w = PersistBuffer::new(armed(), odd);
        assert_eq!(w.bank_of(HwAddr::new(3000 * 7 + 12)), (7 % 6) as usize);
    }

    #[test]
    fn entries_become_durable_only_when_drained() {
        let mut w = PersistBuffer::new(armed(), geom());
        w.push(HwAddr::new(0x40), b"payload", Cycle::ZERO, Cycle::new(100), WpqKind::Data);
        let mut buf = [0u8; 7];
        w.sink().read(HwAddr::new(0x40), &mut buf);
        assert_eq!(&buf, &[0; 7], "not durable before retire");
        assert_eq!(w.outstanding_at(Cycle::new(99)), 1);
        assert_eq!(w.outstanding_at(Cycle::new(100)), 0);
        // A later push observes the passage of time and drains it.
        w.push(HwAddr::new(0x8000), b"x", Cycle::new(150), Cycle::new(200), WpqKind::Data);
        w.sink().read(HwAddr::new(0x40), &mut buf);
        assert_eq!(&buf, b"payload");
        conservation_holds(&w);
    }

    #[test]
    fn zero_entry_fence_is_free() {
        let mut w = PersistBuffer::new(armed(), geom());
        assert_eq!(w.fence(Cycle::new(42)), Cycle::new(42));
        assert_eq!(w.stats().fences, 1);
        assert_eq!(w.stats().fence_stall_cycles, Cycle::ZERO);
        conservation_holds(&w);
    }

    #[test]
    fn fence_stalls_to_last_retire_and_drains_everything() {
        let mut w = PersistBuffer::new(armed(), geom());
        w.push(HwAddr::new(0), b"a", Cycle::ZERO, Cycle::new(300), WpqKind::Data);
        w.push(HwAddr::new(8192), b"b", Cycle::ZERO, Cycle::new(150), WpqKind::Data);
        assert_eq!(w.fence(Cycle::new(100)), Cycle::new(300));
        assert_eq!(w.stats().fence_stall_cycles, Cycle::new(200));
        assert!(w.is_idle());
        let mut b = [0u8; 1];
        w.sink().read(HwAddr::new(8192), &mut b);
        assert_eq!(&b, b"b");
        conservation_holds(&w);
    }

    #[test]
    fn crash_with_empty_buffer_reports_nothing() {
        let mut w = PersistBuffer::new(armed(), geom());
        let r = w.crash(Cycle::new(500));
        assert_eq!(r, WpqCrashReport::default());
        assert!(!r.commit_salvaged());
        conservation_holds(&w);
    }

    #[test]
    fn full_buffer_back_pressures_the_issuer() {
        let cfg = PersistBufferConfig { capacity: 2, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        assert_eq!(
            w.push(HwAddr::new(0), b"a", Cycle::ZERO, Cycle::new(100), WpqKind::Data),
            Cycle::ZERO
        );
        assert_eq!(
            w.push(HwAddr::new(8192), b"b", Cycle::ZERO, Cycle::new(250), WpqKind::Data),
            Cycle::ZERO
        );
        // Full: the third push stalls until the earliest entry retires
        // (cycle 100), which frees its slot.
        assert_eq!(
            w.push(HwAddr::new(16384), b"c", Cycle::new(10), Cycle::new(300), WpqKind::Data),
            Cycle::new(100)
        );
        assert_eq!(w.pending_total, 2);
        // The back-pressure stall (cycle 10 → 100) is charged to the
        // ledger's stall counter, same as a fence stall would be.
        assert_eq!(w.stats().fence_stall_cycles, Cycle::new(90));
        conservation_holds(&w);
    }

    #[test]
    fn unwind_removes_future_issued_entries_anywhere_in_the_bank() {
        // Background checkpoint timelines run ahead of foreground time, so
        // per-bank issue order is not monotone: a commit marker issued at
        // cycle 1000 can sit *in front of* a foreground write issued at
        // cycle 500. A crash at cycle 600 must unwind the marker even
        // though it is not at the back of the queue — at salvage rate 1.0
        // a surviving marker would early-commit a checkpoint whose commit
        // record was never issued.
        let cfg = PersistBufferConfig { salvage_rate: 1.0, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        let line = HwAddr::new(0);
        w.push(line, &[], Cycle::new(1_000), Cycle::new(1_200), WpqKind::CommitMarker);
        w.push(line, b"f", Cycle::new(500), Cycle::new(1_300), WpqKind::Data);
        let r = w.crash(Cycle::new(600));
        assert!(r.marker_dropped && !r.marker_salvaged, "got {r:?}");
        assert!(!r.commit_salvaged(), "never-issued marker must not early-commit");
        assert_eq!(r.salvaged, 1, "the reached foreground write still salvages");
        assert_eq!(r.dropped, 1);
        assert_eq!(r.data_dropped, 0);
        let mut b = [0u8; 1];
        w.sink().read(line, &mut b);
        assert_eq!(&b, b"f", "salvage keeps the reached entries in order");
        conservation_holds(&w);
    }

    #[test]
    fn same_line_writes_share_a_bank_and_drain_in_order() {
        let mut w = PersistBuffer::new(armed(), geom());
        let line = HwAddr::new(0x1000);
        assert_eq!(w.bank_of(line), w.bank_of(HwAddr::new(0x103f)));
        // Out-of-order retire times: the second write's retire is clamped
        // monotone, so the older value can never overwrite the newer one.
        w.push(line, b"old", Cycle::ZERO, Cycle::new(400), WpqKind::Data);
        w.push(line, b"new", Cycle::ZERO, Cycle::new(100), WpqKind::Data);
        w.fence(Cycle::ZERO);
        let mut b = [0u8; 3];
        w.sink().read(line, &mut b);
        assert_eq!(&b, b"new", "last write to a line must win");
        conservation_holds(&w);
    }

    #[test]
    fn drain_is_out_of_order_across_banks() {
        let mut w = PersistBuffer::new(armed(), geom());
        // Bank 0 enqueued first but retires last; bank 1 overtakes it.
        w.push(HwAddr::new(0), b"slow", Cycle::ZERO, Cycle::new(1_000), WpqKind::Data);
        w.push(HwAddr::new(8192), b"fast", Cycle::ZERO, Cycle::new(50), WpqKind::Data);
        assert!(w.stats().reorder_window_max >= 1, "overtake must be observed");
        // At cycle 100 only the younger write is durable.
        w.push(HwAddr::new(16384), b"t", Cycle::new(100), Cycle::new(2_000), WpqKind::Data);
        let mut b = [0u8; 4];
        w.sink().read(HwAddr::new(8192), &mut b);
        assert_eq!(&b[..4], b"fast");
        w.sink().read(HwAddr::new(0), &mut b);
        assert_eq!(&b, &[0; 4], "older cross-bank write still in flight");
        conservation_holds(&w);
    }

    #[test]
    fn crash_salvages_a_deterministic_per_bank_prefix() {
        let cfg = PersistBufferConfig { salvage_rate: 0.5, ..armed() };
        let run = || {
            let mut w = PersistBuffer::new(cfg, geom());
            for i in 0..16u64 {
                let addr = HwAddr::new(i * 8192); // spread across all 8 banks
                w.push(addr, &[i as u8], Cycle::ZERO, Cycle::new(10_000 + i), WpqKind::Data);
            }
            let r = w.crash(Cycle::new(5)); // everything still in flight
            (r, w.sink().fingerprint())
        };
        let (r1, f1) = run();
        let (r2, f2) = run();
        assert_eq!(r1, r2, "same seed and ordinal must replay identically");
        assert_eq!(f1, f2, "salvaged bytes must replay identically");
        assert_eq!(r1.drained + r1.dropped, 16);
        assert_eq!(r1.salvaged, r1.drained, "nothing had retired before the crash");
    }

    #[test]
    fn salvage_prefix_is_replayable_and_ordinal_salted() {
        let n = PersistBuffer::salvage_prefix_len(7, 0, 3, 0.5, 32);
        assert_eq!(n, PersistBuffer::salvage_prefix_len(7, 0, 3, 0.5, 32));
        assert!(n <= 32);
        assert_eq!(PersistBuffer::salvage_prefix_len(7, 0, 3, 0.0, 32), 0);
        assert_eq!(PersistBuffer::salvage_prefix_len(7, 0, 3, 1.0, 32), 32);
        // Different ordinals or banks draw from independent streams: over
        // many draws at rate 0.5 they cannot all agree.
        let differs = (0..64u64).any(|o| {
            PersistBuffer::salvage_prefix_len(7, o, 3, 0.5, 32)
                != PersistBuffer::salvage_prefix_len(7, o + 1, 3, 0.5, 32)
        });
        assert!(differs, "crash ordinal must salt the salvage stream");
    }

    #[test]
    fn crash_unwinds_future_writes_for_conservation() {
        let cfg = PersistBufferConfig { salvage_rate: 0.0, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        w.push(HwAddr::new(0), b"a", Cycle::new(10), Cycle::new(100), WpqKind::Data);
        // Issued *after* the crash point: simulated time ran ahead. Its
        // push's lazy drain also retires the first entry into the sink.
        w.push(HwAddr::new(0), b"b", Cycle::new(900), Cycle::new(950), WpqKind::Data);
        let r = w.crash(Cycle::new(500));
        assert_eq!(r.drained, 0, "first entry retired before the crash, not at it");
        assert_eq!(r.dropped, 1, "future entry is unwound");
        assert_eq!(r.data_dropped, 1);
        let mut b = [0u8; 1];
        w.sink().read(HwAddr::new(0), &mut b);
        assert_eq!(&b, b"a", "the unwound write never reached the sink");
        conservation_holds(&w);
    }

    #[test]
    fn commit_marker_salvage_requires_zero_data_drops() {
        // rate 1.0: everything salvages — marker durable, no data lost.
        let cfg = PersistBufferConfig { salvage_rate: 1.0, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        w.push(HwAddr::new(0), b"d", Cycle::ZERO, Cycle::new(100), WpqKind::Data);
        w.push(HwAddr::new(64), &[], Cycle::ZERO, Cycle::new(120), WpqKind::CommitMarker);
        let r = w.crash(Cycle::new(5));
        assert!(r.marker_salvaged && r.data_dropped == 0 && r.commit_salvaged());

        // rate 0.0: nothing salvages — marker dropped, no early commit.
        let cfg = PersistBufferConfig { salvage_rate: 0.0, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        w.push(HwAddr::new(0), b"d", Cycle::ZERO, Cycle::new(100), WpqKind::Data);
        w.push(HwAddr::new(64), &[], Cycle::ZERO, Cycle::new(120), WpqKind::CommitMarker);
        let r = w.crash(Cycle::new(5));
        assert!(r.marker_dropped && !r.commit_salvaged());

        // Marker salvaged but a *different bank's* data dropped: the
        // conservative rule refuses the early commit.
        let torn = WpqCrashReport {
            marker_salvaged: true,
            data_dropped: 1,
            ..WpqCrashReport::default()
        };
        assert!(!torn.commit_salvaged());
    }

    #[test]
    fn outstanding_data_ignores_markers() {
        let mut w = PersistBuffer::new(armed(), geom());
        w.push(HwAddr::new(0), &[], Cycle::ZERO, Cycle::new(100), WpqKind::CommitMarker);
        assert_eq!(w.outstanding_at(Cycle::ZERO), 1);
        assert_eq!(w.outstanding_data_at(Cycle::ZERO), 0);
        w.push(HwAddr::new(8192), b"d", Cycle::ZERO, Cycle::new(200), WpqKind::Data);
        assert_eq!(w.outstanding_data_at(Cycle::ZERO), 1);
        assert_eq!(w.outstanding_data_at(Cycle::new(200)), 0);
    }

    #[test]
    fn stats_survive_crashes_and_keep_conserving() {
        let cfg = PersistBufferConfig { salvage_rate: 0.5, capacity: 4, ..armed() };
        let mut w = PersistBuffer::new(cfg, geom());
        let mut now = Cycle::ZERO;
        for round in 0..10u64 {
            for i in 0..6u64 {
                let addr = HwAddr::new((round * 6 + i) % 8 * 8192);
                let retire = now + Cycle::new(50 + i * 37);
                now = w.push(addr, &[round as u8], now, retire, WpqKind::Data);
            }
            if round % 3 == 0 {
                now = w.fence(now);
            }
            if round % 4 == 1 {
                w.crash(now + Cycle::new(13));
            }
            conservation_holds(&w);
        }
        assert!(w.stats().enqueued == 60);
        assert!(w.stats().fences >= 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        PersistBuffer::new(PersistBufferConfig { capacity: 0, ..armed() }, geom());
    }
}
