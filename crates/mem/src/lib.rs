//! Cycle-accounting DRAM and NVM device models for the ThyNVM simulator.
//!
//! The paper evaluates ThyNVM on gem5 with DDR3-interfaced DRAM and NVM
//! (Table 2). This crate rebuilds the relevant part of that substrate from
//! scratch:
//!
//! * [`device::Device`] — a banked memory device with per-bank row buffers
//!   and busy times. Row-buffer hits, clean misses and (for NVM) dirty
//!   misses pay the paper's latencies; bank conflicts serialize.
//! * [`queue::WriteQueue`] — a bounded memory-controller write queue. Writes
//!   retire in the background; a full queue back-pressures the issuer. The
//!   NVM write queue is flushed at the end of every checkpoint (§4.4).
//! * [`store::SparseStore`] — a byte-accurate backing store so that crash
//!   and recovery tests can verify *contents*, not just timing.
//! * [`fault::FaultModel`] — a deterministic, seedable NVM media-fault
//!   model (transient bit flips, wear-induced stuck-at cells, torn
//!   multi-word writes) that corrupts reads from the device/store so the
//!   controller's integrity protection can be exercised.
//! * [`fault::DramEccModel`] — a deterministic, seedable SEC-DED ECC model
//!   for the DRAM working region: single-bit transients are corrected and
//!   counted, multi-bit errors poison 64 B blocks that the controller must
//!   quarantine before they can reach NVM.
//! * [`wpq::PersistBuffer`] — the volatile persist buffer's *fault
//!   domain*: a bounded, banked, content-carrying WPQ whose entries drain
//!   out of order across banks (in order within a 64 B line), with a §4.4
//!   `fence` primitive and a seeded crash-time partial-flush model that
//!   salvages a retire-consistent prefix of each bank's pending writes.
//! * [`fault::SecurityModel`] — the secure persistent memory mode's
//!   crash-consistency state: per-block counter-mode encryption counters
//!   with epoch-boundary persistence, an integrity tree over the counter
//!   table, and a deterministic adversarial tamper schedule.
//!
//! # Example
//!
//! ```
//! use thynvm_mem::{Device, DeviceKind};
//! use thynvm_types::{AccessKind, Cycle, HwAddr, SystemConfig};
//!
//! let cfg = SystemConfig::paper();
//! let mut nvm = Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry);
//! // First touch opens the row: clean miss, 128 ns = 384 cycles.
//! let t1 = nvm.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
//! assert_eq!(t1, Cycle::new(384));
//! // Same row again: a row hit that starts once the first access's
//! // activation + burst (93 ns) release the bank.
//! let t2 = nvm.access(HwAddr::new(64), AccessKind::Read, 64, Cycle::ZERO);
//! assert_eq!(t2, Cycle::from_ns(93 + 40));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod fault;
pub mod queue;
pub mod store;
pub mod wpq;

pub use device::{Device, DeviceKind, DeviceStats, WearStats};
pub use fault::{DramEccModel, EccReadFault, FaultEvent, FaultModel, SecurityModel, SecurityPersist};
pub use queue::WriteQueue;
pub use store::SparseStore;
pub use wpq::{PersistBuffer, WpqCrashReport, WpqKind};
