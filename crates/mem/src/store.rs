//! Byte-accurate sparse backing store.
//!
//! The timing model alone cannot demonstrate *crash consistency* — for that
//! the simulator must track actual contents, crash at arbitrary points, and
//! verify that recovery produces a consistent image. `SparseStore` backs
//! each modeled memory region (DRAM, the NVM checkpoint regions, the
//! metadata backup region) with real bytes, allocated lazily page by page.
//!
//! Unwritten memory reads as zero, matching a freshly initialized device.

use std::collections::HashMap;

use thynvm_types::{HwAddr, PAGE_BYTES};

const PAGE: usize = PAGE_BYTES as usize;

/// A sparse, byte-addressable memory with lazy 4 KiB page allocation.
///
/// # Example
///
/// ```
/// use thynvm_mem::SparseStore;
/// use thynvm_types::HwAddr;
///
/// let mut m = SparseStore::new();
/// m.write(HwAddr::new(10), &[1, 2, 3]);
/// let mut buf = [0u8; 4];
/// m.read(HwAddr::new(9), &mut buf);
/// assert_eq!(buf, [0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseStore {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

impl SparseStore {
    /// Creates an empty store; all bytes read as zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages actually allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`. Unallocated ranges read
    /// as zero.
    pub fn read(&self, addr: HwAddr, buf: &mut [u8]) {
        let mut pos = addr.raw();
        let mut off = 0usize;
        while off < buf.len() {
            let page = pos / PAGE_BYTES;
            let in_page = (pos % PAGE_BYTES) as usize;
            let n = (PAGE - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(data) => buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            pos += n as u64;
            off += n;
        }
    }

    /// Writes `data` starting at `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: HwAddr, data: &[u8]) {
        let mut pos = addr.raw();
        let mut off = 0usize;
        while off < data.len() {
            let page = pos / PAGE_BYTES;
            let in_page = (pos % PAGE_BYTES) as usize;
            let n = (PAGE - in_page).min(data.len() - off);
            let slot = self.pages.entry(page).or_insert_with(|| Box::new([0u8; PAGE]));
            slot[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            pos += n as u64;
            off += n;
        }
    }

    /// Reads exactly one 64 B block starting at `addr`.
    pub fn read_block(&self, addr: HwAddr) -> [u8; 64] {
        let mut buf = [0u8; 64];
        self.read(addr, &mut buf);
        buf
    }

    /// Reads exactly one 4 KiB page starting at `addr`.
    pub fn read_page(&self, addr: HwAddr) -> Box<[u8; PAGE]> {
        let mut buf = Box::new([0u8; PAGE]);
        self.read(addr, &mut buf[..]);
        buf
    }

    /// Copies `len` bytes from `src` to `dst` within this store.
    pub fn copy_within(&mut self, src: HwAddr, dst: HwAddr, len: usize) {
        let mut buf = vec![0u8; len];
        self.read(src, &mut buf);
        self.write(dst, &buf);
    }

    /// Reads `buf.len()` bytes starting at `addr` through a media-fault
    /// model: the true bytes are fetched, then corrupted as the device
    /// would have corrupted them. Returns the fault kind when the buffer
    /// was corrupted.
    pub fn read_faulty(
        &self,
        addr: HwAddr,
        buf: &mut [u8],
        fault: &mut crate::fault::FaultModel,
    ) -> Option<thynvm_types::FaultKind> {
        self.read(addr, buf);
        fault.corrupt_read(addr, buf)
    }

    /// Discards all contents — the volatile-device crash model.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Iterates over `(page index, page data)` pairs of allocated pages, in
    /// unspecified order.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u8; PAGE])> {
        self.pages.iter().map(|(&idx, data)| (idx, &**data))
    }

    /// A content-based fingerprint of the store: an FNV-1a hash over the
    /// allocated pages in address order, skipping all-zero pages so that an
    /// unallocated page and a page written full of zeros hash identically.
    /// Two stores with equal fingerprints hold (with overwhelming
    /// probability) byte-identical contents — a cheap stand-in for full
    /// image comparison in soak tests.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut idxs: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, data)| data.iter().any(|&b| b != 0))
            .map(|(&idx, _)| idx)
            .collect();
        idxs.sort_unstable();
        let mut h = FNV_OFFSET;
        for idx in idxs {
            for b in idx.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            let data = &self.pages[&idx];
            for &b in data.iter() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_reads_zero() {
        let m = SparseStore::new();
        let mut buf = [0xffu8; 16];
        m.read(HwAddr::new(12345), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(100), b"hello");
        let mut buf = [0u8; 5];
        m.read(HwAddr::new(100), &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(m.allocated_pages(), 1);
    }

    #[test]
    fn write_across_page_boundary() {
        let mut m = SparseStore::new();
        let addr = HwAddr::new(PAGE_BYTES - 2);
        m.write(addr, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn read_across_allocated_and_unallocated() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(PAGE_BYTES - 1), &[9]);
        let mut buf = [7u8; 3];
        m.read(HwAddr::new(PAGE_BYTES - 2), &mut buf);
        // Byte before the write is zero, the write, then zero from next page.
        assert_eq!(buf, [0, 9, 0]);
    }

    #[test]
    fn read_block_is_64_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(64), &[0xab; 64]);
        assert_eq!(m.read_block(HwAddr::new(64)), [0xab; 64]);
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
    }

    #[test]
    fn read_page_is_4096_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(4096), &[3u8; 4096]);
        assert_eq!(m.read_page(HwAddr::new(4096))[..], [3u8; 4096][..]);
    }

    #[test]
    fn copy_within_moves_data() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), b"abcdef");
        m.copy_within(HwAddr::new(0), HwAddr::new(8192), 6);
        let mut buf = [0u8; 6];
        m.read(HwAddr::new(8192), &mut buf);
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn copy_within_overlapping_regions_via_buffer() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1, 2, 3, 4]);
        m.copy_within(HwAddr::new(0), HwAddr::new(2), 4);
        let mut buf = [0u8; 6];
        m.read(HwAddr::new(0), &mut buf);
        assert_eq!(buf, [1, 2, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_models_volatility() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1; 64]);
        m.clear();
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1, 1, 1, 1]);
        m.write(HwAddr::new(1), &[2, 2]);
        let mut buf = [0u8; 4];
        m.read(HwAddr::new(0), &mut buf);
        assert_eq!(buf, [1, 2, 2, 1]);
    }

    #[test]
    fn iter_pages_visits_all() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1]);
        m.write(HwAddr::new(3 * PAGE_BYTES), &[2]);
        let mut idxs: Vec<u64> = m.iter_pages().map(|(i, _)| i).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, vec![0, 3]);
    }

    #[test]
    fn read_faulty_corrupts_through_the_model() {
        use thynvm_types::MediaFaultConfig;
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[0u8; 64]);
        let mut fault = crate::fault::FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        let mut buf = [0u8; 64];
        let kind = m.read_faulty(HwAddr::new(0), &mut buf, &mut fault);
        assert_eq!(kind, Some(thynvm_types::FaultKind::BitFlip));
        assert_ne!(buf, [0u8; 64], "delivered bytes differ from stored bytes");
        // The store itself is untouched.
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
    }

    #[test]
    fn fingerprint_is_content_based() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Writing zeros allocates a page but must not change the hash.
        a.write(HwAddr::new(0), &[0u8; 64]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write(HwAddr::new(5), &[42]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.write(HwAddr::new(5), &[42]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same byte at a different address hashes differently.
        let mut c = SparseStore::new();
        c.write(HwAddr::new(6), &[42]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Distinct pages with swapped contents differ too.
        let mut d = SparseStore::new();
        d.write(HwAddr::new(5 + 4096), &[42]);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn equality_compares_contents() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        a.write(HwAddr::new(5), &[42]);
        assert_ne!(a, b);
        b.write(HwAddr::new(5), &[42]);
        assert_eq!(a, b);
    }
}
