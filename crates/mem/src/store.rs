//! Byte-accurate sparse backing store.
//!
//! The timing model alone cannot demonstrate *crash consistency* — for that
//! the simulator must track actual contents, crash at arbitrary points, and
//! verify that recovery produces a consistent image. `SparseStore` backs
//! each modeled memory region (DRAM, the NVM checkpoint regions, the
//! metadata backup region) with real bytes, allocated lazily page by page.
//!
//! Unwritten memory reads as zero, matching a freshly initialized device.
//!
//! # Hot-path structure
//!
//! Page payloads live in a `Vec` arena; a deterministic-hash index maps
//! page number to arena slot. Splitting storage from the index enables a
//! one-entry *last-page cache* (a plain `(page, slot)` field): consecutive
//! small accesses to the same 4 KiB page — the common case for the 64 B
//! block traffic the controller generates — skip the hash lookup entirely.
//! The cache is purely an index shortcut; it never affects contents. Only
//! `&mut self` paths update it (shared-borrow reads consult it read-only),
//! keeping the store free of interior mutability so a future sharded
//! front-end can hand out `&SparseStore` across threads (lint rule L9).

use thynvm_types::{FxHashMap, HwAddr, PAGE_BYTES};

const PAGE: usize = PAGE_BYTES as usize;

/// Sentinel page number for an empty last-page cache. No reachable page
/// uses it: page numbers are `addr / 4096 <= u64::MAX / 4096`.
const NO_PAGE: u64 = u64::MAX;

/// A sparse, byte-addressable memory with lazy 4 KiB page allocation.
///
/// Equality is *content-based*: a page that was allocated and holds only
/// zeros compares equal to a page that was never allocated, exactly as
/// [`SparseStore::fingerprint`] treats them. (A derived `PartialEq` once
/// distinguished the two, so `a == b` and `a.fingerprint() ==
/// b.fingerprint()` could disagree on byte-identical stores.)
///
/// # Example
///
/// ```
/// use thynvm_mem::SparseStore;
/// use thynvm_types::HwAddr;
///
/// let mut m = SparseStore::new();
/// m.write(HwAddr::new(10), &[1, 2, 3]);
/// let mut buf = [0u8; 4];
/// m.read(HwAddr::new(9), &mut buf);
/// assert_eq!(buf, [0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseStore {
    /// Page number → slot in `arena`.
    index: FxHashMap<u64, u32>,
    /// Page payloads; slots are never freed individually (only [`clear`]
    /// drops them), so cached slot numbers stay valid.
    ///
    /// [`clear`]: SparseStore::clear
    arena: Vec<Box<[u8; PAGE]>>,
    /// Last `(page number, arena slot)` resolved on a `&mut` path, to
    /// short-circuit the index lookup on consecutive accesses to one page.
    last: (u64, u32),
}

impl SparseStore {
    /// Creates an empty store; all bytes read as zero.
    pub fn new() -> Self {
        Self { index: FxHashMap::default(), arena: Vec::new(), last: (NO_PAGE, 0) }
    }

    /// Number of 4 KiB pages actually allocated.
    pub fn allocated_pages(&self) -> usize {
        self.arena.len()
    }

    /// Resolves a page number to its arena slot through the one-entry
    /// cache, or `None` when the page was never allocated.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<u32> {
        let (cached_page, cached_slot) = self.last;
        if cached_page == page {
            return Some(cached_slot);
        }
        self.index.get(&page).copied()
    }

    /// Resolves a page number to its arena slot, allocating a zeroed page
    /// on first touch. The exclusive borrow is what lets this path refresh
    /// the last-page cache.
    #[inline]
    fn slot_of_mut(&mut self, page: u64) -> u32 {
        if let Some(slot) = self.slot_of(page) {
            self.last = (page, slot);
            return slot;
        }
        let slot = u32::try_from(self.arena.len()).expect("fewer than 2^32 allocated pages");
        self.arena.push(Box::new([0u8; PAGE]));
        self.index.insert(page, slot);
        self.last = (page, slot);
        slot
    }

    /// Reads `buf.len()` bytes starting at `addr`. Unallocated ranges read
    /// as zero.
    pub fn read(&self, addr: HwAddr, buf: &mut [u8]) {
        let mut pos = addr.raw();
        let mut off = 0usize;
        while off < buf.len() {
            let page = pos / PAGE_BYTES;
            let in_page = (pos % PAGE_BYTES) as usize;
            let n = (PAGE - in_page).min(buf.len() - off);
            match self.slot_of(page) {
                Some(slot) => {
                    let data = &self.arena[slot as usize];
                    buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]);
                }
                None => buf[off..off + n].fill(0),
            }
            pos += n as u64;
            off += n;
        }
    }

    /// Writes `data` starting at `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: HwAddr, data: &[u8]) {
        let mut pos = addr.raw();
        let mut off = 0usize;
        while off < data.len() {
            let page = pos / PAGE_BYTES;
            let in_page = (pos % PAGE_BYTES) as usize;
            let n = (PAGE - in_page).min(data.len() - off);
            let slot = self.slot_of_mut(page);
            self.arena[slot as usize][in_page..in_page + n]
                .copy_from_slice(&data[off..off + n]);
            pos += n as u64;
            off += n;
        }
    }

    /// Reads exactly one 64 B block starting at `addr`.
    pub fn read_block(&self, addr: HwAddr) -> [u8; 64] {
        let mut buf = [0u8; 64];
        self.read(addr, &mut buf);
        buf
    }

    /// Reads exactly one 4 KiB page starting at `addr`.
    pub fn read_page(&self, addr: HwAddr) -> Box<[u8; PAGE]> {
        let mut buf = Box::new([0u8; PAGE]);
        self.read(addr, &mut buf[..]);
        buf
    }

    /// Copies `len` bytes from `src` to `dst` within this store.
    ///
    /// Semantics are *snapshot*: the bytes written at `dst` are the bytes
    /// `src` held before the copy began, even when the ranges overlap.
    /// Disjoint ranges stream through a small stack buffer; only genuine
    /// overlap pays for a full heap snapshot of the source.
    pub fn copy_within(&mut self, src: HwAddr, dst: HwAddr, len: usize) {
        let (s, d) = (src.raw(), dst.raw());
        let overlaps = s < d.saturating_add(len as u64) && d < s.saturating_add(len as u64);
        if overlaps && s != d {
            let mut buf = vec![0u8; len];
            self.read(src, &mut buf);
            self.write(dst, &buf);
            return;
        }
        if s == d {
            return;
        }
        let mut buf = [0u8; 512];
        let mut done = 0usize;
        while done < len {
            let n = (len - done).min(buf.len());
            self.read(src.offset(done as u64), &mut buf[..n]);
            self.write(dst.offset(done as u64), &buf[..n]);
            done += n;
        }
    }

    /// Reads `buf.len()` bytes starting at `addr` through a media-fault
    /// model: the true bytes are fetched, then corrupted as the device
    /// would have corrupted them. Returns the fault kind when the buffer
    /// was corrupted.
    pub fn read_faulty(
        &self,
        addr: HwAddr,
        buf: &mut [u8],
        fault: &mut crate::fault::FaultModel,
    ) -> Option<thynvm_types::FaultKind> {
        self.read(addr, buf);
        fault.corrupt_read(addr, buf)
    }

    /// Discards all contents — the volatile-device crash model.
    pub fn clear(&mut self) {
        self.index.clear();
        self.arena.clear();
        self.last = (NO_PAGE, 0);
    }

    /// Iterates over `(page index, page data)` pairs of allocated pages, in
    /// unspecified order.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u8; PAGE])> {
        self.index.iter().map(|(&idx, &slot)| (idx, &*self.arena[slot as usize]))
    }

    /// A content-based fingerprint of the store: an FNV-1a-style hash over
    /// the allocated pages in address order, word at a time, skipping
    /// all-zero pages so that an unallocated page and a page written full
    /// of zeros hash identically. Two stores with equal fingerprints hold
    /// (with overwhelming probability) byte-identical contents — a cheap
    /// stand-in for full image comparison in soak tests.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_with_basis(0)
    }

    /// A *keyed* content fingerprint: the same hash as
    /// [`SparseStore::fingerprint`] but folded over a caller-supplied
    /// basis. Two stores agree for a given basis iff their contents agree;
    /// different bases produce unrelated hashes for the same contents.
    /// The security model uses this as its modeled MAC — the basis plays
    /// the role of the MAC key, so an attacker mutating stored bytes
    /// cannot preserve the keyed digest.
    pub fn fingerprint_with_basis(&self, basis: u64) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut pages: Vec<(u64, &[u8; PAGE])> =
            self.iter_pages().filter(|(_, data)| !page_is_zero(data)).collect();
        pages.sort_unstable_by_key(|&(idx, _)| idx);
        let mut h = FNV_OFFSET ^ basis.wrapping_mul(FNV_PRIME);
        for (idx, data) in pages {
            h = (h ^ idx).wrapping_mul(FNV_PRIME);
            for chunk in data.chunks_exact(8) {
                let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                h = (h ^ word).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

/// Whether a page holds only zero bytes, checked a word at a time.
#[inline]
fn page_is_zero(data: &[u8; PAGE]) -> bool {
    data.chunks_exact(8)
        .all(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) == 0)
}

impl PartialEq for SparseStore {
    /// Content-based equality, agreeing with [`SparseStore::fingerprint`]:
    /// allocated-but-all-zero pages are indistinguishable from unallocated
    /// ones.
    fn eq(&self, other: &Self) -> bool {
        let nonzero = |s: &Self| {
            s.iter_pages().filter(|(_, data)| !page_is_zero(data)).count()
        };
        if nonzero(self) != nonzero(other) {
            return false;
        }
        self.iter_pages().all(|(idx, data)| {
            if page_is_zero(data) {
                return true;
            }
            match other.slot_of(idx) {
                Some(slot) => other.arena[slot as usize][..] == data[..],
                None => false,
            }
        })
    }
}

impl Eq for SparseStore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_reads_zero() {
        let m = SparseStore::new();
        let mut buf = [0xffu8; 16];
        m.read(HwAddr::new(12345), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(100), b"hello");
        let mut buf = [0u8; 5];
        m.read(HwAddr::new(100), &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(m.allocated_pages(), 1);
    }

    #[test]
    fn write_across_page_boundary() {
        let mut m = SparseStore::new();
        let addr = HwAddr::new(PAGE_BYTES - 2);
        m.write(addr, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn read_across_allocated_and_unallocated() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(PAGE_BYTES - 1), &[9]);
        let mut buf = [7u8; 3];
        m.read(HwAddr::new(PAGE_BYTES - 2), &mut buf);
        // Byte before the write is zero, the write, then zero from next page.
        assert_eq!(buf, [0, 9, 0]);
    }

    #[test]
    fn read_block_is_64_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(64), &[0xab; 64]);
        assert_eq!(m.read_block(HwAddr::new(64)), [0xab; 64]);
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
    }

    #[test]
    fn read_page_is_4096_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(4096), &[3u8; 4096]);
        assert_eq!(m.read_page(HwAddr::new(4096))[..], [3u8; 4096][..]);
    }

    #[test]
    fn copy_within_moves_data() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), b"abcdef");
        m.copy_within(HwAddr::new(0), HwAddr::new(8192), 6);
        let mut buf = [0u8; 6];
        m.read(HwAddr::new(8192), &mut buf);
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn copy_within_overlapping_regions_via_buffer() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1, 2, 3, 4]);
        m.copy_within(HwAddr::new(0), HwAddr::new(2), 4);
        let mut buf = [0u8; 6];
        m.read(HwAddr::new(0), &mut buf);
        assert_eq!(buf, [1, 2, 1, 2, 3, 4]);
    }

    #[test]
    fn copy_within_overlapping_backward_snapshots_too() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(2), &[1, 2, 3, 4]);
        m.copy_within(HwAddr::new(2), HwAddr::new(0), 4);
        let mut buf = [0u8; 6];
        m.read(HwAddr::new(0), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 3, 4]);
    }

    #[test]
    fn copy_within_identical_ranges_is_a_noop() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(64), &[5, 6, 7]);
        m.copy_within(HwAddr::new(64), HwAddr::new(64), 3);
        assert_eq!(&m.read_block(HwAddr::new(64))[..3], &[5, 6, 7]);
    }

    #[test]
    fn copy_within_larger_than_stack_chunk() {
        // Exercise the chunked (disjoint) path across several 512 B chunks
        // and a page boundary.
        let mut m = SparseStore::new();
        let src: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        m.write(HwAddr::new(100), &src);
        m.copy_within(HwAddr::new(100), HwAddr::new(100_000), src.len());
        let mut back = vec![0u8; src.len()];
        m.read(HwAddr::new(100_000), &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn clear_models_volatility() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1; 64]);
        m.clear();
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1, 1, 1, 1]);
        m.write(HwAddr::new(1), &[2, 2]);
        let mut buf = [0u8; 4];
        m.read(HwAddr::new(0), &mut buf);
        assert_eq!(buf, [1, 2, 2, 1]);
    }

    #[test]
    fn iter_pages_visits_all() {
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[1]);
        m.write(HwAddr::new(3 * PAGE_BYTES), &[2]);
        let mut idxs: Vec<u64> = m.iter_pages().map(|(i, _)| i).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, vec![0, 3]);
    }

    #[test]
    fn read_faulty_corrupts_through_the_model() {
        use thynvm_types::MediaFaultConfig;
        let mut m = SparseStore::new();
        m.write(HwAddr::new(0), &[0u8; 64]);
        let mut fault = crate::fault::FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        let mut buf = [0u8; 64];
        let kind = m.read_faulty(HwAddr::new(0), &mut buf, &mut fault);
        assert_eq!(kind, Some(thynvm_types::FaultKind::BitFlip));
        assert_ne!(buf, [0u8; 64], "delivered bytes differ from stored bytes");
        // The store itself is untouched.
        assert_eq!(m.read_block(HwAddr::new(0)), [0u8; 64]);
    }

    #[test]
    fn fingerprint_is_content_based() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Writing zeros allocates a page but must not change the hash.
        a.write(HwAddr::new(0), &[0u8; 64]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write(HwAddr::new(5), &[42]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.write(HwAddr::new(5), &[42]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same byte at a different address hashes differently.
        let mut c = SparseStore::new();
        c.write(HwAddr::new(6), &[42]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Distinct pages with swapped contents differ too.
        let mut d = SparseStore::new();
        d.write(HwAddr::new(5 + 4096), &[42]);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn keyed_fingerprint_separates_bases_and_tracks_contents() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        a.write(HwAddr::new(5), &[42]);
        b.write(HwAddr::new(5), &[42]);
        // Basis 0 is the plain fingerprint.
        assert_eq!(a.fingerprint_with_basis(0), a.fingerprint());
        // Same contents, same basis: same MAC.
        assert_eq!(a.fingerprint_with_basis(0x1234), b.fingerprint_with_basis(0x1234));
        // Same contents, different basis (key): unrelated MACs.
        assert_ne!(a.fingerprint_with_basis(1), a.fingerprint_with_basis(2));
        // Tampering with one byte breaks the keyed MAC.
        b.write(HwAddr::new(5), &[43]);
        assert_ne!(a.fingerprint_with_basis(0x1234), b.fingerprint_with_basis(0x1234));
        // Zero-page insensitivity holds for every basis.
        a.write(HwAddr::new(9000), &[0u8; 64]);
        let mut c = SparseStore::new();
        c.write(HwAddr::new(5), &[42]);
        assert_eq!(a.fingerprint_with_basis(7), c.fingerprint_with_basis(7));
    }

    #[test]
    fn equality_compares_contents() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        a.write(HwAddr::new(5), &[42]);
        assert_ne!(a, b);
        b.write(HwAddr::new(5), &[42]);
        assert_eq!(a, b);
    }

    #[test]
    fn equality_agrees_with_fingerprint_on_zero_pages() {
        // Regression: the derived PartialEq distinguished an allocated
        // all-zero page from an unallocated one, while fingerprint() did
        // not — the two observers disagreed on byte-identical stores.
        let mut a = SparseStore::new();
        let b = SparseStore::new();
        a.write(HwAddr::new(0), &[0u8; 64]);
        assert_eq!(a.allocated_pages(), 1);
        assert_eq!(b.allocated_pages(), 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b, "equality must agree with the fingerprint");
        assert_eq!(b, a, "content equality is symmetric");
        // Overwriting a real byte back to zero re-merges the stores too.
        let mut c = SparseStore::new();
        c.write(HwAddr::new(9), &[7]);
        assert_ne!(c, b);
        c.write(HwAddr::new(9), &[0]);
        assert_eq!(c, b);
        // And a nonzero page still separates them.
        c.write(HwAddr::new(9), &[7]);
        assert_ne!(c, b);
    }

    #[test]
    fn equality_mixed_zero_and_nonzero_pages() {
        let mut a = SparseStore::new();
        let mut b = SparseStore::new();
        a.write(HwAddr::new(0), &[0u8; PAGE]); // zero page, allocated
        a.write(HwAddr::new(2 * PAGE_BYTES), &[1, 2, 3]);
        b.write(HwAddr::new(2 * PAGE_BYTES), &[1, 2, 3]);
        assert_eq!(a, b);
        // Different nonzero page sets differ.
        b.write(HwAddr::new(PAGE_BYTES), &[9]);
        assert_ne!(a, b);
    }

    #[test]
    fn last_page_cache_survives_interleaved_access() {
        // Interleave reads/writes across pages so the one-entry cache is
        // repeatedly invalidated and repopulated; contents must be exact.
        let mut m = SparseStore::new();
        for i in 0..4u64 {
            m.write(HwAddr::new(i * PAGE_BYTES + 7), &[i as u8 + 1]);
        }
        for round in 0..3u64 {
            for i in (0..4u64).rev() {
                let mut buf = [0u8; 1];
                m.read(HwAddr::new(i * PAGE_BYTES + 7), &mut buf);
                assert_eq!(buf[0], i as u8 + 1, "round {round} page {i}");
            }
        }
        m.clear();
        let mut buf = [9u8; 1];
        m.read(HwAddr::new(7), &mut buf);
        assert_eq!(buf[0], 0, "cache must not outlive clear()");
    }
}
