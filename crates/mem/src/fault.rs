//! Deterministic NVM media-fault model.
//!
//! Real NVM is not a perfect store: cells suffer transient bit flips, wear
//! out into stuck-at faults, and a power loss can tear a multi-word write so
//! that only a prefix of the words persists. [`FaultModel`] models all three
//! so the controller's integrity protection (per-64 B CRCs, checksummed
//! metadata, retry/remap/scrub healing) can be exercised and validated.
//!
//! Every decision the model makes is a pure function of the configured seed
//! and the sequence of device operations it has observed — there is no
//! global RNG state, no clock, and no OS entropy. Two models built from the
//! same [`MediaFaultConfig`] and fed the same operation sequence produce
//! byte-identical fault schedules, which is what lets the crash-replay
//! sweeps reproduce a faulty run exactly (the vendored proptest shim cannot
//! replay upstream seed hashes, so determinism must come from the model
//! itself).

use std::collections::{BTreeMap, BTreeSet};

use thynvm_types::rng::{mix, unit};
use thynvm_types::{
    DramFaultConfig, FaultKind, HwAddr, MediaFaultConfig, SecurityConfig, BLOCK_BYTES,
};

use crate::device::WearStats;

/// One corrupted read as decided by the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device address of the corrupted byte.
    pub addr: u64,
    /// XOR mask of the flipped bit(s) within that byte.
    pub mask: u8,
    /// Classification of the fault.
    pub kind: FaultKind,
}

/// Deterministic, seedable model of NVM media faults: transient bit flips,
/// wear-induced stuck-at cells, and torn multi-word writes.
///
/// The model keys every decision on a counter of observed operations mixed
/// with the seed (splitmix64), so schedules replay exactly. Wear is tracked
/// per device row with the same row granularity as [`crate::Device`], and
/// can be summarized through the existing [`WearStats`] shape.
#[derive(Debug, Clone)]
pub struct FaultModel {
    seed: u64,
    bit_flip_rate: f64,
    stuck_at_threshold: u64,
    torn_writes: bool,
    row_bytes: u64,
    reads_seen: u64,
    writes_seen: u64,
    torn_seen: u64,
    forced_flips: u32,
    row_writes: BTreeMap<u64, u64>,
    stuck: BTreeMap<u64, u8>,
}

/// Domain-separation tags mixed into the seed so the read, wear, and torn
/// schedules are independent streams.
const TAG_READ: u64 = 0x5245_4144; // "READ"
const TAG_WEAR: u64 = 0x5745_4152; // "WEAR"
const TAG_TORN: u64 = 0x544f_524e; // "TORN"

impl FaultModel {
    /// Builds a model from the configuration, using the device's row size
    /// for wear granularity.
    pub fn new(cfg: &MediaFaultConfig, row_bytes: u64) -> Self {
        Self {
            seed: cfg.seed,
            bit_flip_rate: cfg.bit_flip_rate,
            stuck_at_threshold: cfg.stuck_at_threshold,
            torn_writes: cfg.torn_writes,
            row_bytes: row_bytes.max(1),
            reads_seen: 0,
            writes_seen: 0,
            torn_seen: 0,
            forced_flips: 0,
            row_writes: BTreeMap::new(),
            stuck: BTreeMap::new(),
        }
    }

    /// Observes one device write of `bytes` at `addr`, feeding the wear
    /// model. When the write pushes its row across the stuck-at threshold,
    /// one cell inside the just-written range becomes permanently stuck and
    /// its address is returned (exactly once per row).
    pub fn record_write(&mut self, addr: HwAddr, bytes: u32) -> Option<u64> {
        self.writes_seen += 1;
        if self.stuck_at_threshold == 0 {
            return None;
        }
        let row = addr.raw() / self.row_bytes;
        let count = self.row_writes.entry(row).or_insert(0);
        *count += 1;
        if *count != self.stuck_at_threshold {
            return None;
        }
        // The row just wore out: pick a deterministic cell within the write
        // that triggered it and a bit inside that cell.
        let h = mix(self.seed ^ TAG_WEAR, row);
        let span = u64::from(bytes).max(1);
        let cell = addr.raw() + h % span;
        let mask = 1u8 << ((h >> 8) % 8);
        self.stuck.insert(cell, mask);
        Some(cell)
    }

    /// Decides whether a read of `bytes` at `addr` is corrupted.
    ///
    /// Stuck cells corrupt every read that covers them; otherwise a
    /// transient flip fires with the configured per-read probability. The
    /// transient stream always advances, so the schedule downstream of this
    /// read does not depend on which branch was taken.
    pub fn read_fault(&mut self, addr: HwAddr, bytes: u32) -> Option<FaultEvent> {
        self.reads_seen += 1;
        let base = addr.raw();
        let span = u64::from(bytes).max(1);
        if self.forced_flips > 0 {
            self.forced_flips -= 1;
            return Some(FaultEvent { addr: base, mask: 0x01, kind: FaultKind::BitFlip });
        }
        if let Some((&cell, &mask)) = self.stuck.range(base..base + span).next() {
            return Some(FaultEvent { addr: cell, mask, kind: FaultKind::StuckAt });
        }
        if self.bit_flip_rate > 0.0 {
            let h = mix(self.seed ^ TAG_READ, self.reads_seen);
            if unit(h) < self.bit_flip_rate {
                let addr = base + (h >> 17) % span;
                let mask = 1u8 << ((h >> 3) % 8);
                return Some(FaultEvent { addr, mask, kind: FaultKind::BitFlip });
            }
        }
        None
    }

    /// Whether this model can currently corrupt any read: the transient
    /// rate is zero (immutable after construction), no flip is armed, and
    /// no cell is stuck. Callers may skip [`FaultModel::read_fault`] for a
    /// quiet model — the transient stream is only consulted when the rate
    /// is nonzero, so the skipped `reads_seen` increments are unobservable
    /// and the fault schedule stays bit-identical. Wear and torn-write
    /// state do not affect read decisions and are tracked separately.
    pub fn is_quiet(&self) -> bool {
        self.bit_flip_rate == 0.0 && self.forced_flips == 0 && self.stuck.is_empty()
    }

    /// Applies a fault (if any) to a buffer just read from `addr`, XOR-ing
    /// the corrupted byte in place. Returns the fault kind when the buffer
    /// was corrupted.
    ///
    /// This is the integration point for byte-accurate stores such as
    /// [`crate::SparseStore`]: the caller reads the true bytes, then lets
    /// the model corrupt them as the device would have.
    pub fn corrupt_read(&mut self, addr: HwAddr, buf: &mut [u8]) -> Option<FaultKind> {
        let len = u32::try_from(buf.len()).unwrap_or(u32::MAX);
        let ev = self.read_fault(addr, len)?;
        let idx = (ev.addr - addr.raw()) as usize;
        if let Some(byte) = buf.get_mut(idx) {
            *byte ^= ev.mask;
        }
        Some(ev.kind)
    }

    /// How many leading words of a `words`-long device commit persist when
    /// power is lost mid-write. Returns a value in `0..words` when torn
    /// writes are modeled, or `words` (everything persisted) otherwise.
    pub fn torn_words(&mut self, words: usize) -> usize {
        if !self.torn_writes || words == 0 {
            return words;
        }
        self.torn_seen += 1;
        let h = mix(self.seed ^ TAG_TORN, self.torn_seen);
        (h % words as u64) as usize
    }

    /// Arms `n` guaranteed transient bit flips: each of the next `n` reads
    /// is corrupted once and reads back clean on retry. A test and demo
    /// hook for exercising the heal-by-retry path deterministically.
    pub fn arm_transient_flips(&mut self, n: u32) {
        self.forced_flips += n;
    }

    /// Repairs a stuck cell (models the block being remapped away from the
    /// bad location). Returns whether a cell was actually stuck there.
    pub fn repair(&mut self, addr: u64) -> bool {
        self.stuck.remove(&addr).is_some()
    }

    /// All currently stuck cells as `(address, stuck bit mask)`, in address
    /// order.
    pub fn stuck_cells(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.stuck.iter().map(|(&a, &m)| (a, m))
    }

    /// Whether any cell in `[addr, addr + bytes)` is stuck.
    pub fn is_stuck_range(&self, addr: HwAddr, bytes: u32) -> bool {
        let base = addr.raw();
        self.stuck.range(base..base + u64::from(bytes).max(1)).next().is_some()
    }

    /// Wear summary of the writes this model has observed, in the same
    /// shape the device reports.
    pub fn wear(&self) -> WearStats {
        let rows_written = self.row_writes.len() as u64;
        let total_writes: u64 = self.row_writes.values().sum();
        let max_row_writes = self.row_writes.values().copied().max().unwrap_or(0);
        let imbalance = if rows_written == 0 {
            0.0
        } else {
            max_row_writes as f64 / (total_writes as f64 / rows_written as f64)
        };
        WearStats { rows_written, total_writes, max_row_writes, imbalance }
    }
}

/// Outcome of one SEC-DED-checked DRAM read, as decided by
/// [`DramEccModel::observe_read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccReadFault {
    /// A single-bit transient the SEC-DED code corrected: the delivered
    /// data is good, the event only needs counting.
    Corrected,
    /// A multi-bit error the code can detect but not correct: the 64 B
    /// block at device offset `block` is poisoned. `fresh` is `true` the
    /// first time the block is reported and `false` on every re-read of an
    /// already-poisoned block.
    Poisoned {
        /// Block-aligned device offset of the poisoned 64 B block.
        block: u64,
        /// Whether this read created the poison (count it once).
        fresh: bool,
    },
}

/// Deterministic, seedable SEC-DED ECC model for the DRAM working region.
///
/// Mirrors [`FaultModel`]'s determinism contract: every decision is a pure
/// function of the configured seed and the read counter, so fault
/// schedules replay exactly across runs. Single-bit transients are
/// corrected in place by the code; multi-bit errors poison whole 64 B
/// blocks, which stay poisoned (the stored data itself is corrupt, so
/// re-reads keep failing) until the block is rewritten whole, re-fetched
/// from NVM, or power is lost — DRAM poison is volatile.
#[derive(Debug, Clone)]
pub struct DramEccModel {
    seed: u64,
    flip_rate: f64,
    poison_rate: f64,
    reads_seen: u64,
    forced_flips: u32,
    forced_poisons: u32,
    poisoned: BTreeSet<u64>,
}

/// Domain-separation tags for the DRAM ECC streams (distinct from the NVM
/// model's `TAG_READ`/`TAG_WEAR`/`TAG_TORN` so equal seeds would still
/// decorrelate — though the config layer additionally rejects equal seeds).
const TAG_ECC_FLIP: u64 = 0x4543_4346; // "ECCF"
const TAG_ECC_POISON: u64 = 0x4543_4350; // "ECCP"

impl DramEccModel {
    /// Builds a model from the configuration.
    pub fn new(cfg: &DramFaultConfig) -> Self {
        Self {
            seed: cfg.seed,
            flip_rate: cfg.flip_rate,
            poison_rate: cfg.poison_rate,
            reads_seen: 0,
            forced_flips: 0,
            forced_poisons: 0,
            poisoned: BTreeSet::new(),
        }
    }

    /// Observes one ECC-checked DRAM read of `bytes` at device offset
    /// `off` and decides its outcome.
    ///
    /// A read covering an already-poisoned block always reports that block
    /// (`fresh: false`): its stored data is corrupt, so the check keeps
    /// failing. Otherwise the seeded streams decide — a multi-bit error
    /// poisons one block inside the span, a single-bit transient is
    /// corrected. Both streams advance on every read, so the downstream
    /// schedule does not depend on which branch was taken.
    pub fn observe_read(&mut self, off: u64, bytes: u32) -> Option<EccReadFault> {
        self.reads_seen += 1;
        let span = u64::from(bytes).max(1);
        if self.forced_poisons > 0 {
            self.forced_poisons -= 1;
            let block = off & !(BLOCK_BYTES - 1);
            let fresh = self.poisoned.insert(block);
            return Some(EccReadFault::Poisoned { block, fresh });
        }
        if let Some(block) = self.first_poisoned_in(off, span) {
            return Some(EccReadFault::Poisoned { block, fresh: false });
        }
        if self.forced_flips > 0 {
            self.forced_flips -= 1;
            return Some(EccReadFault::Corrected);
        }
        // The hashes are only *consulted* when the corresponding rate is
        // armed; computing them lazily keeps the zero-rate path to a
        // counter increment without changing any armed schedule (each
        // stream is a pure function of seed and `reads_seen`).
        if self.poison_rate > 0.0 {
            let hp = mix(self.seed ^ TAG_ECC_POISON, self.reads_seen);
            if unit(hp) < self.poison_rate {
                let block = (off + (hp >> 17) % span) & !(BLOCK_BYTES - 1);
                self.poisoned.insert(block);
                return Some(EccReadFault::Poisoned { block, fresh: true });
            }
        }
        if self.flip_rate > 0.0 {
            let hf = mix(self.seed ^ TAG_ECC_FLIP, self.reads_seen);
            if unit(hf) < self.flip_rate {
                return Some(EccReadFault::Corrected);
            }
        }
        None
    }

    /// Whether this model can currently produce any fault at all: both
    /// rates are zero (immutable after construction), no test hook is
    /// armed, and no block is poisoned. Callers may skip [`observe_read`]
    /// entirely for a quiet model — the seeded streams are only consulted
    /// when a rate is nonzero, so the skipped counter increments are
    /// unobservable and the fault schedule stays bit-identical.
    ///
    /// [`observe_read`]: DramEccModel::observe_read
    pub fn is_quiet(&self) -> bool {
        self.flip_rate == 0.0
            && self.poison_rate == 0.0
            && self.forced_flips == 0
            && self.forced_poisons == 0
            && self.poisoned.is_empty()
    }

    /// Observes one DRAM write: blocks *fully* covered by
    /// `[off, off + bytes)` are rewritten with a freshly encoded ECC word,
    /// clearing their poison. Partial overwrites leave the poison in place
    /// (the ECC word still covers stale corrupt bytes). Returns how many
    /// poisoned blocks the write cleared.
    pub fn note_write(&mut self, off: u64, bytes: u32) -> usize {
        if self.poisoned.is_empty() {
            return 0;
        }
        let end = off + u64::from(bytes);
        let first = off.next_multiple_of(BLOCK_BYTES);
        let last = end & !(BLOCK_BYTES - 1);
        if first >= last {
            return 0;
        }
        let cleared: Vec<u64> = self.poisoned.range(first..last).copied().collect();
        for b in &cleared {
            self.poisoned.remove(b);
        }
        cleared.len()
    }

    /// Poisoned blocks intersecting `[off, off + len)`, in address order.
    pub fn poisoned_in(&self, off: u64, len: u64) -> Vec<u64> {
        let start = off.saturating_sub(BLOCK_BYTES - 1) & !(BLOCK_BYTES - 1);
        self.poisoned
            .range(start..off.saturating_add(len.max(1)))
            .copied()
            .filter(|&b| b + BLOCK_BYTES > off)
            .collect()
    }

    /// The lowest poisoned block intersecting `[off, off + len)`, without
    /// allocating — the hot-path form of [`DramEccModel::poisoned_in`].
    pub fn first_poisoned_in(&self, off: u64, len: u64) -> Option<u64> {
        if self.poisoned.is_empty() {
            return None;
        }
        let start = off.saturating_sub(BLOCK_BYTES - 1) & !(BLOCK_BYTES - 1);
        self.poisoned
            .range(start..off.saturating_add(len.max(1)))
            .copied()
            .find(|&b| b + BLOCK_BYTES > off)
    }

    /// Whether any block in `[off, off + bytes)` is poisoned.
    pub fn is_poisoned(&self, off: u64, bytes: u32) -> bool {
        self.first_poisoned_in(off, u64::from(bytes)).is_some()
    }

    /// Clears the poison on the block at block-aligned offset `block`
    /// (models a re-fetch from the NVM checkpoint copy rewriting it).
    /// Returns whether the block was actually poisoned.
    pub fn clear_block(&mut self, block: u64) -> bool {
        self.poisoned.remove(&block)
    }

    /// Power loss: DRAM contents — and with them all poison — vanish.
    /// Returns how many poisoned blocks were outstanding.
    pub fn clear_all(&mut self) -> usize {
        let n = self.poisoned.len();
        self.poisoned.clear();
        n
    }

    /// Number of currently poisoned blocks.
    pub fn outstanding(&self) -> usize {
        self.poisoned.len()
    }

    /// All currently poisoned block offsets, in address order.
    pub fn poisoned_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.poisoned.iter().copied()
    }

    /// Arms `n` guaranteed corrected single-bit transients on the next `n`
    /// reads (test/demo hook).
    pub fn arm_corrected_flips(&mut self, n: u32) {
        self.forced_flips += n;
    }

    /// Arms `n` guaranteed multi-bit errors: each of the next `n` reads
    /// poisons the first block of its span (test/demo hook).
    pub fn arm_poison(&mut self, n: u32) {
        self.forced_poisons += n;
    }

    /// Directly poisons the block containing device offset `off`
    /// (test/demo hook). Returns `true` if the block was not already
    /// poisoned.
    pub fn poison_block(&mut self, off: u64) -> bool {
        self.poisoned.insert(off & !(BLOCK_BYTES - 1))
    }
}

/// Receipt of one security-metadata persist: how much counter-table and
/// integrity-tree state had to be written to NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityPersist {
    /// Dirty counter-table entries persisted (8 B each, logically).
    pub counter_entries: usize,
    /// Distinct integrity-tree nodes rewritten on the dirty leaves' paths
    /// to the root (root included).
    pub tree_nodes: u64,
}

/// Deterministic model of the secure persistent memory mode: per-block
/// counter-mode encryption counters and an integrity tree over the
/// counter table, both treated as crash-consistency state.
///
/// The model mirrors the determinism contract of [`FaultModel`] and
/// [`DramEccModel`]: every decision — including the adversarial tamper
/// schedule drawn from `tamper_rate` — is a pure function of the
/// configured seed and explicit counters, so runs replay exactly.
///
/// Counter lifecycle (Zuo et al., arXiv:1901.00620): the controller bumps
/// a block's write counter on every encrypted NVM write
/// ([`SecurityModel::note_block_write`]); at each epoch boundary the dirty
/// counters and their integrity-tree path are persisted
/// ([`SecurityModel::persist`]) under the checkpoint's commit-record
/// discipline; a crash reverts the volatile table to the last persisted
/// snapshot ([`SecurityModel::crash`]) and reports exactly how many
/// counters were lost — recovery *replays* that bounded set, never
/// guesses.
#[derive(Debug, Clone)]
pub struct SecurityModel {
    seed: u64,
    arity: u64,
    tamper_rate: f64,
    /// Volatile counter cache in the memory controller.
    counters: BTreeMap<u64, u64>,
    /// Last crash-consistently persisted counter table.
    persisted: BTreeMap<u64, u64>,
    /// Blocks whose counters were bumped since the last persist.
    dirty: BTreeSet<u64>,
    /// Generation of the persisted table (bumped once per persist); the
    /// integrity-tree root authenticates table + generation, which is what
    /// makes a rolled-back table (replay attack) detectable.
    generation: u64,
    /// Injected fault: the root record was torn by power loss mid-persist.
    root_torn: bool,
    /// Injected attack: the persisted table was rolled back to an earlier
    /// generation (counter-replay attack).
    stale_table: bool,
    tamper_rolls: u64,
}

/// Domain-separation tag for the adversarial tamper schedule.
const TAG_TAMPER: u64 = 0x544d_5052; // "TMPR"

impl SecurityModel {
    /// Builds a model from the configuration.
    pub fn new(cfg: &SecurityConfig) -> Self {
        Self {
            seed: cfg.seed,
            arity: u64::from(cfg.tree_arity.max(2)),
            tamper_rate: cfg.tamper_rate,
            counters: BTreeMap::new(),
            persisted: BTreeMap::new(),
            dirty: BTreeSet::new(),
            generation: 0,
            root_torn: false,
            stale_table: false,
            tamper_rolls: 0,
        }
    }

    /// Observes one encrypted write of the 64 B block at (block-aligned)
    /// device address `block`: bumps its write counter and marks it dirty.
    /// Returns the new counter value.
    pub fn note_block_write(&mut self, block: u64) -> u64 {
        let b = block & !(BLOCK_BYTES - 1);
        let c = self.counters.entry(b).or_insert(0);
        *c += 1;
        self.dirty.insert(b);
        *c
    }

    /// Number of counters bumped since the last persist — the exact
    /// exposure a crash right now would have to replay.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Number of entries in the persisted counter table.
    pub fn table_entries(&self) -> usize {
        self.persisted.len()
    }

    /// Generation of the persisted counter table.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Persists the dirty counters and the integrity-tree path above them,
    /// advancing the table generation. Returns what had to be written.
    ///
    /// Tree accounting: each dirty leaf (counter entry, indexed by block
    /// number) dirties its ancestor chain; distinct ancestors per level
    /// are counted once, up to and including the root.
    pub fn persist(&mut self) -> SecurityPersist {
        let counter_entries = self.dirty.len();
        let mut tree_nodes = 0u64;
        if counter_entries > 0 {
            let mut level: BTreeSet<u64> =
                self.dirty.iter().map(|b| b / BLOCK_BYTES).collect();
            loop {
                let parents: BTreeSet<u64> = level.iter().map(|i| i / self.arity).collect();
                tree_nodes += parents.len() as u64;
                if parents.len() == 1 && parents.contains(&0) {
                    break;
                }
                level = parents;
            }
            for &b in &self.dirty {
                let c = self.counters.get(&b).copied().unwrap_or(0);
                self.persisted.insert(b, c);
            }
            self.dirty.clear();
        }
        self.generation += 1;
        SecurityPersist { counter_entries, tree_nodes }
    }

    /// Power loss: the volatile counter cache reverts to the persisted
    /// table. Returns how many counters were lost mid-epoch — the bounded
    /// set recovery must replay.
    pub fn crash(&mut self) -> usize {
        let lost = self.dirty.len();
        self.counters = self.persisted.clone();
        self.dirty.clear();
        lost
    }

    /// Whether the persisted security metadata authenticates: no torn root
    /// and no rolled-back table. A pure function of persisted state, so
    /// restarted recovery attempts reach the same verdict.
    pub fn table_authentic(&self) -> bool {
        !self.root_torn && !self.stale_table
    }

    /// Whether the injected metadata fault is a torn root (power loss
    /// mid-persist) as opposed to a rolled-back table.
    pub fn root_is_torn(&self) -> bool {
        self.root_torn
    }

    /// Injects a torn security-metadata root: power was lost while the
    /// root record was being persisted.
    pub fn tamper_torn_root(&mut self) {
        self.root_torn = true;
    }

    /// Injects a counter-replay attack: the persisted table was rolled
    /// back to a stale generation out-of-band.
    pub fn tamper_stale_table(&mut self) {
        self.stale_table = true;
    }

    /// Heals the persisted metadata after a WAL-sealed fallback re-derived
    /// and re-sealed it from the authenticated image.
    pub fn heal_table(&mut self) {
        self.root_torn = false;
        self.stale_table = false;
    }

    /// Full reset to the empty (provably uncorrupted) state — the
    /// unrecoverable path: no counter or tree state survives.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.persisted.clear();
        self.dirty.clear();
        self.generation = 0;
        self.root_torn = false;
        self.stale_table = false;
    }

    /// Draws the next decision from the adversarial tamper schedule:
    /// `Some(hash)` when the seeded stream decides this crash is
    /// accompanied by tampering (the hash picks the tamper kind), `None`
    /// otherwise. The stream always advances, so downstream decisions do
    /// not depend on which branch was taken.
    pub fn tamper_roll(&mut self) -> Option<u64> {
        self.tamper_rolls += 1;
        if self.tamper_rate <= 0.0 {
            return None;
        }
        let h = mix(self.seed ^ TAG_TAMPER, self.tamper_rolls);
        (unit(h) < self.tamper_rate).then_some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> MediaFaultConfig {
        MediaFaultConfig {
            enabled: true,
            seed,
            bit_flip_rate: 0.25,
            stuck_at_threshold: 4,
            torn_writes: true,
            ..MediaFaultConfig::default()
        }
    }

    /// Drives a model through a fixed interleaving of reads, writes, and
    /// torn commits and records every observable decision it makes.
    fn schedule(model: &mut FaultModel) -> Vec<(u64, u8, FaultKind, usize)> {
        let mut out = Vec::new();
        for i in 0..64u64 {
            let addr = HwAddr::new((i % 7) * 64);
            model.record_write(addr, 64);
            if let Some(ev) = model.read_fault(addr, 64) {
                out.push((ev.addr, ev.mask, ev.kind, 0));
            }
            if i % 5 == 0 {
                out.push((0, 0, FaultKind::TornWrite, model.torn_words(8)));
            }
        }
        out
    }

    #[test]
    fn same_seed_replays_byte_identical_schedule() {
        // Satellite requirement: the proptest shim cannot replay upstream
        // seed hashes, so determinism must be proven at the model level.
        let mut a = FaultModel::new(&cfg(0xDEAD_BEEF), 8192);
        let mut b = FaultModel::new(&cfg(0xDEAD_BEEF), 8192);
        let sa = schedule(&mut a);
        let sb = schedule(&mut b);
        assert!(!sa.is_empty(), "schedule produced no faults; rates too low");
        assert_eq!(sa, sb, "same seed must replay an identical fault schedule");
        // And the accumulated state matches too.
        assert_eq!(a.stuck_cells().collect::<Vec<_>>(), b.stuck_cells().collect::<Vec<_>>());
        assert_eq!(a.wear(), b.wear());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultModel::new(&cfg(1), 8192);
        let mut b = FaultModel::new(&cfg(2), 8192);
        assert_ne!(schedule(&mut a), schedule(&mut b));
    }

    #[test]
    fn stuck_cell_appears_exactly_at_threshold_and_persists() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, stuck_at_threshold: 3, ..Default::default() },
            8192,
        );
        let addr = HwAddr::new(128);
        assert_eq!(m.record_write(addr, 64), None);
        assert_eq!(m.record_write(addr, 64), None);
        let cell = m.record_write(addr, 64).expect("third write crosses threshold");
        assert!((128..192).contains(&cell), "stuck cell inside the written range");
        // Only once per row.
        assert_eq!(m.record_write(addr, 64), None);
        // Every covering read is corrupted, at the same cell.
        let e1 = m.read_fault(addr, 64).expect("stuck read corrupts");
        let e2 = m.read_fault(addr, 64).expect("still corrupts");
        assert_eq!((e1.addr, e1.mask, e1.kind), (e2.addr, e2.mask, FaultKind::StuckAt));
        assert!(m.is_stuck_range(addr, 64));
        // Repair clears it.
        assert!(m.repair(cell));
        assert_eq!(m.read_fault(addr, 64), None);
        assert!(!m.is_stuck_range(addr, 64));
    }

    #[test]
    fn transient_flip_rate_zero_never_fires() {
        let mut m = FaultModel::new(&MediaFaultConfig { enabled: true, ..Default::default() }, 8192);
        for i in 0..1000 {
            assert_eq!(m.read_fault(HwAddr::new(i * 64), 64), None);
        }
    }

    #[test]
    fn transient_flip_rate_one_always_fires_within_range() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        for i in 0..100u64 {
            let base = i * 64;
            let ev = m.read_fault(HwAddr::new(base), 64).expect("rate 1.0 always flips");
            assert_eq!(ev.kind, FaultKind::BitFlip);
            assert!((base..base + 64).contains(&ev.addr));
            assert_eq!(ev.mask.count_ones(), 1, "exactly one flipped bit");
        }
    }

    #[test]
    fn armed_flips_fire_once_each_then_clear() {
        let mut m = FaultModel::new(&MediaFaultConfig { enabled: true, ..Default::default() }, 8192);
        m.arm_transient_flips(2);
        assert!(m.read_fault(HwAddr::new(0), 64).is_some());
        assert!(m.read_fault(HwAddr::new(0), 64).is_some());
        assert_eq!(m.read_fault(HwAddr::new(0), 64), None, "armed flips are consumed");
    }

    #[test]
    fn torn_words_truncates_and_is_deterministic() {
        let c = MediaFaultConfig { enabled: true, torn_writes: true, ..Default::default() };
        let mut a = FaultModel::new(&c, 8192);
        let mut b = FaultModel::new(&c, 8192);
        for _ in 0..32 {
            let wa = a.torn_words(8);
            assert!(wa < 8, "torn commit persists fewer than all words");
            assert_eq!(wa, b.torn_words(8));
        }
        // Disabled: everything persists.
        let mut off = FaultModel::new(&MediaFaultConfig::default(), 8192);
        assert_eq!(off.torn_words(8), 8);
    }

    #[test]
    fn corrupt_read_xors_buffer_in_place() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        let mut buf = [0u8; 64];
        let kind = m.corrupt_read(HwAddr::new(0), &mut buf).expect("flips");
        assert_eq!(kind, FaultKind::BitFlip);
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped in the buffer");
    }

    #[test]
    fn wear_summary_matches_device_shape() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, stuck_at_threshold: 100, ..Default::default() },
            8192,
        );
        m.record_write(HwAddr::new(0), 64);
        m.record_write(HwAddr::new(0), 64);
        m.record_write(HwAddr::new(8192), 64);
        let w = m.wear();
        assert_eq!(w.rows_written, 2);
        assert_eq!(w.total_writes, 3);
        assert_eq!(w.max_row_writes, 2);
        assert!(w.imbalance > 1.0);
    }

    fn ecc(seed: u64, flip: f64, poison: f64) -> DramEccModel {
        DramEccModel::new(&DramFaultConfig {
            enabled: true,
            seed,
            flip_rate: flip,
            poison_rate: poison,
            ..Default::default()
        })
    }

    #[test]
    fn ecc_same_seed_replays_identically() {
        let mut a = ecc(7, 0.05, 0.02);
        let mut b = ecc(7, 0.05, 0.02);
        for i in 0..2000u64 {
            let off = (i * 24) % 8192;
            assert_eq!(a.observe_read(off, 64), b.observe_read(off, 64));
        }
        assert_eq!(
            a.poisoned_blocks().collect::<Vec<_>>(),
            b.poisoned_blocks().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ecc_different_seeds_diverge() {
        let mut a = ecc(7, 0.05, 0.02);
        let mut b = ecc(8, 0.05, 0.02);
        let fa: Vec<_> = (0..500u64).map(|i| a.observe_read(i * 64 % 4096, 64)).collect();
        let fb: Vec<_> = (0..500u64).map(|i| b.observe_read(i * 64 % 4096, 64)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn ecc_rate_zero_never_faults_rate_one_always() {
        let mut quiet = ecc(1, 0.0, 0.0);
        for i in 0..1000u64 {
            assert_eq!(quiet.observe_read(i * 64, 64), None);
        }
        let mut noisy = ecc(1, 1.0, 0.0);
        for i in 0..100u64 {
            assert_eq!(noisy.observe_read(i * 64, 64), Some(EccReadFault::Corrected));
        }
        let mut toxic = ecc(1, 0.0, 1.0);
        match toxic.observe_read(0, 64) {
            Some(EccReadFault::Poisoned { block: 0, fresh: true }) => {}
            other => panic!("expected fresh poison at block 0, got {other:?}"),
        }
        // The block stays poisoned on re-read, now stale.
        assert_eq!(
            toxic.observe_read(0, 64),
            Some(EccReadFault::Poisoned { block: 0, fresh: false })
        );
        assert_eq!(toxic.outstanding(), 1);
    }

    #[test]
    fn ecc_armed_hooks_fire_once_each() {
        let mut m = ecc(3, 0.0, 0.0);
        m.arm_corrected_flips(1);
        m.arm_poison(1);
        // Poison hook takes precedence, then the corrected flip, then quiet.
        assert_eq!(m.observe_read(128, 64), Some(EccReadFault::Poisoned { block: 128, fresh: true }));
        // The poisoned block keeps reporting; read elsewhere for the flip.
        assert_eq!(m.observe_read(1024, 64), Some(EccReadFault::Corrected));
        assert_eq!(m.observe_read(1024, 64), None);
        assert!(m.is_poisoned(128, 64));
        assert!(!m.is_poisoned(192, 64));
    }

    #[test]
    fn ecc_full_overwrite_clears_partial_does_not() {
        let mut m = ecc(4, 0.0, 0.0);
        m.poison_block(256);
        m.poison_block(320);
        // Partial overwrite of block 256 leaves poison in place.
        assert_eq!(m.note_write(256, 32), 0);
        assert!(m.is_poisoned(256, 64));
        // Whole-block overwrite clears exactly the covered blocks.
        assert_eq!(m.note_write(256, 64), 1);
        assert!(!m.is_poisoned(256, 64));
        assert!(m.is_poisoned(320, 64));
        // Unaligned span that happens to cover block 320 entirely clears it.
        assert_eq!(m.note_write(300, 120), 1);
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn ecc_clear_all_reports_outstanding_count() {
        let mut m = ecc(5, 0.0, 0.0);
        m.poison_block(0);
        m.poison_block(4096);
        m.poison_block(4096); // duplicate is idempotent
        assert_eq!(m.outstanding(), 2);
        assert_eq!(m.clear_all(), 2);
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.clear_all(), 0);
    }

    #[test]
    fn quiet_models_report_quiet_and_skipping_is_unobservable() {
        // NVM model: zero rate, nothing armed, nothing stuck => quiet.
        let mut m = FaultModel::new(&MediaFaultConfig { enabled: true, ..Default::default() }, 8192);
        assert!(m.is_quiet());
        m.arm_transient_flips(1);
        assert!(!m.is_quiet());
        m.read_fault(HwAddr::new(0), 64);
        assert!(m.is_quiet(), "armed flip consumed");
        // A stuck cell silences the fast path.
        let mut worn = FaultModel::new(
            &MediaFaultConfig { enabled: true, stuck_at_threshold: 1, ..Default::default() },
            8192,
        );
        worn.record_write(HwAddr::new(0), 64);
        assert!(!worn.is_quiet());
        // A nonzero transient rate is never quiet.
        let hot = FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 0.1, ..Default::default() },
            8192,
        );
        assert!(!hot.is_quiet());

        // ECC model: skipping observe_read while quiet must not change any
        // later decision. `a` makes 100 quiet reads, `b` skips them; both
        // then arm the same hook and must agree.
        let mut a = ecc(11, 0.0, 0.0);
        let mut b = ecc(11, 0.0, 0.0);
        assert!(a.is_quiet());
        for i in 0..100u64 {
            assert_eq!(a.observe_read(i * 64, 64), None);
        }
        a.arm_poison(1);
        b.arm_poison(1);
        assert!(!a.is_quiet() && !b.is_quiet());
        assert_eq!(a.observe_read(640, 64), b.observe_read(640, 64));
        let noisy = ecc(11, 0.5, 0.0);
        assert!(!noisy.is_quiet());
    }

    fn sec(seed: u64, rate: f64) -> SecurityModel {
        SecurityModel::new(&SecurityConfig {
            enabled: true,
            seed,
            tamper_rate: rate,
            ..Default::default()
        })
    }

    #[test]
    fn security_counters_bump_persist_and_revert_on_crash() {
        let mut m = sec(1, 0.0);
        assert_eq!(m.note_block_write(0), 1);
        assert_eq!(m.note_block_write(70), 1); // same block as 64
        assert_eq!(m.note_block_write(64), 2);
        assert_eq!(m.note_block_write(4096), 1);
        assert_eq!(m.dirty_count(), 3);

        let receipt = m.persist();
        assert_eq!(receipt.counter_entries, 3);
        assert!(receipt.tree_nodes >= 1, "at least the root is rewritten");
        assert_eq!(m.dirty_count(), 0);
        assert_eq!(m.table_entries(), 3);
        assert_eq!(m.generation(), 1);

        // Mid-epoch bumps are exactly the crash exposure.
        m.note_block_write(0);
        m.note_block_write(8192);
        assert_eq!(m.dirty_count(), 2);
        assert_eq!(m.crash(), 2, "two counters lost, bounded and replayable");
        assert_eq!(m.dirty_count(), 0);
        // The volatile cache reverted to the persisted table: a re-bump of
        // block 0 continues from the persisted value (1), not the lost 2.
        assert_eq!(m.note_block_write(0), 2);
    }

    #[test]
    fn security_persist_with_no_dirty_counters_writes_no_tree() {
        let mut m = sec(2, 0.0);
        let receipt = m.persist();
        assert_eq!(receipt, SecurityPersist { counter_entries: 0, tree_nodes: 0 });
        assert_eq!(m.generation(), 1, "generation still advances with the checkpoint");
    }

    #[test]
    fn security_tree_nodes_shared_ancestors_counted_once() {
        let mut m = sec(3, 0.0);
        // Two adjacent blocks share every ancestor under arity 8.
        m.note_block_write(0);
        m.note_block_write(64);
        let adjacent = m.persist().tree_nodes;
        // Two far-apart blocks share only the root.
        let mut m2 = sec(3, 0.0);
        m2.note_block_write(0);
        m2.note_block_write(64 * 8 * 8 * 8 * 64);
        let distant = m2.persist().tree_nodes;
        assert!(distant > adjacent, "distant leaves dirty more tree nodes");
    }

    #[test]
    fn security_tamper_flags_and_heal() {
        let mut m = sec(4, 0.0);
        assert!(m.table_authentic());
        m.tamper_torn_root();
        assert!(!m.table_authentic() && m.root_is_torn());
        m.heal_table();
        assert!(m.table_authentic());
        m.tamper_stale_table();
        assert!(!m.table_authentic() && !m.root_is_torn());
        m.note_block_write(0);
        m.persist();
        m.reset();
        assert!(m.table_authentic());
        assert_eq!((m.table_entries(), m.dirty_count(), m.generation()), (0, 0, 0));
    }

    #[test]
    fn security_tamper_schedule_is_deterministic_and_rate_gated() {
        let mut a = sec(9, 0.5);
        let mut b = sec(9, 0.5);
        let ra: Vec<_> = (0..64).map(|_| a.tamper_roll()).collect();
        let rb: Vec<_> = (0..64).map(|_| b.tamper_roll()).collect();
        assert_eq!(ra, rb, "same seed, same tamper schedule");
        assert!(ra.iter().any(Option::is_some) && ra.iter().any(Option::is_none));
        let mut quiet = sec(9, 0.0);
        assert!((0..64).all(|_| quiet.tamper_roll().is_none()));
        let mut c = sec(10, 0.5);
        let rc: Vec<_> = (0..64).map(|_| c.tamper_roll()).collect();
        assert_ne!(ra, rc, "different seeds diverge");
    }

    #[test]
    fn first_poisoned_in_matches_poisoned_in() {
        let mut m = ecc(6, 0.0, 0.0);
        assert_eq!(m.first_poisoned_in(0, 4096), None);
        m.poison_block(64);
        m.poison_block(256);
        for (off, len) in [(0u64, 4096u64), (100, 1), (0, 64), (128, 64), (200, 100)] {
            assert_eq!(
                m.first_poisoned_in(off, len),
                m.poisoned_in(off, len).first().copied(),
                "divergence at off={off} len={len}"
            );
        }
    }

    #[test]
    fn ecc_poisoned_in_finds_straddling_blocks() {
        let mut m = ecc(6, 0.0, 0.0);
        m.poison_block(64);
        // A 1-byte read at offset 100 sits inside block 64..128.
        assert_eq!(m.poisoned_in(100, 1), vec![64]);
        // A span ending exactly at the block start does not touch it.
        assert!(m.poisoned_in(0, 64).is_empty());
        assert!(m.clear_block(64));
        assert!(!m.clear_block(64));
    }
}
