//! Deterministic NVM media-fault model.
//!
//! Real NVM is not a perfect store: cells suffer transient bit flips, wear
//! out into stuck-at faults, and a power loss can tear a multi-word write so
//! that only a prefix of the words persists. [`FaultModel`] models all three
//! so the controller's integrity protection (per-64 B CRCs, checksummed
//! metadata, retry/remap/scrub healing) can be exercised and validated.
//!
//! Every decision the model makes is a pure function of the configured seed
//! and the sequence of device operations it has observed — there is no
//! global RNG state, no clock, and no OS entropy. Two models built from the
//! same [`MediaFaultConfig`] and fed the same operation sequence produce
//! byte-identical fault schedules, which is what lets the crash-replay
//! sweeps reproduce a faulty run exactly (the vendored proptest shim cannot
//! replay upstream seed hashes, so determinism must come from the model
//! itself).

use std::collections::BTreeMap;

use thynvm_types::{FaultKind, HwAddr, MediaFaultConfig};

use crate::device::WearStats;

/// One corrupted read as decided by the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device address of the corrupted byte.
    pub addr: u64,
    /// XOR mask of the flipped bit(s) within that byte.
    pub mask: u8,
    /// Classification of the fault.
    pub kind: FaultKind,
}

/// Deterministic, seedable model of NVM media faults: transient bit flips,
/// wear-induced stuck-at cells, and torn multi-word writes.
///
/// The model keys every decision on a counter of observed operations mixed
/// with the seed (splitmix64), so schedules replay exactly. Wear is tracked
/// per device row with the same row granularity as [`crate::Device`], and
/// can be summarized through the existing [`WearStats`] shape.
#[derive(Debug, Clone)]
pub struct FaultModel {
    seed: u64,
    bit_flip_rate: f64,
    stuck_at_threshold: u64,
    torn_writes: bool,
    row_bytes: u64,
    reads_seen: u64,
    writes_seen: u64,
    torn_seen: u64,
    forced_flips: u32,
    row_writes: BTreeMap<u64, u64>,
    stuck: BTreeMap<u64, u8>,
}

/// Domain-separation tags mixed into the seed so the read, wear, and torn
/// schedules are independent streams.
const TAG_READ: u64 = 0x5245_4144; // "READ"
const TAG_WEAR: u64 = 0x5745_4152; // "WEAR"
const TAG_TORN: u64 = 0x544f_524e; // "TORN"

/// splitmix64 finalizer: a high-quality 64-bit mix of `seed ^ tag` and a
/// per-event counter.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform float in `[0, 1)`.
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultModel {
    /// Builds a model from the configuration, using the device's row size
    /// for wear granularity.
    pub fn new(cfg: &MediaFaultConfig, row_bytes: u64) -> Self {
        Self {
            seed: cfg.seed,
            bit_flip_rate: cfg.bit_flip_rate,
            stuck_at_threshold: cfg.stuck_at_threshold,
            torn_writes: cfg.torn_writes,
            row_bytes: row_bytes.max(1),
            reads_seen: 0,
            writes_seen: 0,
            torn_seen: 0,
            forced_flips: 0,
            row_writes: BTreeMap::new(),
            stuck: BTreeMap::new(),
        }
    }

    /// Observes one device write of `bytes` at `addr`, feeding the wear
    /// model. When the write pushes its row across the stuck-at threshold,
    /// one cell inside the just-written range becomes permanently stuck and
    /// its address is returned (exactly once per row).
    pub fn record_write(&mut self, addr: HwAddr, bytes: u32) -> Option<u64> {
        self.writes_seen += 1;
        if self.stuck_at_threshold == 0 {
            return None;
        }
        let row = addr.raw() / self.row_bytes;
        let count = self.row_writes.entry(row).or_insert(0);
        *count += 1;
        if *count != self.stuck_at_threshold {
            return None;
        }
        // The row just wore out: pick a deterministic cell within the write
        // that triggered it and a bit inside that cell.
        let h = mix(self.seed ^ TAG_WEAR, row);
        let span = u64::from(bytes).max(1);
        let cell = addr.raw() + h % span;
        let mask = 1u8 << ((h >> 8) % 8);
        self.stuck.insert(cell, mask);
        Some(cell)
    }

    /// Decides whether a read of `bytes` at `addr` is corrupted.
    ///
    /// Stuck cells corrupt every read that covers them; otherwise a
    /// transient flip fires with the configured per-read probability. The
    /// transient stream always advances, so the schedule downstream of this
    /// read does not depend on which branch was taken.
    pub fn read_fault(&mut self, addr: HwAddr, bytes: u32) -> Option<FaultEvent> {
        self.reads_seen += 1;
        let base = addr.raw();
        let span = u64::from(bytes).max(1);
        if self.forced_flips > 0 {
            self.forced_flips -= 1;
            return Some(FaultEvent { addr: base, mask: 0x01, kind: FaultKind::BitFlip });
        }
        if let Some((&cell, &mask)) = self.stuck.range(base..base + span).next() {
            return Some(FaultEvent { addr: cell, mask, kind: FaultKind::StuckAt });
        }
        if self.bit_flip_rate > 0.0 {
            let h = mix(self.seed ^ TAG_READ, self.reads_seen);
            if unit(h) < self.bit_flip_rate {
                let addr = base + (h >> 17) % span;
                let mask = 1u8 << ((h >> 3) % 8);
                return Some(FaultEvent { addr, mask, kind: FaultKind::BitFlip });
            }
        }
        None
    }

    /// Applies a fault (if any) to a buffer just read from `addr`, XOR-ing
    /// the corrupted byte in place. Returns the fault kind when the buffer
    /// was corrupted.
    ///
    /// This is the integration point for byte-accurate stores such as
    /// [`crate::SparseStore`]: the caller reads the true bytes, then lets
    /// the model corrupt them as the device would have.
    pub fn corrupt_read(&mut self, addr: HwAddr, buf: &mut [u8]) -> Option<FaultKind> {
        let len = u32::try_from(buf.len()).unwrap_or(u32::MAX);
        let ev = self.read_fault(addr, len)?;
        let idx = (ev.addr - addr.raw()) as usize;
        if let Some(byte) = buf.get_mut(idx) {
            *byte ^= ev.mask;
        }
        Some(ev.kind)
    }

    /// How many leading words of a `words`-long device commit persist when
    /// power is lost mid-write. Returns a value in `0..words` when torn
    /// writes are modeled, or `words` (everything persisted) otherwise.
    pub fn torn_words(&mut self, words: usize) -> usize {
        if !self.torn_writes || words == 0 {
            return words;
        }
        self.torn_seen += 1;
        let h = mix(self.seed ^ TAG_TORN, self.torn_seen);
        (h % words as u64) as usize
    }

    /// Arms `n` guaranteed transient bit flips: each of the next `n` reads
    /// is corrupted once and reads back clean on retry. A test and demo
    /// hook for exercising the heal-by-retry path deterministically.
    pub fn arm_transient_flips(&mut self, n: u32) {
        self.forced_flips += n;
    }

    /// Repairs a stuck cell (models the block being remapped away from the
    /// bad location). Returns whether a cell was actually stuck there.
    pub fn repair(&mut self, addr: u64) -> bool {
        self.stuck.remove(&addr).is_some()
    }

    /// All currently stuck cells as `(address, stuck bit mask)`, in address
    /// order.
    pub fn stuck_cells(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.stuck.iter().map(|(&a, &m)| (a, m))
    }

    /// Whether any cell in `[addr, addr + bytes)` is stuck.
    pub fn is_stuck_range(&self, addr: HwAddr, bytes: u32) -> bool {
        let base = addr.raw();
        self.stuck.range(base..base + u64::from(bytes).max(1)).next().is_some()
    }

    /// Wear summary of the writes this model has observed, in the same
    /// shape the device reports.
    pub fn wear(&self) -> WearStats {
        let rows_written = self.row_writes.len() as u64;
        let total_writes: u64 = self.row_writes.values().sum();
        let max_row_writes = self.row_writes.values().copied().max().unwrap_or(0);
        let imbalance = if rows_written == 0 {
            0.0
        } else {
            max_row_writes as f64 / (total_writes as f64 / rows_written as f64)
        };
        WearStats { rows_written, total_writes, max_row_writes, imbalance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> MediaFaultConfig {
        MediaFaultConfig {
            enabled: true,
            seed,
            bit_flip_rate: 0.25,
            stuck_at_threshold: 4,
            torn_writes: true,
            ..MediaFaultConfig::default()
        }
    }

    /// Drives a model through a fixed interleaving of reads, writes, and
    /// torn commits and records every observable decision it makes.
    fn schedule(model: &mut FaultModel) -> Vec<(u64, u8, FaultKind, usize)> {
        let mut out = Vec::new();
        for i in 0..64u64 {
            let addr = HwAddr::new((i % 7) * 64);
            model.record_write(addr, 64);
            if let Some(ev) = model.read_fault(addr, 64) {
                out.push((ev.addr, ev.mask, ev.kind, 0));
            }
            if i % 5 == 0 {
                out.push((0, 0, FaultKind::TornWrite, model.torn_words(8)));
            }
        }
        out
    }

    #[test]
    fn same_seed_replays_byte_identical_schedule() {
        // Satellite requirement: the proptest shim cannot replay upstream
        // seed hashes, so determinism must be proven at the model level.
        let mut a = FaultModel::new(&cfg(0xDEAD_BEEF), 8192);
        let mut b = FaultModel::new(&cfg(0xDEAD_BEEF), 8192);
        let sa = schedule(&mut a);
        let sb = schedule(&mut b);
        assert!(!sa.is_empty(), "schedule produced no faults; rates too low");
        assert_eq!(sa, sb, "same seed must replay an identical fault schedule");
        // And the accumulated state matches too.
        assert_eq!(a.stuck_cells().collect::<Vec<_>>(), b.stuck_cells().collect::<Vec<_>>());
        assert_eq!(a.wear(), b.wear());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultModel::new(&cfg(1), 8192);
        let mut b = FaultModel::new(&cfg(2), 8192);
        assert_ne!(schedule(&mut a), schedule(&mut b));
    }

    #[test]
    fn stuck_cell_appears_exactly_at_threshold_and_persists() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, stuck_at_threshold: 3, ..Default::default() },
            8192,
        );
        let addr = HwAddr::new(128);
        assert_eq!(m.record_write(addr, 64), None);
        assert_eq!(m.record_write(addr, 64), None);
        let cell = m.record_write(addr, 64).expect("third write crosses threshold");
        assert!((128..192).contains(&cell), "stuck cell inside the written range");
        // Only once per row.
        assert_eq!(m.record_write(addr, 64), None);
        // Every covering read is corrupted, at the same cell.
        let e1 = m.read_fault(addr, 64).expect("stuck read corrupts");
        let e2 = m.read_fault(addr, 64).expect("still corrupts");
        assert_eq!((e1.addr, e1.mask, e1.kind), (e2.addr, e2.mask, FaultKind::StuckAt));
        assert!(m.is_stuck_range(addr, 64));
        // Repair clears it.
        assert!(m.repair(cell));
        assert_eq!(m.read_fault(addr, 64), None);
        assert!(!m.is_stuck_range(addr, 64));
    }

    #[test]
    fn transient_flip_rate_zero_never_fires() {
        let mut m = FaultModel::new(&MediaFaultConfig { enabled: true, ..Default::default() }, 8192);
        for i in 0..1000 {
            assert_eq!(m.read_fault(HwAddr::new(i * 64), 64), None);
        }
    }

    #[test]
    fn transient_flip_rate_one_always_fires_within_range() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        for i in 0..100u64 {
            let base = i * 64;
            let ev = m.read_fault(HwAddr::new(base), 64).expect("rate 1.0 always flips");
            assert_eq!(ev.kind, FaultKind::BitFlip);
            assert!((base..base + 64).contains(&ev.addr));
            assert_eq!(ev.mask.count_ones(), 1, "exactly one flipped bit");
        }
    }

    #[test]
    fn armed_flips_fire_once_each_then_clear() {
        let mut m = FaultModel::new(&MediaFaultConfig { enabled: true, ..Default::default() }, 8192);
        m.arm_transient_flips(2);
        assert!(m.read_fault(HwAddr::new(0), 64).is_some());
        assert!(m.read_fault(HwAddr::new(0), 64).is_some());
        assert_eq!(m.read_fault(HwAddr::new(0), 64), None, "armed flips are consumed");
    }

    #[test]
    fn torn_words_truncates_and_is_deterministic() {
        let c = MediaFaultConfig { enabled: true, torn_writes: true, ..Default::default() };
        let mut a = FaultModel::new(&c, 8192);
        let mut b = FaultModel::new(&c, 8192);
        for _ in 0..32 {
            let wa = a.torn_words(8);
            assert!(wa < 8, "torn commit persists fewer than all words");
            assert_eq!(wa, b.torn_words(8));
        }
        // Disabled: everything persists.
        let mut off = FaultModel::new(&MediaFaultConfig::default(), 8192);
        assert_eq!(off.torn_words(8), 8);
    }

    #[test]
    fn corrupt_read_xors_buffer_in_place() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, bit_flip_rate: 1.0, ..Default::default() },
            8192,
        );
        let mut buf = [0u8; 64];
        let kind = m.corrupt_read(HwAddr::new(0), &mut buf).expect("flips");
        assert_eq!(kind, FaultKind::BitFlip);
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped in the buffer");
    }

    #[test]
    fn wear_summary_matches_device_shape() {
        let mut m = FaultModel::new(
            &MediaFaultConfig { enabled: true, stuck_at_threshold: 100, ..Default::default() },
            8192,
        );
        m.record_write(HwAddr::new(0), 64);
        m.record_write(HwAddr::new(0), 64);
        m.record_write(HwAddr::new(8192), 64);
        let w = m.wear();
        assert_eq!(w.rows_written, 2);
        assert_eq!(w.total_writes, 3);
        assert_eq!(w.max_row_writes, 2);
        assert!(w.imbalance > 1.0);
    }
}
