//! Banked memory-device timing model.
//!
//! Each device (DRAM or NVM) consists of `channels × banks_per_channel`
//! banks. Every bank owns a row buffer: an access to the currently open row
//! is a *row hit*; anything else is a *row miss*, which for NVM is more
//! expensive when the evicted row buffer is dirty, because the old row must
//! be written back into the slow NVM array first (timing per Table 2 /
//! [Lee'09], [Yoon'12]).
//!
//! Banks are modeled with a `busy_until` timestamp: an access cannot start
//! before the bank finished its previous operation, so bank conflicts
//! serialize while accesses to different banks proceed in parallel. Data
//! transfer beyond the first 64 B burst is pipelined at the DDR3 burst rate.

use thynvm_types::{AccessKind, Cycle, DeviceGeometry, FxHashMap, HwAddr, TimingConfig};

/// Additional data-transfer time per extra 64 B burst, in nanoseconds
/// (DDR3-1600: 8 beats × 0.625 ns ≈ 5 ns per 64 B burst).
pub const BURST_NS: u64 = 5;

/// Which technology a [`Device`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Volatile DRAM: symmetric row-miss cost.
    Dram,
    /// Nonvolatile memory (PCM-like): asymmetric clean/dirty row-miss cost.
    Nvm,
}

impl DeviceKind {
    /// Human-readable name.
    pub const fn as_str(self) -> &'static str {
        match self {
            DeviceKind::Dram => "DRAM",
            DeviceKind::Nvm => "NVM",
        }
    }
}

/// Per-device statistics, independent of the controller-level classification
/// in [`thynvm_types::MemStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read accesses serviced.
    pub reads: u64,
    /// Write accesses serviced.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (clean + dirty).
    pub row_misses: u64,
    /// Row-buffer misses that evicted a dirty row (NVM only).
    pub dirty_row_misses: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total cycles banks spent busy (sums over banks).
    pub busy_cycles: Cycle,
}

impl DeviceStats {
    /// Row-buffer hit rate in [0, 1]; 0 when no accesses happened.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    row_dirty: bool,
    busy_until: Cycle,
}

/// Wear (endurance) summary of a device: how write traffic distributes
/// over rows. NVM cells endure a bounded number of writes (~10^8 for PCM),
/// so *imbalance* — a few rows absorbing most writes — determines lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Distinct rows ever written.
    pub rows_written: u64,
    /// Total row-write events.
    pub total_writes: u64,
    /// Writes absorbed by the most-written row.
    pub max_row_writes: u64,
    /// `max / mean` — 1.0 is perfectly level wear; large values mean a few
    /// hot rows will fail early.
    pub imbalance: f64,
}

/// A banked DRAM or NVM device with row-buffer timing.
///
/// See the [module documentation](self) for the model. All addresses are
/// *hardware* addresses ([`HwAddr`]): the caller (a memory controller) has
/// already translated physical addresses.
#[derive(Debug, Clone)]
pub struct Device {
    kind: DeviceKind,
    geometry: DeviceGeometry,
    banks: Vec<Bank>,
    stats: DeviceStats,
    /// Per-row write counts (sparse), for endurance analysis.
    row_writes: FxHashMap<u64, u64>,
    /// `log2(row_bytes)` when the row size is a power of two, so the
    /// per-access address split is a shift instead of a 64-bit divide.
    row_shift: Option<u32>,
    /// `total_banks - 1` when the bank count is a power of two, so the
    /// bank fold is a mask instead of a 64-bit modulo.
    bank_mask: Option<u64>,
    /// Row-hit latency, resolved from [`TimingConfig`] once at construction
    /// so the per-access path does no ns→cycle conversions.
    hit_lat: Cycle,
    /// Clean row-miss latency (row buffer empty or clean).
    clean_miss_lat: Cycle,
    /// Dirty row-miss latency; equals the plain miss latency for DRAM,
    /// which has no writeback asymmetry.
    dirty_miss_lat: Cycle,
}

impl Device {
    /// Creates a device of `kind` with the given timing and geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero banks or a zero-byte row.
    pub fn new(kind: DeviceKind, timing: TimingConfig, geometry: DeviceGeometry) -> Self {
        assert!(geometry.total_banks() > 0, "device must have at least one bank");
        assert!(geometry.row_bytes > 0, "row size must be nonzero");
        let (hit_lat, clean_miss_lat, dirty_miss_lat) = match kind {
            DeviceKind::Dram => {
                (timing.dram_row_hit(), timing.dram_row_miss(), timing.dram_row_miss())
            }
            DeviceKind::Nvm => {
                (timing.nvm_row_hit(), timing.nvm_clean_miss(), timing.nvm_dirty_miss())
            }
        };
        Self {
            kind,
            geometry,
            banks: vec![Bank::default(); geometry.total_banks() as usize],
            stats: DeviceStats::default(),
            // Pre-sized: one entry per written row accrues from the first
            // access on; growing from empty showed up as rehash churn.
            row_writes: FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            row_shift: geometry.row_bytes.is_power_of_two().then(|| geometry.row_bytes.trailing_zeros()),
            bank_mask: geometry
                .total_banks()
                .is_power_of_two()
                .then(|| u64::from(geometry.total_banks()) - 1),
            hit_lat,
            clean_miss_lat,
            dirty_miss_lat,
        }
    }

    /// The device technology.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The device geometry.
    pub fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Maps an address to `(bank index, row id)`.
    ///
    /// Rows are interleaved across banks so that consecutive rows live in
    /// different banks (row-interleaving), while accesses within one row
    /// stay in one bank and enjoy row-buffer locality.
    fn map(&self, addr: HwAddr) -> (usize, u64) {
        let row = match self.row_shift {
            Some(shift) => addr.raw() >> shift,
            None => addr.raw() / self.geometry.row_bytes,
        };
        let bank = match self.bank_mask {
            Some(mask) => (row & mask) as usize,
            None => (row % u64::from(self.geometry.total_banks())) as usize,
        };
        (bank, row)
    }

    /// Latency of the row activation for this access, given bank state.
    /// DRAM's dirty-miss latency equals its clean-miss latency, so the
    /// dirty branch is technology-agnostic here.
    fn row_latency(&self, bank: &Bank, row: u64) -> (Cycle, bool) {
        if bank.open_row == Some(row) {
            (self.hit_lat, true)
        } else if bank.row_dirty && bank.open_row.is_some() {
            (self.dirty_miss_lat, false)
        } else {
            (self.clean_miss_lat, false)
        }
    }

    /// Services one access of `bytes` bytes starting at `addr`, arriving at
    /// `now`. Returns the completion cycle.
    ///
    /// Latency and bank occupancy are accounted separately, as in real
    /// DDR3: the *completion* of an access pays the row hit/miss latency
    /// plus the pipelined transfer of `ceil(bytes/64)` bursts, but the bank
    /// is only *occupied* for the activation work (on a miss) and the data
    /// transfer — successive open-row accesses stream at the burst rate
    /// (~12.8 GB/s per bank at DDR3-1600), not one full access latency
    /// each.
    pub fn access(&mut self, addr: HwAddr, kind: AccessKind, bytes: u32, now: Cycle) -> Cycle {
        assert!(bytes > 0, "device access must move at least one byte");
        let (bank_idx, row) = self.map(addr);
        let (row_lat, hit) = self.row_latency(&self.banks[bank_idx], row);
        let hit_lat = self.hit_lat;

        let bursts = u64::from(bytes).div_ceil(64);
        let transfer = Cycle::from_ns(BURST_NS * bursts);
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        // Completion: latency of the first word + pipelined rest.
        let done = start + row_lat + Cycle::from_ns(BURST_NS * bursts.saturating_sub(1));
        // Occupancy: activation (miss only) + transfer.
        let occupancy = if hit { transfer } else { (row_lat - hit_lat) + transfer };

        // Update bank state.
        let was_dirty = bank.row_dirty;
        if !hit {
            bank.open_row = Some(row);
            bank.row_dirty = false;
        }
        if kind.is_write() {
            bank.row_dirty = true;
        }
        bank.busy_until = start + occupancy;

        // Update stats.
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            if self.kind == DeviceKind::Nvm && was_dirty {
                self.stats.dirty_row_misses += 1;
            }
        }
        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.stats.read_bytes += u64::from(bytes);
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.stats.write_bytes += u64::from(bytes);
                *self.row_writes.entry(row).or_insert(0) += 1;
            }
        }
        self.stats.busy_cycles += occupancy;

        done
    }

    /// The earliest cycle at which every bank is idle — i.e. the completion
    /// time of all accepted work.
    pub fn idle_at(&self) -> Cycle {
        self.banks.iter().map(|b| b.busy_until).max().unwrap_or(Cycle::ZERO)
    }

    /// Resets all bank state and timing (used by crash modeling: a power
    /// cycle leaves row buffers closed). Statistics are preserved.
    pub fn power_cycle(&mut self) {
        for bank in &mut self.banks {
            *bank = Bank::default();
        }
    }

    /// Endurance summary: how evenly write traffic spreads over rows.
    pub fn wear(&self) -> WearStats {
        let rows_written = self.row_writes.len() as u64;
        let total_writes: u64 = self.row_writes.values().sum();
        let max_row_writes = self.row_writes.values().copied().max().unwrap_or(0);
        let imbalance = if rows_written == 0 {
            0.0
        } else {
            max_row_writes as f64 / (total_writes as f64 / rows_written as f64)
        };
        WearStats { rows_written, total_writes, max_row_writes, imbalance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::SystemConfig;

    fn dram() -> Device {
        let cfg = SystemConfig::paper();
        Device::new(DeviceKind::Dram, cfg.timing, cfg.dram_geometry)
    }

    fn nvm() -> Device {
        let cfg = SystemConfig::paper();
        Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry)
    }

    #[test]
    fn dram_first_access_is_row_miss() {
        let mut d = dram();
        let done = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        assert_eq!(done, Cycle::from_ns(80));
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn dram_second_access_same_row_is_hit() {
        let mut d = dram();
        let t1 = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        let t2 = d.access(HwAddr::new(64), AccessKind::Read, 64, t1);
        assert_eq!(t2 - t1, Cycle::from_ns(40));
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn nvm_clean_then_dirty_miss() {
        let mut d = nvm();
        // Open row 0 with a write -> row becomes dirty.
        let t1 = d.access(HwAddr::new(0), AccessKind::Write, 64, Cycle::ZERO);
        assert_eq!(t1, Cycle::from_ns(128)); // clean miss (row buffer empty)
        // Access a different row on the same bank: row 0 and row 8 map to the
        // same bank with 8 banks (row-interleaved).
        let row_bytes = d.geometry().row_bytes;
        let same_bank_other_row = HwAddr::new(8 * row_bytes);
        let t2 = d.access(same_bank_other_row, AccessKind::Read, 64, t1);
        assert_eq!(t2 - t1, Cycle::from_ns(368)); // dirty miss
        assert_eq!(d.stats().dirty_row_misses, 1);
    }

    #[test]
    fn nvm_read_does_not_dirty_row() {
        let mut d = nvm();
        let row_bytes = d.geometry().row_bytes;
        let t1 = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        let t2 = d.access(HwAddr::new(8 * row_bytes), AccessKind::Read, 64, t1);
        assert_eq!(t2 - t1, Cycle::from_ns(128)); // clean miss, not dirty
        assert_eq!(d.stats().dirty_row_misses, 0);
    }

    #[test]
    fn bank_conflict_serializes_at_burst_rate() {
        let mut d = dram();
        // Two accesses to the same bank, same row, issued at the same time:
        // the second starts once the first's activation + transfer occupy
        // the bank (pipelined open-row streaming), completing one burst
        // after data for the first became available minus the overlap.
        let t1 = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        assert_eq!(t1, Cycle::from_ns(80)); // miss latency
        let t2 = d.access(HwAddr::new(128), AccessKind::Read, 64, Cycle::ZERO);
        // Occupancy of the miss: activation (80-40) + one burst (5) = 45 ns;
        // the hit then takes its 40 ns latency.
        assert_eq!(t2, Cycle::from_ns(45 + 40));
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = dram();
        let row_bytes = d.geometry().row_bytes;
        let t1 = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        // Next row maps to the next bank: starts immediately.
        let t2 = d.access(HwAddr::new(row_bytes), AccessKind::Read, 64, Cycle::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn large_access_streams_bursts() {
        let mut d = dram();
        // 4 KiB page write = 64 bursts: row miss + 63 extra bursts.
        let done = d.access(HwAddr::new(0), AccessKind::Write, 4096, Cycle::ZERO);
        assert_eq!(done, Cycle::from_ns(80 + 63 * BURST_NS));
        assert_eq!(d.stats().write_bytes, 4096);
    }

    #[test]
    fn idle_at_tracks_bank_occupancy() {
        let mut d = dram();
        assert_eq!(d.idle_at(), Cycle::ZERO);
        let t1 = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        // The bank frees after activation + burst, before the data's
        // completion latency has fully elapsed.
        assert_eq!(d.idle_at(), Cycle::from_ns(45));
        assert!(d.idle_at() <= t1);
    }

    #[test]
    fn power_cycle_closes_rows_but_keeps_stats() {
        let mut d = nvm();
        d.access(HwAddr::new(0), AccessKind::Write, 64, Cycle::ZERO);
        let writes = d.stats().writes;
        d.power_cycle();
        assert_eq!(d.stats().writes, writes);
        // After a power cycle the next access to the same row is a miss again.
        let t = d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        assert_eq!(t, Cycle::from_ns(128));
    }

    #[test]
    fn row_hit_rate() {
        let mut d = dram();
        let mut now = Cycle::ZERO;
        for i in 0..10 {
            now = d.access(HwAddr::new(i * 64), AccessKind::Read, 64, now);
        }
        // 1 miss + 9 hits.
        assert!((d.stats().row_hit_rate() - 0.9).abs() < 1e-9);
        assert_eq!(DeviceStats::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(DeviceKind::Dram.as_str(), "DRAM");
        assert_eq!(DeviceKind::Nvm.as_str(), "NVM");
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_access_panics() {
        dram().access(HwAddr::new(0), AccessKind::Read, 0, Cycle::ZERO);
    }

    #[test]
    fn busy_cycles_count_occupancy_not_latency() {
        let mut d = dram();
        d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        // Row miss: activation (40) + one burst (5).
        assert_eq!(d.stats().busy_cycles, Cycle::from_ns(45));
        // An open-row hit only occupies the bank for its burst.
        d.access(HwAddr::new(64), AccessKind::Read, 64, Cycle::from_ns(80));
        assert_eq!(d.stats().busy_cycles, Cycle::from_ns(50));
    }

    #[test]
    fn wear_tracks_row_write_distribution() {
        let mut d = nvm();
        let row_bytes = d.geometry().row_bytes;
        // 9 writes to row 0, 1 write to row 1: mean 5, max 9.
        let mut now = Cycle::ZERO;
        for _ in 0..9 {
            now = d.access(HwAddr::new(0), AccessKind::Write, 64, now);
        }
        d.access(HwAddr::new(row_bytes), AccessKind::Write, 64, now);
        let w = d.wear();
        assert_eq!(w.rows_written, 2);
        assert_eq!(w.total_writes, 10);
        assert_eq!(w.max_row_writes, 9);
        assert!((w.imbalance - 1.8).abs() < 1e-9, "imbalance {}", w.imbalance);
    }

    #[test]
    fn wear_of_untouched_device_is_zero() {
        let mut d = nvm();
        d.access(HwAddr::new(0), AccessKind::Read, 64, Cycle::ZERO);
        let w = d.wear();
        assert_eq!(w, WearStats::default());
    }

    #[test]
    fn level_wear_has_unit_imbalance() {
        let mut d = nvm();
        let row_bytes = d.geometry().row_bytes;
        let mut now = Cycle::ZERO;
        for r in 0..8u64 {
            now = d.access(HwAddr::new(r * row_bytes), AccessKind::Write, 64, now);
        }
        assert!((d.wear().imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn writes_after_power_loss_are_row_misses_everywhere() {
        let mut d = nvm();
        let row_bytes = d.geometry().row_bytes;
        let mut now = Cycle::ZERO;
        for b in 0..4u64 {
            now = d.access(HwAddr::new(b * row_bytes), AccessKind::Write, 64, now);
        }
        d.power_cycle();
        let before = d.stats().row_misses;
        let mut now = Cycle::ZERO;
        for b in 0..4u64 {
            now = d.access(HwAddr::new(b * row_bytes), AccessKind::Read, 64, now);
        }
        assert_eq!(d.stats().row_misses, before + 4);
    }
}
