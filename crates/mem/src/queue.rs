//! Bounded memory-controller write queue.
//!
//! Figure 2 of the paper shows separate DRAM/NVM read and write queues in
//! the memory controller. Writes are acknowledged as soon as they enter the
//! queue and retire in the background; the queue only back-pressures the
//! issuer when it is full. §4.4 requires the NVM write queue to be flushed
//! (fully drained) at the end of every checkpointing phase before the
//! checkpoint is marked complete — [`WriteQueue::drain_time`] gives the
//! cycle at which that flush finishes.

use std::collections::VecDeque;

use thynvm_types::Cycle;

/// A bounded queue of in-flight writes, each represented by its completion
/// cycle at the device.
///
/// # Example
///
/// ```
/// use thynvm_mem::WriteQueue;
/// use thynvm_types::Cycle;
///
/// let mut q = WriteQueue::new(2);
/// assert_eq!(q.push(Cycle::new(100), Cycle::ZERO), Cycle::ZERO); // no stall
/// assert_eq!(q.push(Cycle::new(200), Cycle::ZERO), Cycle::ZERO); // no stall
/// // Queue full: the third write stalls until the first retires at 100.
/// assert_eq!(q.push(Cycle::new(300), Cycle::ZERO), Cycle::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct WriteQueue {
    capacity: usize,
    /// Completion cycles of queued writes, nondecreasing.
    pending: VecDeque<Cycle>,
}

impl WriteQueue {
    /// Creates a queue holding at most `capacity` in-flight writes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write queue capacity must be nonzero");
        Self { capacity, pending: VecDeque::with_capacity(capacity) }
    }

    /// Number of writes currently in flight at time `now`.
    ///
    /// `pending` is kept nondecreasing by [`WriteQueue::push`], so the
    /// retired prefix is found by binary search instead of a full scan.
    pub fn len_at(&self, now: Cycle) -> usize {
        self.pending.len() - self.pending.partition_point(|&c| c <= now)
    }

    /// Whether no writes are in flight at time `now`.
    pub fn is_empty_at(&self, now: Cycle) -> bool {
        self.pending.back().is_none_or(|&c| c <= now)
    }

    /// Maximum number of in-flight writes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops entries that have retired by `now`.
    pub fn retire(&mut self, now: Cycle) {
        while let Some(&front) = self.pending.front() {
            if front <= now {
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Enqueues a write that the device will complete at `completion`.
    ///
    /// Returns the cycle at which the *issuer* may proceed: `now` if the
    /// queue had room, or the retirement time of the oldest entry if the
    /// queue was full (the issuer stalls until a slot frees up).
    pub fn push(&mut self, completion: Cycle, now: Cycle) -> Cycle {
        self.retire(now);
        let resume = if self.pending.len() >= self.capacity {
            // Stall until the oldest in-flight write retires.
            self.pending.pop_front().expect("nonempty when full")
        } else {
            now
        };
        // Keep the deque ordered: completions are nondecreasing in practice,
        // but clamp to maintain the invariant even for out-of-order pushes.
        let last = self.pending.back().copied().unwrap_or(Cycle::ZERO);
        self.pending.push_back(completion.max(last));
        resume
    }

    /// The cycle at which all currently queued writes have retired
    /// (`now` if the queue is empty). This is the §4.4 flush time.
    pub fn drain_time(&self, now: Cycle) -> Cycle {
        self.pending.back().copied().unwrap_or(now).max(now)
    }

    /// Empties the queue without retiring its writes — the crash model: on
    /// power loss, queued-but-unwritten data is gone.
    pub fn discard(&mut self) {
        self.pending.clear();
    }

    /// Power-loss drain at cycle `now`: writes whose device commit was at or
    /// before `now` made it to the medium; the rest are lost. Empties the
    /// queue and returns the number of writes lost.
    pub fn discard_lost(&mut self, now: Cycle) -> usize {
        let lost = self.len_at(now);
        self.pending.clear();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_never_stalls() {
        let mut q = WriteQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.push(Cycle::new(100 + i), Cycle::ZERO), Cycle::ZERO);
        }
    }

    #[test]
    fn full_queue_stalls_until_oldest_retires() {
        let mut q = WriteQueue::new(1);
        assert_eq!(q.push(Cycle::new(50), Cycle::ZERO), Cycle::ZERO);
        assert_eq!(q.push(Cycle::new(80), Cycle::new(10)), Cycle::new(50));
    }

    #[test]
    fn retire_frees_slots() {
        let mut q = WriteQueue::new(1);
        q.push(Cycle::new(50), Cycle::ZERO);
        // At cycle 60 the first write has retired; no stall.
        assert_eq!(q.push(Cycle::new(90), Cycle::new(60)), Cycle::new(60));
    }

    #[test]
    fn drain_time_is_last_completion() {
        let mut q = WriteQueue::new(8);
        q.push(Cycle::new(100), Cycle::ZERO);
        q.push(Cycle::new(250), Cycle::ZERO);
        assert_eq!(q.drain_time(Cycle::ZERO), Cycle::new(250));
        // Once time has passed the drain, drain_time is `now`.
        assert_eq!(q.drain_time(Cycle::new(300)), Cycle::new(300));
    }

    #[test]
    fn drain_time_of_empty_queue_is_now() {
        let q = WriteQueue::new(2);
        assert_eq!(q.drain_time(Cycle::new(42)), Cycle::new(42));
    }

    #[test]
    fn len_and_empty_respect_time() {
        let mut q = WriteQueue::new(4);
        q.push(Cycle::new(100), Cycle::ZERO);
        q.push(Cycle::new(200), Cycle::ZERO);
        assert_eq!(q.len_at(Cycle::ZERO), 2);
        assert_eq!(q.len_at(Cycle::new(150)), 1);
        assert!(q.is_empty_at(Cycle::new(201)));
        assert!(!q.is_empty_at(Cycle::new(199)));
    }

    #[test]
    fn discard_models_power_loss() {
        let mut q = WriteQueue::new(4);
        q.push(Cycle::new(1_000), Cycle::ZERO);
        q.discard();
        assert!(q.is_empty_at(Cycle::ZERO));
        assert_eq!(q.drain_time(Cycle::ZERO), Cycle::ZERO);
    }

    #[test]
    fn out_of_order_completions_are_clamped_monotone() {
        let mut q = WriteQueue::new(4);
        q.push(Cycle::new(300), Cycle::ZERO);
        q.push(Cycle::new(100), Cycle::ZERO); // clamped to 300
        assert_eq!(q.drain_time(Cycle::ZERO), Cycle::new(300));
    }

    #[test]
    fn discard_lost_counts_only_inflight_writes() {
        let mut q = WriteQueue::new(4);
        q.push(Cycle::new(100), Cycle::ZERO);
        q.push(Cycle::new(200), Cycle::ZERO);
        q.push(Cycle::new(300), Cycle::ZERO);
        // At cycle 150 the first write is durable; the other two are lost.
        assert_eq!(q.discard_lost(Cycle::new(150)), 2);
        assert!(q.is_empty_at(Cycle::ZERO));
        assert_eq!(q.discard_lost(Cycle::ZERO), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        WriteQueue::new(0);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(WriteQueue::new(64).capacity(), 64);
    }

    /// Pins the binary-search `len_at`/`is_empty_at` to the original O(n)
    /// filter-scan semantics: identical results (and therefore identical
    /// stall behavior) at every probe time across a long interleaving of
    /// pushes, including out-of-order completions and full-queue stalls.
    #[test]
    fn len_at_matches_linear_scan_reference() {
        let scan_len = |q: &WriteQueue, now: Cycle| q.pending.iter().filter(|&&c| c > now).count();
        let mut q = WriteQueue::new(8);
        let mut state = 0x5750_5144u64;
        let mut now = Cycle::ZERO;
        for _ in 0..500 {
            now += Cycle::new(thynvm_types::rng::next(&mut state) % 40);
            let completion = now + Cycle::new(thynvm_types::rng::next(&mut state) % 300);
            q.push(completion, now);
            for probe in [Cycle::ZERO, now, completion, completion + Cycle::new(1)] {
                assert_eq!(q.len_at(probe), scan_len(&q, probe), "probe={probe}");
                assert_eq!(q.is_empty_at(probe), scan_len(&q, probe) == 0, "probe={probe}");
            }
            // push() retires eagerly, so `pending` is bounded by the true
            // in-flight count plus the entries not yet observed to retire.
            assert!(q.pending.len() <= q.capacity());
        }
    }
}
