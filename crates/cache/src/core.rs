//! In-order core timing model and the platform run loop.
//!
//! [`CoreModel`] couples the 3 GHz in-order core of Table 2 with the cache
//! hierarchy and drives any [`MemorySystem`]:
//!
//! * non-memory instructions retire at 1 IPC;
//! * a memory instruction probes the caches; on a miss the core stalls until
//!   main memory returns the block (in-order, blocking);
//! * last-level-cache writebacks are posted to memory without stalling the
//!   core (they occupy memory banks, creating contention);
//! * when the memory system reports that the execution phase is over
//!   ([`MemorySystem::checkpoint_due`]), the core stalls, performs the §4.4
//!   hardware flush (cleans every dirty cache block), hands the flushed
//!   blocks to [`MemorySystem::begin_checkpoint`], and resumes when the
//!   system permits.

use thynvm_types::{CacheConfig, Cycle, MemRequest, MemorySystem, TraceEvent};

use crate::hierarchy::CacheHierarchy;

/// Statistics of one core run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired (gap instructions + memory instructions).
    pub instructions: u64,
    /// Memory instructions executed.
    pub mem_accesses: u64,
    /// Cycles the core stalled waiting for main memory.
    pub mem_stall_cycles: Cycle,
    /// Cycles the core stalled for checkpoint flushes / checkpoint
    /// back-pressure.
    pub flush_stall_cycles: Cycle,
    /// Number of checkpoint flushes performed.
    pub flushes: u64,
}

/// The in-order core model.
///
/// # Example
///
/// ```no_run
/// use thynvm_cache::CoreModel;
/// use thynvm_types::{MemorySystem, SystemConfig, TraceEvent};
///
/// fn run(events: &[TraceEvent], mem: &mut dyn MemorySystem) -> f64 {
///     let mut core = CoreModel::new(SystemConfig::paper().cache);
///     core.run_trace(events.iter().copied(), mem);
///     core.ipc()
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    hierarchy: CacheHierarchy,
    now: Cycle,
    stats: CoreStats,
}

impl CoreModel {
    /// Creates a core with a fresh cache hierarchy.
    pub fn new(cache_config: CacheConfig) -> Self {
        Self {
            hierarchy: CacheHierarchy::new(cache_config),
            now: Cycle::ZERO,
            stats: CoreStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The cache hierarchy (for inspection in tests).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Instructions per cycle achieved so far (0 when no time has passed).
    pub fn ipc(&self) -> f64 {
        if self.now == Cycle::ZERO {
            0.0
        } else {
            self.stats.instructions as f64 / self.now.raw() as f64
        }
    }

    /// Executes one trace event against `mem`.
    pub fn execute(&mut self, event: &TraceEvent, mem: &mut dyn MemorySystem) {
        // Gap instructions retire at 1 IPC.
        self.now += Cycle::new(u64::from(event.gap));
        self.stats.instructions += event.instructions();
        self.stats.mem_accesses += 1;

        // The access may straddle blocks; each block goes through the caches.
        for block in event.req.blocks_touched() {
            let outcome = self.hierarchy.access(block, event.req.kind);
            self.now += Cycle::new(outcome.latency_cycles);

            // Writebacks are posted (non-blocking for the core).
            for wb in outcome.writebacks {
                mem.access(&MemRequest::write(wb, 64), self.now);
            }

            // A fetch blocks the in-order core.
            if let Some(addr) = outcome.fetch {
                let done = mem.access(&MemRequest::read(addr, 64), self.now);
                self.stats.mem_stall_cycles += done.saturating_sub(self.now);
                self.now = done;
            }
        }

        // Epoch handshake: controller may request end-of-execution-phase.
        if mem.checkpoint_due(self.now) {
            self.flush_and_checkpoint(mem);
        }
    }

    /// Performs the §4.4 flush + checkpoint handshake immediately.
    pub fn flush_and_checkpoint(&mut self, mem: &mut dyn MemorySystem) {
        let flush_start = self.now;
        let flushed = self.hierarchy.clean_all();
        let resume = mem.begin_checkpoint(self.now, &flushed);
        self.stats.flush_stall_cycles += resume.saturating_sub(flush_start);
        self.now = resume.max(self.now);
        self.stats.flushes += 1;
    }

    /// Runs a whole trace, performs a final flush + checkpoint so that all
    /// dirty cached state becomes durable (free on systems without
    /// checkpointing), then drains the memory system so deferred checkpoint
    /// work is charged to this run. Returns the final cycle.
    pub fn run_trace<I>(&mut self, events: I, mem: &mut dyn MemorySystem) -> Cycle
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        for event in events {
            self.execute(&event, mem);
        }
        self.flush_and_checkpoint(mem);
        self.now = mem.drain(self.now);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::{AccessKind, MemStats, PhysAddr, SystemConfig};

    /// Fixed-latency memory that can request a checkpoint once.
    #[derive(Debug)]
    struct TestMem {
        stats: MemStats,
        latency: Cycle,
        ckpt_at: Option<Cycle>,
        ckpt_cost: Cycle,
        flushed_blocks: Vec<PhysAddr>,
    }

    impl TestMem {
        fn new(latency: u64) -> Self {
            Self {
                stats: MemStats::default(),
                latency: Cycle::new(latency),
                ckpt_at: None,
                ckpt_cost: Cycle::ZERO,
                flushed_blocks: Vec::new(),
            }
        }
    }

    impl MemorySystem for TestMem {
        fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
            match req.kind {
                AccessKind::Read => self.stats.reads += 1,
                AccessKind::Write => self.stats.writes += 1,
            }
            now + self.latency
        }

        fn checkpoint_due(&self, now: Cycle) -> bool {
            self.ckpt_at.is_some_and(|t| now >= t)
        }

        fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
            self.ckpt_at = None;
            self.flushed_blocks = flushed.to_vec();
            now + self.ckpt_cost
        }

        fn drain(&mut self, now: Cycle) -> Cycle {
            now
        }

        fn stats(&self) -> &MemStats {
            &self.stats
        }

        fn name(&self) -> &'static str {
            "TestMem"
        }
    }

    fn ev(gap: u32, addr: u64, write: bool) -> TraceEvent {
        let req = if write {
            MemRequest::write(PhysAddr::new(addr), 8)
        } else {
            MemRequest::read(PhysAddr::new(addr), 8)
        };
        TraceEvent::new(gap, req)
    }

    #[test]
    fn gap_instructions_cost_one_cycle_each() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(100);
        core.execute(&ev(10, 0, false), &mut mem);
        // 10 gap cycles + 28 (L3 lookup on cold miss) + 100 memory.
        assert_eq!(core.now(), Cycle::new(10 + 28 + 100));
        assert_eq!(core.stats().instructions, 11);
        assert_eq!(core.stats().mem_stall_cycles, Cycle::new(100));
    }

    #[test]
    fn cache_hit_avoids_memory() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(100);
        core.execute(&ev(0, 0, false), &mut mem);
        let before = core.now();
        core.execute(&ev(0, 8, false), &mut mem);
        assert_eq!(core.now() - before, Cycle::new(4)); // L1 hit only
        assert_eq!(mem.stats().reads, 1); // no extra fetch
    }

    #[test]
    fn ipc_reflects_stalls() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(1000);
        core.execute(&ev(0, 0, false), &mut mem);
        assert!(core.ipc() < 0.01);
        assert_eq!(CoreModel::new(SystemConfig::paper().cache).ipc(), 0.0);
    }

    #[test]
    fn checkpoint_handshake_flushes_dirty_blocks() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(10);
        core.execute(&ev(0, 0, true), &mut mem); // dirty block 0
        mem.ckpt_at = Some(Cycle::ZERO); // request checkpoint now
        mem.ckpt_cost = Cycle::new(500);
        let before = core.now();
        core.execute(&ev(0, 4096, false), &mut mem);
        assert_eq!(core.stats().flushes, 1);
        assert_eq!(mem.flushed_blocks, vec![PhysAddr::new(0)]);
        assert_eq!(core.stats().flush_stall_cycles, Cycle::new(500));
        assert!(core.now() > before + Cycle::new(500));
        // Caches were cleaned, not invalidated.
        assert_eq!(core.hierarchy().dirty_blocks(), 0);
    }

    #[test]
    fn run_trace_drains_memory() {
        #[derive(Debug)]
        struct Draining(MemStats, Cycle);
        impl MemorySystem for Draining {
            fn access(&mut self, _req: &MemRequest, now: Cycle) -> Cycle {
                now
            }
            fn drain(&mut self, now: Cycle) -> Cycle {
                self.1 = now + Cycle::new(777);
                self.1
            }
            fn stats(&self) -> &MemStats {
                &self.0
            }
            fn name(&self) -> &'static str {
                "Draining"
            }
        }
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = Draining(MemStats::default(), Cycle::ZERO);
        let end = core.run_trace(vec![ev(1, 0, true)], &mut mem);
        assert_eq!(end, mem.1);
        assert_eq!(core.now(), end);
    }

    #[test]
    fn multi_block_request_touches_each_block() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(10);
        // 256 B read = 4 blocks, all cold.
        let req = MemRequest::read(PhysAddr::new(0), 256);
        core.execute(&TraceEvent::new(0, req), &mut mem);
        assert_eq!(mem.stats().reads, 4);
    }

    #[test]
    fn writebacks_do_not_stall_core() {
        let mut core = CoreModel::new(SystemConfig::paper().cache);
        let mut mem = TestMem::new(10);
        // Stream writes over 3 MB to force L3 dirty evictions.
        for i in 0..(3 * 1024 * 1024 / 64u64) {
            core.execute(&ev(0, i * 64, true), &mut mem);
        }
        assert!(mem.stats().writes > 0, "L3 evictions must reach memory");
        // Core stall only accounts for fetches (reads), not writebacks:
        // every fetch stalls exactly 10 cycles.
        assert_eq!(
            core.stats().mem_stall_cycles,
            Cycle::new(10 * mem.stats().reads)
        );
    }
}
