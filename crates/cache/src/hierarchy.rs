//! The three-level cache hierarchy of Table 2.
//!
//! Lookup walks L1 → L2 → L3. A hit at level *k* costs that level's hit
//! latency and fills the block into the levels above it. A miss in all
//! levels produces a [`HierarchyOutcome::fetch`] that the platform must send
//! to main memory. Evictions cascade downward: a dirty victim of L1 is
//! installed into L2, a dirty victim of L2 into L3, and a dirty victim of
//! L3 becomes a [`HierarchyOutcome::writebacks`] entry destined for main
//! memory. Clean victims are dropped silently.

use thynvm_types::{AccessKind, CacheConfig, PhysAddr};

use crate::cache::SetAssocCache;

/// Result of one hierarchy lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Cycles spent in the cache hierarchy itself (hit latency of the level
    /// that serviced the request; memory latency not included).
    pub latency_cycles: u64,
    /// Block that must be fetched from main memory (miss in all levels).
    pub fetch: Option<PhysAddr>,
    /// Dirty blocks pushed out to main memory by this access.
    pub writebacks: Vec<PhysAddr>,
}

/// Three-level writeback hierarchy (private L1/L2, shared L3).
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    config: CacheConfig,
}

impl CacheHierarchy {
    /// Creates the hierarchy from a configuration.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            l1: SetAssocCache::new(config.l1_bytes, config.l1_ways),
            l2: SetAssocCache::new(config.l2_bytes, config.l2_ways),
            l3: SetAssocCache::new(config.l3_bytes, config.l3_ways),
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Install a block into L1, cascading evictions down to `out`.
    fn fill_l1(&mut self, addr: PhysAddr, dirty: bool, out: &mut Vec<PhysAddr>) {
        if let Some(ev) = self.l1.fill(addr, dirty) {
            if ev.dirty {
                self.fill_l2(ev.addr, true, out);
            }
        }
    }

    /// Install a block into L2, cascading evictions down to `out`.
    fn fill_l2(&mut self, addr: PhysAddr, dirty: bool, out: &mut Vec<PhysAddr>) {
        if let Some(ev) = self.l2.fill(addr, dirty) {
            if ev.dirty {
                self.fill_l3(ev.addr, true, out);
            }
        }
    }

    /// Install a block into L3; dirty victims go to main memory.
    fn fill_l3(&mut self, addr: PhysAddr, dirty: bool, out: &mut Vec<PhysAddr>) {
        if let Some(ev) = self.l3.fill(addr, dirty) {
            if ev.dirty {
                out.push(ev.addr);
            }
        }
    }

    /// Performs one access. `kind` decides whether the block is dirtied.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> HierarchyOutcome {
        let is_write = kind.is_write();
        let mut out = HierarchyOutcome::default();

        if self.l1.access(addr, is_write) {
            out.latency_cycles = self.config.l1_hit_cycles;
            return out;
        }
        if self.l2.access(addr, false) {
            out.latency_cycles = self.config.l2_hit_cycles;
            self.fill_l1(addr, is_write, &mut out.writebacks);
            return out;
        }
        if self.l3.access(addr, false) {
            out.latency_cycles = self.config.l3_hit_cycles;
            self.fill_l2(addr, false, &mut out.writebacks);
            self.fill_l1(addr, is_write, &mut out.writebacks);
            return out;
        }

        // Miss everywhere: fetch from memory and install in all levels.
        out.latency_cycles = self.config.l3_hit_cycles;
        out.fetch = Some(addr.block_aligned());
        self.fill_l3(addr, false, &mut out.writebacks);
        self.fill_l2(addr, false, &mut out.writebacks);
        self.fill_l1(addr, is_write, &mut out.writebacks);
        out
    }

    /// Cleans every dirty block in every level without invalidation
    /// (the §4.4 hardware flush) and returns the deduplicated set of block
    /// addresses that must be written to main memory.
    pub fn clean_all(&mut self) -> Vec<PhysAddr> {
        let mut dirty = self.l1.clean_all();
        dirty.extend(self.l2.clean_all());
        dirty.extend(self.l3.clean_all());
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Total dirty blocks across all levels (before deduplication).
    pub fn dirty_blocks(&self) -> usize {
        self.l1.dirty_blocks() + self.l2.dirty_blocks() + self.l3.dirty_blocks()
    }

    /// Per-level `(hits, misses)` for L1, L2 and L3.
    pub fn hit_miss_counts(&self) -> [(u64, u64); 3] {
        [
            (self.l1.hits(), self.l1.misses()),
            (self.l2.hits(), self.l2.misses()),
            (self.l3.hits(), self.l3.misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::SystemConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(SystemConfig::paper().cache)
    }

    #[test]
    fn cold_miss_fetches_from_memory() {
        let mut h = hierarchy();
        let out = h.access(PhysAddr::new(0x1000), AccessKind::Read);
        assert_eq!(out.fetch, Some(PhysAddr::new(0x1000)));
        assert_eq!(out.latency_cycles, 28);
        assert!(out.writebacks.is_empty());
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0x1000), AccessKind::Read);
        let out = h.access(PhysAddr::new(0x1010), AccessKind::Read);
        assert!(out.fetch.is_none());
        assert_eq!(out.latency_cycles, 4);
    }

    #[test]
    fn fetch_is_block_aligned() {
        let mut h = hierarchy();
        let out = h.access(PhysAddr::new(0x1234), AccessKind::Write);
        assert_eq!(out.fetch, Some(PhysAddr::new(0x1200)));
    }

    #[test]
    fn write_dirties_l1_only_until_eviction() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0), AccessKind::Write);
        assert_eq!(h.dirty_blocks(), 1);
    }

    #[test]
    fn l1_eviction_falls_to_l2_and_hits_there() {
        let mut h = hierarchy();
        // L1 is 32 KB / 64 sets of 8: fill one set with 9 conflicting blocks.
        let l1_blocks = 32 * 1024 / 64; // 512
        let sets = 64u64;
        let _ = sets;
        let stride = (l1_blocks / 8) as u64 * 64; // one L1 set apart
        for i in 0..9u64 {
            h.access(PhysAddr::new(i * stride), AccessKind::Read);
        }
        // Block 0 was evicted from L1 but lives in L2.
        let out = h.access(PhysAddr::new(0), AccessKind::Read);
        assert!(out.fetch.is_none());
        assert_eq!(out.latency_cycles, 12);
    }

    #[test]
    fn dirty_data_survives_cascade_to_memory() {
        // A stream larger than L3 must eventually push dirty blocks to memory.
        let mut h = hierarchy();
        let mut writebacks = 0usize;
        // Write 4 MB (2x the 2 MB L3).
        for i in 0..(4 * 1024 * 1024 / 64u64) {
            let out = h.access(PhysAddr::new(i * 64), AccessKind::Write);
            writebacks += out.writebacks.len();
        }
        assert!(writebacks > 0, "dirty blocks must reach memory");
    }

    #[test]
    fn clean_all_returns_unique_dirty_blocks() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0), AccessKind::Write);
        h.access(PhysAddr::new(64), AccessKind::Write);
        h.access(PhysAddr::new(64), AccessKind::Write); // same block twice
        let cleaned = h.clean_all();
        assert_eq!(cleaned, vec![PhysAddr::new(0), PhysAddr::new(64)]);
        assert_eq!(h.dirty_blocks(), 0);
        // Blocks still resident: next access is an L1 hit.
        let out = h.access(PhysAddr::new(0), AccessKind::Read);
        assert_eq!(out.latency_cycles, 4);
    }

    #[test]
    fn clean_then_rewrite_redirties() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0), AccessKind::Write);
        h.clean_all();
        h.access(PhysAddr::new(0), AccessKind::Write);
        assert_eq!(h.dirty_blocks(), 1);
    }

    #[test]
    fn read_after_write_hit_does_not_clean() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0), AccessKind::Write);
        h.access(PhysAddr::new(0), AccessKind::Read);
        assert_eq!(h.dirty_blocks(), 1);
    }

    #[test]
    fn hit_miss_counts_accumulate() {
        let mut h = hierarchy();
        h.access(PhysAddr::new(0), AccessKind::Read); // miss everywhere
        h.access(PhysAddr::new(0), AccessKind::Read); // L1 hit
        let [(h1, m1), (_, m2), (_, m3)] = h.hit_miss_counts();
        assert_eq!((h1, m1), (1, 1));
        assert_eq!(m2, 1);
        assert_eq!(m3, 1);
    }

    #[test]
    fn config_accessor() {
        let h = hierarchy();
        assert_eq!(h.config().l1_hit_cycles, 4);
    }
}
