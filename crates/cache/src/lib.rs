//! CPU cache hierarchy and in-order core timing model.
//!
//! Rebuilds the processor-side substrate of the paper's gem5 setup
//! (Table 2): a 3 GHz in-order core with a three-level writeback cache
//! hierarchy (32 KB L1, 256 KB L2, 2 MB L3; 64 B blocks; 4/12/28-cycle
//! hits).
//!
//! * [`cache::SetAssocCache`] — one set-associative LRU writeback cache.
//! * [`hierarchy::CacheHierarchy`] — the three-level chain. A lookup
//!   returns the hit latency and the memory operations (fetch, writebacks)
//!   that must be sent to main memory.
//! * [`core::CoreModel`] — an in-order core that executes a memory trace,
//!   stalling on memory, and reports instructions-per-cycle (Figure 11).
//!
//! The hierarchy also implements the hardware data flush of §4.4: cleaning
//! all dirty blocks *without invalidating them* (like Intel `CLWB`), used at
//! every checkpoint to make CPU-cached state reach the memory controller.
//!
//! # Example
//!
//! ```
//! use thynvm_cache::CacheHierarchy;
//! use thynvm_types::{AccessKind, PhysAddr, SystemConfig};
//!
//! let mut h = CacheHierarchy::new(SystemConfig::paper().cache);
//! let out = h.access(PhysAddr::new(0x80), AccessKind::Read);
//! assert!(out.fetch.is_some()); // cold miss goes to memory
//! let out = h.access(PhysAddr::new(0x80), AccessKind::Read);
//! assert!(out.fetch.is_none()); // now it hits
//! assert_eq!(out.latency_cycles, 4); // L1 hit
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod core;
pub mod hierarchy;
pub mod multicore;

pub use crate::core::{CoreModel, CoreStats};
pub use multicore::{CoreResult, MulticorePlatform};
pub use cache::{Eviction, SetAssocCache};
pub use hierarchy::{CacheHierarchy, HierarchyOutcome};
