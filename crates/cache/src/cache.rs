//! A single set-associative, writeback, write-allocate cache with LRU
//! replacement.

use thynvm_types::{PhysAddr, BLOCK_BYTES};

/// A block evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base physical address of the evicted block.
    pub addr: PhysAddr,
    /// Whether the block was dirty (must be written back downstream).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

impl Line {
    const INVALID: Line = Line { tag: 0, valid: false, dirty: false, lru: 0 };
}

/// One level of a writeback cache.
///
/// Addresses are managed at 64 B block granularity; any byte address within
/// a block maps to the same line. The cache is *write-allocate*: a store
/// miss fills the block, then dirties it.
///
/// # Example
///
/// ```
/// use thynvm_cache::SetAssocCache;
/// use thynvm_types::PhysAddr;
///
/// let mut c = SetAssocCache::new(4096, 4); // 4 KiB, 4-way
/// assert!(!c.probe(PhysAddr::new(0)));
/// c.fill(PhysAddr::new(0), false);
/// assert!(c.probe(PhysAddr::new(63))); // same block
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `bytes` capacity and `ways` associativity with
    /// 64 B blocks.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * BLOCK_BYTES` or if `ways` is zero.
    pub fn new(bytes: u64, ways: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let ways = ways as usize;
        let blocks = (bytes / BLOCK_BYTES) as usize;
        assert!(blocks > 0 && blocks.is_multiple_of(ways), "capacity must be a multiple of ways × 64 B");
        let sets = blocks / ways;
        Self { sets, ways, lines: vec![Line::INVALID; blocks], tick: 0, hits: 0, misses: 0 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let block = addr.raw() / BLOCK_BYTES;
        ((block % self.sets as u64) as usize, block / self.sets as u64)
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    /// Looks up `addr` without modifying replacement state or statistics.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        let start = set * self.ways;
        self.lines[start..start + self.ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Looks up `addr`; on a hit updates LRU (and the dirty bit for writes)
    /// and returns `true`. On a miss returns `false` without filling —
    /// call [`SetAssocCache::fill`] to install the block.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        for line in self.set_lines(set) {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if is_write {
                    line.dirty = true;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs the block containing `addr`, marking it dirty if `dirty`.
    /// Returns the victim if a valid block had to be evicted.
    ///
    /// Filling a block that is already present just updates its dirty bit.
    pub fn fill(&mut self, addr: PhysAddr, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let sets = self.sets as u64;
        let lines = self.set_lines(set);

        // Already present (e.g. racing fill): refresh.
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= dirty;
            return None;
        }

        // Prefer an invalid way.
        if let Some(line) = lines.iter_mut().find(|l| !l.valid) {
            *line = Line { tag, valid: true, dirty, lru: tick };
            return None;
        }

        // Evict LRU.
        let victim = lines.iter_mut().min_by_key(|l| l.lru).expect("ways > 0");
        let evicted = Eviction {
            addr: PhysAddr::new((victim.tag * sets + set as u64) * BLOCK_BYTES),
            dirty: victim.dirty,
        };
        *victim = Line { tag, valid: true, dirty, lru: tick };
        Some(evicted)
    }

    /// Invalidates the block containing `addr` if present, returning whether
    /// it was dirty.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<bool> {
        let (set, tag) = self.index(addr);
        for line in self.set_lines(set) {
            if line.valid && line.tag == tag {
                let dirty = line.dirty;
                *line = Line::INVALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Cleans every dirty block *without invalidating it* (CLWB-like, §4.4)
    /// and returns the addresses of the blocks that were dirty.
    pub fn clean_all(&mut self) -> Vec<PhysAddr> {
        let sets = self.sets as u64;
        let mut cleaned = Vec::new();
        for (i, line) in self.lines.iter_mut().enumerate() {
            if line.valid && line.dirty {
                let set = (i / self.ways) as u64;
                cleaned.push(PhysAddr::new((line.tag * sets + set) * BLOCK_BYTES));
                line.dirty = false;
            }
        }
        cleaned
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Number of dirty blocks currently resident.
    pub fn dirty_blocks(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64 B = 256 B.
        SetAssocCache::new(256, 2)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.sets(), 2);
        assert_eq!(c.ways(), 2);
        let big = SetAssocCache::new(32 * 1024, 8);
        assert_eq!(big.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_capacity_rejected() {
        SetAssocCache::new(100, 3);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(PhysAddr::new(0), false));
        c.fill(PhysAddr::new(0), false);
        assert!(c.access(PhysAddr::new(0), false));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_block_different_byte_hits() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), false);
        assert!(c.access(PhysAddr::new(63), true));
        assert!(!c.access(PhysAddr::new(64), false)); // next block
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds blocks whose block index is even (2 sets).
        let a = PhysAddr::new(0); // set 0
        let b = PhysAddr::new(128); // set 0
        let d = PhysAddr::new(256); // set 0
        c.fill(a, false);
        c.fill(b, false);
        // Touch a so b becomes LRU.
        c.access(a, false);
        let ev = c.fill(d, false).expect("eviction");
        assert_eq!(ev.addr, b);
        assert!(!ev.dirty);
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), true);
        c.fill(PhysAddr::new(128), false);
        c.access(PhysAddr::new(128), false);
        let ev = c.fill(PhysAddr::new(256), false).expect("eviction");
        assert_eq!(ev.addr, PhysAddr::new(0));
        assert!(ev.dirty);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), false);
        assert_eq!(c.dirty_blocks(), 0);
        c.access(PhysAddr::new(0), true);
        assert_eq!(c.dirty_blocks(), 1);
    }

    #[test]
    fn refill_existing_block_keeps_single_copy() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), false);
        assert!(c.fill(PhysAddr::new(0), true).is_none());
        assert_eq!(c.resident_blocks(), 1);
        assert_eq!(c.dirty_blocks(), 1); // dirty bit merged
    }

    #[test]
    fn clean_all_cleans_but_keeps_blocks() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), true);
        c.fill(PhysAddr::new(64), true);
        c.fill(PhysAddr::new(128), false);
        let mut cleaned = c.clean_all();
        cleaned.sort();
        assert_eq!(cleaned, vec![PhysAddr::new(0), PhysAddr::new(64)]);
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.resident_blocks(), 3); // not invalidated (CLWB semantics)
        assert!(c.probe(PhysAddr::new(0)));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), true);
        assert_eq!(c.invalidate(PhysAddr::new(0)), Some(true));
        assert_eq!(c.invalidate(PhysAddr::new(0)), None);
        assert!(!c.probe(PhysAddr::new(0)));
    }

    #[test]
    fn eviction_address_reconstruction() {
        // A cache with many sets: make sure evicted addresses are exact.
        let mut c = SetAssocCache::new(32 * 1024, 8); // 64 sets
        let addr = PhysAddr::new(123 * 64);
        c.fill(addr, true);
        // Fill the same set with 8 more conflicting blocks.
        let sets = c.sets() as u64;
        let mut evicted = Vec::new();
        for i in 1..=8u64 {
            let conflict = PhysAddr::new((123 + i * sets) * 64);
            if let Some(ev) = c.fill(conflict, false) {
                evicted.push(ev.addr);
            }
        }
        assert!(evicted.contains(&addr.block_aligned()));
    }

    #[test]
    fn capacity_bounded_residency() {
        let mut c = tiny(); // 4 blocks
        for i in 0..100u64 {
            let addr = PhysAddr::new(i * 64);
            if !c.access(addr, false) {
                c.fill(addr, false);
            }
        }
        assert_eq!(c.resident_blocks(), 4);
    }
}
