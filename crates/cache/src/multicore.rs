//! Multi-core platform: private L1/L2 per core, shared L3, one memory
//! system.
//!
//! Table 2 specifies the L3 as "2 MB/core", implying the authors' platform
//! scales to multiple cores even though the evaluation drives one. This
//! module provides that scaling: each core owns a private L1/L2 pair and
//! executes its own trace; a shared L3 (sized `l3_bytes × cores`) sits in
//! front of the single memory system, whose banks and checkpoint machinery
//! all cores contend for.
//!
//! Scheduling is deterministic: at every step the core with the smallest
//! local clock executes its next event (ties broken by core index), so
//! interleavings are reproducible. The checkpoint handshake (§4.4) stalls
//! *all* cores: every private cache and the L3 are cleaned, the combined
//! dirty set is handed to [`MemorySystem::begin_checkpoint`], and every
//! core resumes at the controller's resume cycle.

use thynvm_types::{CacheConfig, Cycle, MemRequest, MemorySystem, TraceEvent};

use crate::cache::SetAssocCache;
use crate::core::CoreStats;

/// Per-core private state.
#[derive(Debug)]
struct Core {
    l1: SetAssocCache,
    l2: SetAssocCache,
    now: Cycle,
    stats: CoreStats,
    events: std::vec::IntoIter<TraceEvent>,
    /// The next event, pre-fetched for scheduling.
    pending: Option<TraceEvent>,
}

/// Result of one core's run.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Final local clock of the core.
    pub cycles: Cycle,
    /// The core's statistics.
    pub stats: CoreStats,
}

impl CoreResult {
    /// The core's instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == Cycle::ZERO {
            0.0
        } else {
            self.stats.instructions as f64 / self.cycles.raw() as f64
        }
    }
}

/// The multi-core platform.
///
/// # Example
///
/// ```no_run
/// use thynvm_cache::MulticorePlatform;
/// use thynvm_types::{MemorySystem, SystemConfig, TraceEvent};
///
/// fn run(traces: Vec<Vec<TraceEvent>>, mem: &mut dyn MemorySystem) -> f64 {
///     let mut platform = MulticorePlatform::new(SystemConfig::paper().cache, traces.len());
///     let results = platform.run(traces, mem);
///     results.iter().map(|r| r.ipc()).sum::<f64>() // aggregate IPC
/// }
/// ```
#[derive(Debug)]
pub struct MulticorePlatform {
    cores: Vec<Core>,
    l3: SetAssocCache,
    config: CacheConfig,
    flushes: u64,
}

impl MulticorePlatform {
    /// Creates a platform with `n` cores. The shared L3 is `l3_bytes`
    /// (which Table 2 gives per core) times `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(config: CacheConfig, n: usize) -> Self {
        assert!(n > 0, "platform needs at least one core");
        let cores = (0..n)
            .map(|_| Core {
                l1: SetAssocCache::new(config.l1_bytes, config.l1_ways),
                l2: SetAssocCache::new(config.l2_bytes, config.l2_ways),
                now: Cycle::ZERO,
                stats: CoreStats::default(),
                events: Vec::new().into_iter(),
                pending: None,
            })
            .collect();
        Self {
            cores,
            l3: SetAssocCache::new(config.l3_bytes * n as u64, config.l3_ways),
            config,
            flushes: 0,
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Checkpoint flushes performed (whole-platform stalls).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Executes one memory access for core `ci`, returning writebacks to
    /// memory.
    fn access(&mut self, ci: usize, event: &TraceEvent, mem: &mut dyn MemorySystem) {
        let core = &mut self.cores[ci];
        core.now += Cycle::new(u64::from(event.gap));
        core.stats.instructions += event.instructions();
        core.stats.mem_accesses += 1;

        for block in event.req.blocks_touched() {
            let is_write = event.req.kind.is_write();
            let core = &mut self.cores[ci];

            // L1.
            if core.l1.access(block, is_write) {
                core.now += Cycle::new(self.config.l1_hit_cycles);
                continue;
            }
            // L2.
            let l2_hit = core.l2.access(block, false);
            if l2_hit {
                core.now += Cycle::new(self.config.l2_hit_cycles);
            } else {
                // L3 (shared).
                let l3_hit = self.l3.access(block, false);
                let core = &mut self.cores[ci];
                core.now += Cycle::new(self.config.l3_hit_cycles);
                if !l3_hit {
                    // Fetch from memory; the in-order core blocks.
                    let issue = core.now;
                    let done = mem.access(&MemRequest::read(block, 64), issue);
                    let core = &mut self.cores[ci];
                    core.stats.mem_stall_cycles += done.saturating_sub(issue);
                    core.now = done;
                    // Install into L3; dirty victims go to memory.
                    if let Some(ev) = self.l3.fill(block, false) {
                        if ev.dirty {
                            let now = self.cores[ci].now;
                            mem.access(&MemRequest::write(ev.addr, 64), now);
                        }
                    }
                }
                // Install into L2; dirty victims go to L3.
                let core = &mut self.cores[ci];
                if let Some(ev) = core.l2.fill(block, false) {
                    if ev.dirty {
                        if let Some(l3ev) = self.l3.fill(ev.addr, true) {
                            if l3ev.dirty {
                                let now = self.cores[ci].now;
                                mem.access(&MemRequest::write(l3ev.addr, 64), now);
                            }
                        }
                    }
                }
            }
            // Install into L1; dirty victims go to L2 (cascading).
            let core = &mut self.cores[ci];
            if let Some(ev) = core.l1.fill(block, is_write) {
                if ev.dirty {
                    if let Some(l2ev) = core.l2.fill(ev.addr, true) {
                        if l2ev.dirty {
                            if let Some(l3ev) = self.l3.fill(l2ev.addr, true) {
                                if l3ev.dirty {
                                    let now = self.cores[ci].now;
                                    mem.access(&MemRequest::write(l3ev.addr, 64), now);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Platform-wide flush + checkpoint: all cores stall.
    fn flush_and_checkpoint(&mut self, mem: &mut dyn MemorySystem) {
        let barrier = self.cores.iter().map(|c| c.now).max().unwrap_or(Cycle::ZERO);
        let mut dirty = Vec::new();
        for core in &mut self.cores {
            dirty.extend(core.l1.clean_all());
            dirty.extend(core.l2.clean_all());
        }
        dirty.extend(self.l3.clean_all());
        dirty.sort_unstable();
        dirty.dedup();
        let resume = mem.begin_checkpoint(barrier, &dirty);
        for core in &mut self.cores {
            core.stats.flush_stall_cycles += resume.saturating_sub(core.now);
            core.now = resume.max(core.now);
            core.stats.flushes += 1;
        }
        self.flushes += 1;
    }

    /// Runs one trace per core to completion against `mem`, then performs a
    /// final flush and drains. Returns one result per core.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces differs from the number of cores.
    pub fn run(
        &mut self,
        traces: Vec<Vec<TraceEvent>>,
        mem: &mut dyn MemorySystem,
    ) -> Vec<CoreResult> {
        assert_eq!(traces.len(), self.cores.len(), "one trace per core");
        for (core, trace) in self.cores.iter_mut().zip(traces) {
            core.events = trace.into_iter();
            core.pending = core.events.next();
        }

        loop {
            // Deterministic schedule: smallest local clock with work left.
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.pending.is_some())
                .min_by_key(|(i, c)| (c.now, *i))
                .map(|(i, _)| i);
            let Some(ci) = next else { break };
            let event = self.cores[ci].pending.take().expect("filtered on pending");
            self.cores[ci].pending = self.cores[ci].events.next();
            self.access(ci, &event, mem);

            if mem.checkpoint_due(self.cores[ci].now) {
                self.flush_and_checkpoint(mem);
            }
        }

        self.flush_and_checkpoint(mem);
        let end = {
            let latest = self.cores.iter().map(|c| c.now).max().unwrap_or(Cycle::ZERO);
            mem.drain(latest)
        };
        self.cores
            .iter()
            .map(|c| CoreResult { cycles: c.now.max(end.min(c.now)), stats: c.stats.clone() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::{AccessKind, MemStats, PhysAddr, SystemConfig};

    #[derive(Debug, Default)]
    struct FixedMem {
        stats: MemStats,
        flushed: Vec<usize>,
    }

    impl MemorySystem for FixedMem {
        fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
            match req.kind {
                AccessKind::Read => self.stats.reads += 1,
                AccessKind::Write => self.stats.writes += 1,
            }
            now + Cycle::new(100)
        }
        fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
            self.flushed.push(flushed.len());
            now + Cycle::new(1_000)
        }
        fn drain(&mut self, now: Cycle) -> Cycle {
            now
        }
        fn stats(&self) -> &MemStats {
            &self.stats
        }
        fn name(&self) -> &'static str {
            "FixedMem"
        }
    }

    fn trace(base: u64, n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                let addr = PhysAddr::new(base + i * 64);
                let req = if i % 2 == 0 {
                    MemRequest::write(addr, 64)
                } else {
                    MemRequest::read(addr, 64)
                };
                TraceEvent::new(2, req)
            })
            .collect()
    }

    #[test]
    fn single_core_platform_runs() {
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 1);
        let mut mem = FixedMem::default();
        let results = p.run(vec![trace(0, 1_000)], &mut mem);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].stats.instructions, 3_000);
        assert!(results[0].ipc() > 0.0);
    }

    #[test]
    fn all_cores_execute_their_traces() {
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 4);
        let mut mem = FixedMem::default();
        // Disjoint 16 MB-apart address spaces per core.
        let traces: Vec<_> = (0..4).map(|c| trace(c * (16 << 20), 500)).collect();
        let results = p.run(traces, &mut mem);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.stats.instructions, 1_500);
            assert_eq!(r.stats.mem_accesses, 500);
        }
    }

    #[test]
    fn final_flush_reaches_memory_once() {
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 2);
        let mut mem = FixedMem::default();
        p.run(vec![trace(0, 100), trace(1 << 24, 100)], &mut mem);
        assert_eq!(p.flushes(), 1, "exactly the terminal flush");
        // Both cores' dirty blocks arrive in one combined set.
        assert_eq!(mem.flushed.len(), 1);
        assert!(mem.flushed[0] >= 100, "dirty blocks from both cores: {}", mem.flushed[0]);
    }

    #[test]
    fn checkpoint_stalls_every_core() {
        #[derive(Debug, Default)]
        struct DemandingMem {
            stats: MemStats,
            asked: bool,
        }
        impl MemorySystem for DemandingMem {
            fn access(&mut self, _req: &MemRequest, now: Cycle) -> Cycle {
                now + Cycle::new(10)
            }
            fn checkpoint_due(&self, _now: Cycle) -> bool {
                !self.asked
            }
            fn begin_checkpoint(&mut self, now: Cycle, _flushed: &[PhysAddr]) -> Cycle {
                self.asked = true;
                now + Cycle::new(5_000)
            }
            fn drain(&mut self, now: Cycle) -> Cycle {
                now
            }
            fn stats(&self) -> &MemStats {
                &self.stats
            }
            fn name(&self) -> &'static str {
                "DemandingMem"
            }
        }
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 2);
        let mut mem = DemandingMem::default();
        let results = p.run(vec![trace(0, 50), trace(1 << 24, 50)], &mut mem);
        for (i, r) in results.iter().enumerate() {
            assert!(
                r.stats.flush_stall_cycles >= Cycle::new(5_000),
                "core {i} did not stall for the checkpoint"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 3);
            let mut mem = FixedMem::default();
            let traces: Vec<_> = (0..3).map(|c| trace(c * (8 << 20), 400)).collect();
            p.run(traces, &mut mem).iter().map(|r| r.cycles).collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn shared_l3_gives_cross_core_hits() {
        // Two cores touching the SAME blocks: the second core's misses are
        // L3 hits (no second memory fetch).
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 2);
        let mut mem = FixedMem::default();
        // Core 1 starts far behind core 0 in time via long gaps.
        let t0 = trace(0, 200);
        let t1: Vec<_> = trace(0, 200)
            .into_iter()
            .map(|mut e| {
                e.gap = 200;
                e
            })
            .collect();
        p.run(vec![t0, t1], &mut mem);
        // 200 distinct blocks: without sharing 2×(reads needed); with the
        // shared L3 the total stays close to 200.
        assert!(
            mem.stats.reads < 300,
            "shared L3 should absorb the second core's fetches: {}",
            mem.stats.reads
        );
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_panics() {
        let mut p = MulticorePlatform::new(SystemConfig::paper().cache, 2);
        let mut mem = FixedMem::default();
        p.run(vec![trace(0, 10)], &mut mem);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        MulticorePlatform::new(SystemConfig::paper().cache, 0);
    }
}
