//! A STAMP-`vacation`-style composite transactional workload.
//!
//! The paper motivates ThyNVM with code adapted from STAMP (§2.1, Figure 1)
//! — transactional programs that previous persistent-memory designs force
//! through TM interfaces. This module reconstructs the *memory behaviour*
//! of STAMP's `vacation` benchmark: a travel reservation system with four
//! relation tables (cars, flights, rooms, customers) backed by the real
//! instrumented data structures of [`crate::kv`], where every client
//! request is a multi-step transaction touching several tables.
//!
//! Under ThyNVM the whole thing runs as plain code; under the software
//! approaches of §2.1 every one of these multi-table transactions would
//! need TM instrumentation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thynvm_types::TraceEvent;

use crate::arena::Arena;
use crate::kv::btree::BTreeKv;
use crate::kv::hash::HashKv;
use crate::kv::{KvOp, KvStore};

/// Kinds of client transactions, mirroring vacation's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transaction {
    /// Query availability of `n` items and reserve one of each kind.
    MakeReservation {
        /// Items examined before reserving.
        queries: u8,
    },
    /// Remove a customer and release their reservations.
    DeleteCustomer,
    /// Add/remove inventory items (manager operation).
    UpdateTables {
        /// Items inserted or removed.
        updates: u8,
    },
}

/// Configuration of the reservation-system workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VacationConfig {
    /// Rows initially loaded into each relation.
    pub relations: u64,
    /// Percentage of transactions that are reservations (the rest split
    /// evenly between deletions and table updates) — STAMP's `-u`.
    pub reserve_pct: u32,
    /// Queries per reservation — STAMP's `-q`.
    pub queries_per_txn: u8,
    /// Record payload size in bytes.
    pub record_bytes: u32,
    /// Non-memory instructions between accesses.
    pub gap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VacationConfig {
    fn default() -> Self {
        Self {
            relations: 4_096,
            reserve_pct: 80,
            queries_per_txn: 4,
            record_bytes: 96,
            gap: 6,
            seed: 0xacac_1a00,
        }
    }
}

/// The reservation system: three inventory relations in B+ trees (range
/// queries) and a customer relation in a hash table (point lookups).
#[derive(Debug)]
pub struct Vacation {
    cars: BTreeKv,
    flights: BTreeKv,
    rooms: BTreeKv,
    customers: HashKv,
    config: VacationConfig,
}

impl Vacation {
    /// Builds the system and loads `relations` rows per table (untraced
    /// warm-up).
    pub fn new(config: VacationConfig) -> Self {
        let mut v = Self {
            cars: BTreeKv::new(),
            flights: BTreeKv::new(),
            rooms: BTreeKv::new(),
            customers: HashKv::new(config.relations.max(16)),
            config,
        };
        let mut warmup = Arena::new(config.gap);
        for key in 0..config.relations {
            v.cars.apply(&mut warmup, KvOp::Insert(key), config.record_bytes);
            v.flights.apply(&mut warmup, KvOp::Insert(key), config.record_bytes);
            v.rooms.apply(&mut warmup, KvOp::Insert(key), config.record_bytes);
            v.customers.apply(&mut warmup, KvOp::Insert(key), config.record_bytes);
            warmup.drain_events().for_each(drop);
        }
        v
    }

    /// Total rows across all four relations.
    pub fn total_rows(&self) -> usize {
        self.cars.len() + self.flights.len() + self.rooms.len() + self.customers.len()
    }

    /// Deterministic transaction stream with STAMP's mix.
    pub fn transactions(&self, count: u64) -> impl Iterator<Item = Transaction> {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        (0..count).map(move |_| {
            let roll = rng.gen_range(0..100u32);
            if roll < cfg.reserve_pct {
                Transaction::MakeReservation { queries: cfg.queries_per_txn }
            } else if roll < cfg.reserve_pct + (100 - cfg.reserve_pct) / 2 {
                Transaction::DeleteCustomer
            } else {
                Transaction::UpdateTables { updates: cfg.queries_per_txn / 2 + 1 }
            }
        })
    }

    /// Applies one transaction, emitting its memory accesses to `arena`.
    pub fn apply(&mut self, arena: &mut Arena, txn: Transaction, rng: &mut StdRng) {
        let n = self.config.relations.max(1);
        let bytes = self.config.record_bytes;
        match txn {
            Transaction::MakeReservation { queries } => {
                // Query several items in each inventory relation…
                for _ in 0..queries {
                    self.cars.apply(arena, KvOp::Search(rng.gen_range(0..n)), bytes);
                    self.flights.apply(arena, KvOp::Search(rng.gen_range(0..n)), bytes);
                    self.rooms.apply(arena, KvOp::Search(rng.gen_range(0..n)), bytes);
                }
                // …then reserve one of each (updates) and record it on the
                // customer row: four tables updated atomically in STAMP.
                self.cars.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
                self.flights.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
                self.rooms.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
                self.customers.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
            }
            Transaction::DeleteCustomer => {
                let key = rng.gen_range(0..n);
                self.customers.apply(arena, KvOp::Search(key), bytes);
                self.customers.apply(arena, KvOp::Delete(key), bytes);
                // Release one reservation per relation.
                self.cars.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
                self.flights.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
                self.rooms.apply(arena, KvOp::Insert(rng.gen_range(0..n)), bytes);
            }
            Transaction::UpdateTables { updates } => {
                for _ in 0..updates {
                    let key = rng.gen_range(0..n * 2); // may grow the tables
                    if rng.gen_bool(0.5) {
                        self.cars.apply(arena, KvOp::Insert(key), bytes);
                    } else {
                        self.cars.apply(arena, KvOp::Delete(key), bytes);
                    }
                }
            }
        }
    }

    /// Runs `count` transactions and returns the trace plus the count.
    pub fn trace(&mut self, count: u64) -> (Vec<TraceEvent>, u64) {
        let mut arena = Arena::new(self.config.gap);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xdead_beef);
        let mut events = Vec::new();
        let txns: Vec<Transaction> = self.transactions(count).collect();
        for txn in txns {
            self.apply(&mut arena, txn, &mut rng);
            events.extend(arena.drain_events());
        }
        (events, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vacation {
        Vacation::new(VacationConfig { relations: 256, ..VacationConfig::default() })
    }

    #[test]
    fn warmup_loads_all_relations() {
        let v = small();
        assert_eq!(v.total_rows(), 4 * 256);
    }

    #[test]
    fn transaction_mix_matches_config() {
        let v = small();
        let txns: Vec<_> = v.transactions(10_000).collect();
        let reservations = txns
            .iter()
            .filter(|t| matches!(t, Transaction::MakeReservation { .. }))
            .count();
        assert!((7_500..8_500).contains(&reservations), "{reservations}");
    }

    #[test]
    fn trace_is_deterministic_and_nonempty() {
        let (a, n) = small().trace(200);
        let (b, _) = small().trace(200);
        assert_eq!(n, 200);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn reservations_touch_all_four_tables() {
        let mut v = small();
        let mut arena = Arena::new(0);
        let mut rng = StdRng::seed_from_u64(1);
        let before = v.total_rows();
        v.apply(&mut arena, Transaction::MakeReservation { queries: 2 }, &mut rng);
        // 6 searches + 4 updates: at least 10 operations' worth of events.
        assert!(arena.pending_events() >= 10, "{}", arena.pending_events());
        // Updates are upserts over existing keys: row count stable-ish.
        assert!(v.total_rows() >= before);
    }

    #[test]
    fn delete_customer_shrinks_customers() {
        let mut v = small();
        let mut arena = Arena::new(0);
        let mut rng = StdRng::seed_from_u64(2);
        let before = v.customers.len();
        // Apply deletions until one hits an existing customer.
        for _ in 0..50 {
            v.apply(&mut arena, Transaction::DeleteCustomer, &mut rng);
        }
        assert!(v.customers.len() < before);
    }

    #[test]
    fn mixed_run_preserves_structure_invariants() {
        let mut v = small();
        let (_, _) = v.trace(2_000);
        v.cars.check_invariants();
        v.flights.check_invariants();
        v.rooms.check_invariants();
        assert!(v.total_rows() > 0);
    }
}
