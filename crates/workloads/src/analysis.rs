//! Trace characterization.
//!
//! The dual-scheme design is driven by *write locality*: the §2.3 tradeoff
//! says sparse writes belong to block remapping and dense writes to page
//! writeback. This module measures exactly those properties of any trace —
//! footprint, read/write mix, sequentiality, and the distribution of
//! writes per page — so workloads can be characterized independently of
//! any memory system (and the scheme-switching thresholds sanity-checked).

use std::collections::HashMap;

use thynvm_types::{Histogram, PageIndex, TraceEvent, BLOCK_BYTES};

/// Aggregate characteristics of a memory trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total events analyzed.
    pub events: u64,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total instructions represented (gaps + memory instructions).
    pub instructions: u64,
    /// Distinct 64 B blocks touched.
    pub unique_blocks: usize,
    /// Distinct 4 KiB pages touched.
    pub unique_pages: usize,
    /// Events whose address immediately follows the previous event's
    /// (block-sequential accesses).
    pub sequential_events: u64,
    /// Distribution of write events per touched page.
    pub writes_per_page: Histogram,
}

impl TraceStats {
    /// Analyzes a trace.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        let mut stats = TraceStats::default();
        let mut blocks: HashMap<u64, ()> = HashMap::new();
        let mut page_writes: HashMap<PageIndex, u64> = HashMap::new();
        let mut last_block: Option<u64> = None;

        for e in events {
            stats.events += 1;
            stats.instructions += e.instructions();
            let block = e.req.addr.block().raw();
            if e.req.kind.is_write() {
                stats.writes += 1;
                stats.write_bytes += u64::from(e.req.bytes);
                *page_writes.entry(e.req.addr.page()).or_insert(0) += 1;
            } else {
                stats.reads += 1;
                stats.read_bytes += u64::from(e.req.bytes);
            }
            if last_block == Some(block.wrapping_sub(1)) || last_block == Some(block) {
                stats.sequential_events += 1;
            }
            last_block = Some(block);
            for touched in e.req.blocks_touched() {
                blocks.insert(touched.block().raw(), ());
            }
        }

        let mut pages: Vec<u64> = blocks.keys().map(|b| b / 64).collect();
        pages.sort_unstable();
        pages.dedup();
        stats.unique_pages = pages.len();
        stats.unique_blocks = blocks.len();
        for &count in page_writes.values() {
            stats.writes_per_page.record(count);
        }
        stats
    }

    /// Approximate memory footprint in bytes (unique blocks × 64).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks as u64 * BLOCK_BYTES
    }

    /// Write fraction in [0, 1].
    pub fn write_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.writes as f64 / self.events as f64
        }
    }

    /// Fraction of events continuing a sequential run, in [0, 1].
    pub fn sequential_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sequential_events as f64 / self.events as f64
        }
    }

    /// Fraction of pages whose write count reaches `threshold` — i.e. the
    /// share of the footprint the §4.2 policy would steer to page
    /// writeback.
    pub fn hot_page_fraction(&self, threshold: u64) -> f64 {
        let total = self.writes_per_page.count();
        if total == 0 {
            return 0.0;
        }
        let hot: u64 = self
            .writes_per_page
            .iter()
            .filter(|(lo, _)| *lo >= threshold)
            .map(|(_, n)| n)
            .sum();
        hot as f64 / total as f64
    }

    /// Renders a one-paragraph characterization report.
    pub fn report(&self, name: &str) -> String {
        format!(
            "{name}: {} events ({} instr), footprint {:.1} MB across {} pages, \
             {:.0}% writes, {:.0}% sequential, writes/page {}",
            self.events,
            self.instructions,
            self.footprint_bytes() as f64 / 1e6,
            self.unique_pages,
            self.write_fraction() * 100.0,
            self.sequential_fraction() * 100.0,
            self.writes_per_page,
        )
    }
}

/// A Fenwick (binary-indexed) tree over access timestamps, supporting the
/// O(log n) stack-distance queries of Olken's reuse-distance algorithm.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of entries in `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes the LRU stack-distance (reuse-distance) histogram of a trace at
/// 64 B block granularity, using Olken's algorithm (O(n log n)).
///
/// The reuse distance of an access is the number of *distinct* blocks
/// touched since the previous access to the same block; first-touch
/// accesses (cold misses) are excluded. An LRU cache of capacity `C`
/// blocks hits exactly the accesses with distance < `C`, so this histogram
/// predicts hit rates for every cache size at once.
///
/// # Example
///
/// ```
/// use thynvm_workloads::analysis::reuse_distance_histogram;
/// use thynvm_workloads::micro::{MicroConfig, MicroPattern};
///
/// let h = reuse_distance_histogram(
///     MicroConfig::new(MicroPattern::Streaming).events(10_000));
/// // A pure stream never reuses: only wrap-around reuses would appear.
/// assert_eq!(h.count(), 0);
/// ```
pub fn reuse_distance_histogram<I>(events: I) -> Histogram
where
    I: IntoIterator<Item = TraceEvent>,
{
    let events: Vec<TraceEvent> = events.into_iter().collect();
    let n = events.len();
    let mut hist = Histogram::new();
    let mut fenwick = Fenwick::new(n);
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (t, e) in events.iter().enumerate() {
        let block = e.req.addr.block().raw();
        if let Some(&prev) = last_seen.get(&block) {
            // Distinct blocks since prev = live markers in (prev, t).
            let distance = fenwick.prefix(t) - fenwick.prefix(prev);
            hist.record(distance);
            fenwick.add(prev, -1); // the block's marker moves to `t`
        }
        fenwick.add(t, 1);
        last_seen.insert(block, t);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{MicroConfig, MicroPattern};
    use crate::spec::{profile, SpecWorkload};

    #[test]
    fn empty_trace() {
        let s = TraceStats::from_events(std::iter::empty());
        assert_eq!(s.events, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.sequential_fraction(), 0.0);
        assert_eq!(s.hot_page_fraction(22), 0.0);
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn streaming_is_nearly_all_sequential() {
        let cfg = MicroConfig::new(MicroPattern::Streaming);
        let s = TraceStats::from_events(cfg.events(10_000));
        assert!(s.sequential_fraction() > 0.95, "{}", s.sequential_fraction());
        assert!((s.write_fraction() - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_is_barely_sequential_and_cold_paged() {
        let cfg = MicroConfig::new(MicroPattern::Random);
        let s = TraceStats::from_events(cfg.events(10_000));
        assert!(s.sequential_fraction() < 0.05, "{}", s.sequential_fraction());
        // Random over 64 MiB: pages see ~0-1 writes each; none are "hot".
        assert!(s.hot_page_fraction(22) < 0.01);
    }

    #[test]
    fn sliding_pages_are_hot() {
        let cfg = MicroConfig::new(MicroPattern::Sliding);
        let s = TraceStats::from_events(cfg.events(20_000));
        // The window revisits pages: a solid share crosses the promote
        // threshold.
        assert!(s.hot_page_fraction(22) > 0.3, "{}", s.hot_page_fraction(22));
    }

    #[test]
    fn footprint_counts_unique_blocks() {
        let cfg = MicroConfig::new(MicroPattern::Streaming);
        let s = TraceStats::from_events(cfg.events(1_000));
        assert_eq!(s.unique_blocks, 1_000);
        assert_eq!(s.footprint_bytes(), 64_000);
        assert_eq!(s.unique_pages, 1_000 * 64 / 4096 + 1);
    }

    #[test]
    fn spec_profiles_match_their_parameters() {
        let p = profile("lbm").unwrap();
        let s = TraceStats::from_events(SpecWorkload::new(p).events(20_000));
        assert!((s.write_fraction() - 0.45).abs() < 0.05);
        assert!(s.sequential_fraction() > 0.8);
    }

    #[test]
    fn reuse_distance_of_tight_loop_is_small() {
        use thynvm_types::{AccessKind, MemRequest, PhysAddr};
        // Cycle over 4 blocks repeatedly: every reuse distance is 3.
        let events: Vec<TraceEvent> = (0..40)
            .map(|i| {
                TraceEvent::new(
                    0,
                    MemRequest::new(PhysAddr::new((i % 4) * 64), AccessKind::Read, 64),
                )
            })
            .collect();
        let h = reuse_distance_histogram(events);
        assert_eq!(h.count(), 36); // 40 accesses - 4 cold
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn reuse_distance_detects_immediate_reuse() {
        use thynvm_types::{AccessKind, MemRequest, PhysAddr};
        // A A B B: reuses at distance 0.
        let mk = |a: u64| {
            TraceEvent::new(0, MemRequest::new(PhysAddr::new(a * 64), AccessKind::Read, 64))
        };
        let h = reuse_distance_histogram(vec![mk(1), mk(1), mk(2), mk(2)]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn random_trace_has_large_reuse_distances() {
        let cfg = MicroConfig::new(MicroPattern::Random);
        let h = reuse_distance_histogram(cfg.events(20_000));
        // Reuses over a 64 MiB array come back at huge stack distances —
        // far beyond any cache — which is why Random defeats the hierarchy.
        if h.count() > 0 {
            assert!(h.quantile(0.5) > 1_000, "median distance {}", h.quantile(0.5));
        }
    }

    #[test]
    fn sliding_reuses_within_the_window() {
        let cfg = MicroConfig::new(MicroPattern::Sliding);
        let h = reuse_distance_histogram(cfg.events(20_000));
        assert!(h.count() > 1_000, "the window must generate reuse");
        // Window of 1024 blocks bounds most distances.
        assert!(h.quantile(0.9) <= 2_048, "p90 {}", h.quantile(0.9));
    }

    #[test]
    fn report_is_informative() {
        let cfg = MicroConfig::new(MicroPattern::Streaming);
        let s = TraceStats::from_events(cfg.events(500));
        let r = s.report("streaming");
        assert!(r.contains("streaming"));
        assert!(r.contains("500 events"));
        assert!(r.contains("% writes"));
    }
}
