//! B+ tree key-value store on the instrumented arena.
//!
//! The third real data structure of the storage suite (alongside the
//! chained hash table and the red-black tree): a disk-style B+ tree with
//! wide nodes, the layout used by virtually every storage engine that
//! targets persistent memory. Compared to the binary tree it trades
//! pointer-chasing depth for *dense intra-node scans* — each visited node
//! is a sequential multi-cache-block read, which exercises ThyNVM's page
//! writeback scheme far more than the red-black tree does.
//!
//! Leaves are linked for range scans. Simulated-memory layout: every node
//! occupies one contiguous arena allocation; a visit reads the whole used
//! prefix of the node, a mutation rewrites it.

use thynvm_types::PhysAddr;

use super::{write_value, KvOp, KvStore};
use crate::arena::Arena;

/// Maximum keys per node (fan-out − 1). 32 keys × 16 B per slot ≈ 512 B
/// nodes — eight cache blocks, a typical PM-friendly node size.
const MAX_KEYS: usize = 32;
/// Simulated size of a full node: header + key/child slots.
const NODE_BYTES: u32 = 16 + (MAX_KEYS as u32) * 16;

#[derive(Debug, Clone)]
enum Node {
    Internal { keys: Vec<u64>, children: Vec<usize> },
    Leaf { keys: Vec<u64>, values: Vec<(PhysAddr, u32)>, next: Option<usize> },
}

/// The B+ tree store.
///
/// # Example
///
/// ```
/// use thynvm_workloads::{Arena, BTreeKv};
/// use thynvm_workloads::kv::{KvOp, KvStore};
///
/// let mut arena = Arena::new(0);
/// let mut kv = BTreeKv::new();
/// for k in 0..1000 {
///     kv.apply(&mut arena, KvOp::Insert(k), 64);
/// }
/// assert_eq!(kv.len(), 1000);
/// ```
#[derive(Debug)]
pub struct BTreeKv {
    nodes: Vec<Node>,
    addrs: Vec<PhysAddr>,
    free: Vec<usize>,
    root: usize,
    count: usize,
}

impl Default for BTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeKv {
    /// Creates an empty tree (a single empty leaf).
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Leaf { keys: Vec::new(), values: Vec::new(), next: None }],
            addrs: vec![PhysAddr::new(0)],
            free: Vec::new(),
            root: 0,
            count: 0,
        }
    }

    fn ensure_addr(&mut self, arena: &mut Arena, idx: usize) -> PhysAddr {
        if self.addrs[idx].raw() == 0 {
            self.addrs[idx] = arena.alloc(u64::from(NODE_BYTES));
        }
        self.addrs[idx]
    }

    /// Emits a read of the used prefix of node `idx`.
    fn read_node(&mut self, arena: &mut Arena, idx: usize) {
        let used = match &self.nodes[idx] {
            Node::Internal { keys, .. } => 16 + keys.len() as u32 * 16,
            Node::Leaf { keys, .. } => 16 + keys.len() as u32 * 16,
        };
        let addr = self.ensure_addr(arena, idx);
        arena.read(addr, used.max(16));
    }

    /// Emits a write of the used prefix of node `idx`.
    fn write_node(&mut self, arena: &mut Arena, idx: usize) {
        let used = match &self.nodes[idx] {
            Node::Internal { keys, .. } => 16 + keys.len() as u32 * 16,
            Node::Leaf { keys, .. } => 16 + keys.len() as u32 * 16,
        };
        let addr = self.ensure_addr(arena, idx);
        arena.write(addr, used.max(16));
    }

    fn alloc_node(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            self.addrs[idx] = PhysAddr::new(0);
            idx
        } else {
            self.nodes.push(node);
            self.addrs.push(PhysAddr::new(0));
            self.nodes.len() - 1
        }
    }

    /// Descends to the leaf that owns `key`, emitting node reads; returns
    /// the path (internal indices) and the leaf index.
    fn descend(&mut self, arena: &mut Arena, key: u64) -> (Vec<usize>, usize) {
        let mut path = Vec::new();
        let mut idx = self.root;
        loop {
            self.read_node(arena, idx);
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|&k| k <= key);
                    path.push(idx);
                    idx = children[slot];
                }
                Node::Leaf { .. } => return (path, idx),
            }
        }
    }

    /// Splits the child at `path`'s end if over-full, propagating upward.
    fn split_up(&mut self, arena: &mut Arena, mut path: Vec<usize>, mut child: usize) {
        loop {
            let (sep, right) = match &mut self.nodes[child] {
                Node::Leaf { keys, values, next } => {
                    if keys.len() <= MAX_KEYS {
                        return;
                    }
                    let mid = keys.len() / 2;
                    let rk = keys.split_off(mid);
                    let rv = values.split_off(mid);
                    let sep = rk[0];
                    let rnext = next.take();
                    let right =
                        Node::Leaf { keys: rk, values: rv, next: rnext };
                    (sep, right)
                }
                Node::Internal { keys, children } => {
                    if keys.len() <= MAX_KEYS {
                        return;
                    }
                    let mid = keys.len() / 2;
                    let mut rk = keys.split_off(mid);
                    let sep = rk.remove(0);
                    let rc = children.split_off(mid + 1);
                    (sep, Node::Internal { keys: rk, children: rc })
                }
            };
            let right_idx = self.alloc_node(right);
            if let Node::Leaf { next, .. } = &mut self.nodes[child] {
                *next = Some(right_idx);
            }
            self.write_node(arena, child);
            self.write_node(arena, right_idx);

            match path.pop() {
                Some(parent) => {
                    if let Node::Internal { keys, children } = &mut self.nodes[parent] {
                        let slot = keys.partition_point(|&k| k <= sep);
                        keys.insert(slot, sep);
                        children.insert(slot + 1, right_idx);
                    }
                    self.write_node(arena, parent);
                    child = parent;
                }
                None => {
                    // Grow a new root.
                    let new_root = self.alloc_node(Node::Internal {
                        keys: vec![sep],
                        children: vec![child, right_idx],
                    });
                    self.root = new_root;
                    self.write_node(arena, new_root);
                    return;
                }
            }
        }
    }

    /// Tree height (1 for a lone leaf); test support.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        while let Node::Internal { children, .. } = &self.nodes[idx] {
            idx = children[0];
            h += 1;
        }
        h
    }

    /// Whether `key` is present (no trace emission; test support).
    pub fn contains(&self, key: u64) -> bool {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    idx = children[keys.partition_point(|&k| k <= key)];
                }
                Node::Leaf { keys, .. } => return keys.binary_search(&key).is_ok(),
            }
        }
    }

    /// Validates B+ tree invariants: sorted keys, fan-out bounds, uniform
    /// leaf depth, and an intact leaf chain. Test support.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn check_invariants(&self) {
        fn walk(t: &BTreeKv, idx: usize, depth: usize, leaf_depth: &mut Option<usize>) {
            match &t.nodes[idx] {
                Node::Internal { keys, children } => {
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted internal keys");
                    assert_eq!(children.len(), keys.len() + 1, "fan-out mismatch");
                    assert!(keys.len() <= MAX_KEYS, "over-full internal node");
                    for &c in children {
                        walk(t, c, depth + 1, leaf_depth);
                    }
                }
                Node::Leaf { keys, values, .. } => {
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf keys");
                    assert!(keys.len() <= MAX_KEYS, "over-full leaf");
                    assert_eq!(keys.len(), values.len(), "key/value arity");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(self, self.root, 0, &mut leaf_depth);
        // The leaf chain visits every key in order.
        let mut chained = 0usize;
        let mut idx = self.root;
        while let Node::Internal { children, .. } = &self.nodes[idx] {
            idx = children[0];
        }
        let mut cursor = Some(idx);
        let mut last_key: Option<u64> = None;
        while let Some(i) = cursor {
            if let Node::Leaf { keys, next, .. } = &self.nodes[i] {
                for &k in keys {
                    if let Some(lk) = last_key {
                        assert!(k > lk, "leaf chain out of order");
                    }
                    last_key = Some(k);
                    chained += 1;
                }
                cursor = *next;
            } else {
                unreachable!("leaf chain reached an internal node");
            }
        }
        assert_eq!(chained, self.count, "leaf chain misses keys");
    }

    /// Range scan: reads up to `limit` consecutive keys starting at `from`
    /// (the operation B+ trees exist for), emitting leaf reads.
    pub fn scan(&mut self, arena: &mut Arena, from: u64, limit: usize) -> usize {
        let (_, leaf) = self.descend(arena, from);
        let mut visited = 0usize;
        let mut cursor = Some(leaf);
        while let Some(i) = cursor {
            if visited >= limit {
                break;
            }
            self.read_node(arena, i);
            let (keys, values, next) = match &self.nodes[i] {
                Node::Leaf { keys, values, next } => (keys.clone(), values.clone(), *next),
                _ => unreachable!("scan stays on the leaf level"),
            };
            for (k, (vaddr, vlen)) in keys.iter().zip(values) {
                if *k >= from && visited < limit {
                    arena.read(vaddr, vlen);
                    visited += 1;
                }
            }
            cursor = next;
        }
        visited
    }
}

impl KvStore for BTreeKv {
    fn apply(&mut self, arena: &mut Arena, op: KvOp, value_bytes: u32) {
        match op {
            KvOp::Search(key) => {
                let (_, leaf) = self.descend(arena, key);
                if let Node::Leaf { keys, values, .. } = &self.nodes[leaf] {
                    if let Ok(slot) = keys.binary_search(&key) {
                        let (vaddr, vlen) = values[slot];
                        arena.read(vaddr, vlen);
                    }
                }
            }
            KvOp::Insert(key) => {
                let (path, leaf) = self.descend(arena, key);
                let value = arena.alloc(u64::from(value_bytes.max(1)));
                write_value(arena, value, value_bytes.max(1));
                let mut inserted = false;
                if let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf] {
                    match keys.binary_search(&key) {
                        Ok(slot) => {
                            let (old_addr, old_len) = values[slot];
                            values[slot] = (value, value_bytes.max(1));
                            arena.free(old_addr, u64::from(old_len));
                        }
                        Err(slot) => {
                            keys.insert(slot, key);
                            values.insert(slot, (value, value_bytes.max(1)));
                            inserted = true;
                        }
                    }
                }
                self.write_node(arena, leaf);
                if inserted {
                    self.count += 1;
                    self.split_up(arena, path, leaf);
                }
            }
            KvOp::Delete(key) => {
                // Deletion without rebalancing (standard for PM B+ trees,
                // e.g. NV-Tree/FPTree leave leaves under-full): remove the
                // entry, keep the structure.
                let (_, leaf) = self.descend(arena, key);
                let mut removed = None;
                if let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf] {
                    if let Ok(slot) = keys.binary_search(&key) {
                        keys.remove(slot);
                        removed = Some(values.remove(slot));
                    }
                }
                if let Some((vaddr, vlen)) = removed {
                    arena.free(vaddr, u64::from(vlen));
                    self.write_node(arena, leaf);
                    self.count -= 1;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn tree_with(keys: &[u64]) -> (Arena, BTreeKv) {
        let mut arena = Arena::new(0);
        let mut t = BTreeKv::new();
        for &k in keys {
            t.apply(&mut arena, KvOp::Insert(k), 32);
        }
        (arena, t)
    }

    #[test]
    fn sequential_bulk_insert_stays_balanced() {
        let keys: Vec<u64> = (0..5_000).collect();
        let (_, t) = tree_with(&keys);
        assert_eq!(t.len(), 5_000);
        t.check_invariants();
        // Fan-out 33: 5000 keys fit in height 3.
        assert!(t.height() <= 4, "height {}", t.height());
    }

    #[test]
    fn random_inserts_preserve_invariants() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut keys: Vec<u64> = (0..3_000).collect();
        keys.shuffle(&mut rng);
        let (_, t) = tree_with(&keys);
        t.check_invariants();
        for k in (0..3_000).step_by(97) {
            assert!(t.contains(k));
        }
        assert!(!t.contains(99_999));
    }

    #[test]
    fn delete_removes_and_frees() {
        let (mut arena, mut t) = tree_with(&(0..200).collect::<Vec<_>>());
        for k in (0..200).step_by(2) {
            t.apply(&mut arena, KvOp::Delete(k), 32);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
        assert!(!t.contains(0));
        assert!(t.contains(1));
        // Deleting a missing key is a no-op.
        t.apply(&mut arena, KvOp::Delete(0), 32);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn update_replaces_value_without_growth() {
        let (mut arena, mut t) = tree_with(&[5]);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Insert(5), 512);
        assert_eq!(t.len(), 1);
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().any(|e| e.req.kind.is_write() && e.req.bytes == 512));
    }

    #[test]
    fn search_reads_value_on_hit_only() {
        // Value size 100 cannot collide with any node-prefix read width
        // (node reads are 16 + 16k bytes).
        let mut arena = Arena::new(0);
        let mut t = BTreeKv::new();
        t.apply(&mut arena, KvOp::Insert(7), 100);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Search(7), 100);
        let hits: Vec<_> = arena.drain_events().collect();
        assert!(hits.iter().any(|e| e.req.bytes == 100 && !e.req.kind.is_write()));
        t.apply(&mut arena, KvOp::Search(8), 100);
        let misses: Vec<_> = arena.drain_events().collect();
        assert!(misses.iter().all(|e| e.req.bytes != 100));
    }

    #[test]
    fn node_reads_are_wide() {
        // B+ tree node visits read hundreds of bytes — the dense pattern
        // that distinguishes it from the red-black tree's 48 B nodes.
        let keys: Vec<u64> = (0..2_000).collect();
        let (mut arena, mut t) = tree_with(&keys);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Search(1_500), 32);
        let widest = arena.drain_events().map(|e| e.req.bytes).max().unwrap();
        assert!(widest > 128, "widest node read only {widest} B");
    }

    #[test]
    fn scan_visits_consecutive_keys() {
        let keys: Vec<u64> = (0..500).collect();
        let (mut arena, mut t) = tree_with(&keys);
        arena.drain_events().for_each(drop);
        let n = t.scan(&mut arena, 100, 50);
        assert_eq!(n, 50);
        // Scanning past the end returns what exists.
        let n = t.scan(&mut arena, 480, 50);
        assert_eq!(n, 20);
    }

    #[test]
    fn interleaved_ops_match_reference() {
        let mut arena = Arena::new(0);
        let mut t = BTreeKv::new();
        let mut reference = std::collections::BTreeSet::new();
        for i in 0..5_000u64 {
            let k = i.wrapping_mul(0x9e37_79b9) % 700;
            if i % 3 != 2 {
                t.apply(&mut arena, KvOp::Insert(k), 16);
                reference.insert(k);
            } else {
                t.apply(&mut arena, KvOp::Delete(k), 16);
                reference.remove(&k);
            }
            arena.drain_events().for_each(drop);
        }
        t.check_invariants();
        assert_eq!(t.len(), reference.len());
        for &k in &reference {
            assert!(t.contains(k));
        }
    }

    #[test]
    fn empty_tree_operations() {
        let mut arena = Arena::new(0);
        let mut t = BTreeKv::new();
        t.apply(&mut arena, KvOp::Search(1), 16);
        t.apply(&mut arena, KvOp::Delete(1), 16);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
        assert_eq!(t.scan(&mut arena, 0, 10), 0);
    }
}
