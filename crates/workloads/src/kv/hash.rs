//! Chained hash table key-value store on the instrumented arena.
//!
//! Layout in simulated memory (mirroring a C implementation like the STAMP
//! hash table the paper adapts):
//!
//! * a bucket array of 8 B head pointers,
//! * chain nodes of 32 B (`key`, `value_ptr`, `value_len`, `next`),
//! * out-of-line values of the configured request size.
//!
//! Every probe reads the bucket head, then walks the chain reading one node
//! per hop — exactly the sparse, low-locality pattern that ThyNVM's block
//! remapping is designed for.

use std::collections::HashMap;

use thynvm_types::PhysAddr;

use super::{write_value, KvOp, KvStore};
use crate::arena::Arena;

/// Size of one chain node in simulated memory.
const NODE_BYTES: u64 = 32;
/// Size of a bucket head pointer.
const HEAD_BYTES: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct Node {
    addr: PhysAddr,
    value: PhysAddr,
    value_bytes: u32,
}

/// The chained hash table.
///
/// # Example
///
/// ```
/// use thynvm_workloads::{Arena, HashKv};
/// use thynvm_workloads::kv::{KvOp, KvStore};
///
/// let mut arena = Arena::new(0);
/// let mut kv = HashKv::new(64);
/// kv.apply(&mut arena, KvOp::Insert(7), 128);
/// assert_eq!(kv.len(), 1);
/// assert!(arena.pending_events() > 0); // the insert touched memory
/// ```
#[derive(Debug)]
pub struct HashKv {
    buckets_addr: PhysAddr,
    nbuckets: u64,
    /// Rust-side mirror: bucket index → ordered chain of keys.
    chains: Vec<Vec<u64>>,
    /// Key → node bookkeeping.
    nodes: HashMap<u64, Node>,
    allocated: bool,
}

impl HashKv {
    /// Creates a table with `nbuckets` chains.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets` is zero.
    pub fn new(nbuckets: u64) -> Self {
        assert!(nbuckets > 0, "hash table needs at least one bucket");
        Self {
            buckets_addr: PhysAddr::new(0),
            nbuckets,
            chains: vec![Vec::new(); nbuckets as usize],
            nodes: HashMap::new(),
            allocated: false,
        }
    }

    fn ensure_allocated(&mut self, arena: &mut Arena) {
        if !self.allocated {
            self.buckets_addr = arena.alloc(self.nbuckets * u64::from(HEAD_BYTES));
            self.allocated = true;
        }
    }

    fn bucket_of(&self, key: u64) -> u64 {
        // Fibonacci hashing: cheap and well-spread.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.nbuckets
    }

    fn head_addr(&self, bucket: u64) -> PhysAddr {
        self.buckets_addr.offset(bucket * u64::from(HEAD_BYTES))
    }

    /// Walks the chain of `key`'s bucket up to and including the node
    /// holding `key` (or the whole chain on a miss), emitting one node read
    /// per hop. Returns the position of `key` in the chain, if present.
    fn walk(&mut self, arena: &mut Arena, key: u64) -> Option<usize> {
        let bucket = self.bucket_of(key);
        arena.read(self.head_addr(bucket), HEAD_BYTES);
        let chain = &self.chains[bucket as usize];
        for (i, &k) in chain.iter().enumerate() {
            let node = self.nodes[&k];
            arena.read(node.addr, NODE_BYTES as u32);
            if k == key {
                return Some(i);
            }
        }
        None
    }
}

impl KvStore for HashKv {
    fn apply(&mut self, arena: &mut Arena, op: KvOp, value_bytes: u32) {
        self.ensure_allocated(arena);
        match op {
            KvOp::Search(key) => {
                if let Some(_pos) = self.walk(arena, key) {
                    // Found: read the value.
                    let node = self.nodes[&key];
                    arena.read(node.value, node.value_bytes);
                }
            }
            KvOp::Insert(key) => {
                let bucket = self.bucket_of(key);
                if self.walk(arena, key).is_some() {
                    // Update in place: free the old value, write a fresh
                    // one, point the node at it.
                    let old = self.nodes[&key];
                    arena.free(old.value, u64::from(old.value_bytes));
                    let value = arena.alloc(u64::from(value_bytes.max(1)));
                    write_value(arena, value, value_bytes.max(1));
                    let node = self.nodes.get_mut(&key).expect("walk found it");
                    node.value = value;
                    node.value_bytes = value_bytes.max(1);
                    arena.write(node.addr, 16); // value ptr + len fields
                } else {
                    // New node at chain head.
                    let value = arena.alloc(u64::from(value_bytes.max(1)));
                    write_value(arena, value, value_bytes.max(1));
                    let addr = arena.alloc(NODE_BYTES);
                    arena.write(addr, NODE_BYTES as u32);
                    arena.write(self.head_addr(bucket), HEAD_BYTES);
                    self.chains[bucket as usize].insert(0, key);
                    self.nodes.insert(
                        key,
                        Node { addr, value, value_bytes: value_bytes.max(1) },
                    );
                }
            }
            KvOp::Delete(key) => {
                let bucket = self.bucket_of(key);
                if let Some(pos) = self.walk(arena, key) {
                    // Unlink: rewrite the predecessor's next pointer (or the
                    // bucket head).
                    if pos == 0 {
                        arena.write(self.head_addr(bucket), HEAD_BYTES);
                    } else {
                        let prev_key = self.chains[bucket as usize][pos - 1];
                        arena.write(self.nodes[&prev_key].addr.offset(24), 8);
                    }
                    self.chains[bucket as usize].remove(pos);
                    let node = self.nodes.remove(&key).expect("walk found it");
                    arena.free(node.value, u64::from(node.value_bytes));
                    arena.free(node.addr, NODE_BYTES);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arena, HashKv) {
        (Arena::new(0), HashKv::new(16))
    }

    #[test]
    fn insert_search_delete_roundtrip() {
        let (mut arena, mut kv) = setup();
        kv.apply(&mut arena, KvOp::Insert(1), 64);
        kv.apply(&mut arena, KvOp::Insert(2), 64);
        assert_eq!(kv.len(), 2);
        kv.apply(&mut arena, KvOp::Delete(1), 64);
        assert_eq!(kv.len(), 1);
        kv.apply(&mut arena, KvOp::Delete(1), 64); // absent: no-op
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn update_does_not_grow_table() {
        let (mut arena, mut kv) = setup();
        kv.apply(&mut arena, KvOp::Insert(5), 64);
        kv.apply(&mut arena, KvOp::Insert(5), 64);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn search_hit_reads_value() {
        let (mut arena, mut kv) = setup();
        kv.apply(&mut arena, KvOp::Insert(5), 128);
        arena.drain_events().for_each(drop);
        kv.apply(&mut arena, KvOp::Search(5), 128);
        let events: Vec<_> = arena.drain_events().collect();
        // Head read + node read + value read.
        assert!(events.iter().any(|e| e.req.bytes == 128 && !e.req.kind.is_write()));
    }

    #[test]
    fn search_miss_reads_no_value() {
        let (mut arena, mut kv) = setup();
        kv.apply(&mut arena, KvOp::Search(99), 128);
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().all(|e| !e.req.kind.is_write()));
        assert!(events.iter().all(|e| e.req.bytes != 128));
    }

    #[test]
    fn insert_writes_value_of_requested_size() {
        let (mut arena, mut kv) = setup();
        kv.apply(&mut arena, KvOp::Insert(1), 4096);
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().any(|e| e.req.kind.is_write() && e.req.bytes == 4096));
    }

    #[test]
    fn chain_collisions_walk_multiple_nodes() {
        let mut arena = Arena::new(0);
        let mut kv = HashKv::new(1); // everything collides
        for k in 0..8 {
            kv.apply(&mut arena, KvOp::Insert(k), 16);
        }
        arena.drain_events().for_each(drop);
        // Key 0 was inserted first → now at chain tail: walk reads 8 nodes.
        kv.apply(&mut arena, KvOp::Search(0), 16);
        let node_reads = arena
            .drain_events()
            .filter(|e| !e.req.kind.is_write() && u64::from(e.req.bytes) == NODE_BYTES)
            .count();
        assert_eq!(node_reads, 8);
    }

    #[test]
    fn delete_relinks_predecessor() {
        let mut arena = Arena::new(0);
        let mut kv = HashKv::new(1);
        kv.apply(&mut arena, KvOp::Insert(1), 16);
        kv.apply(&mut arena, KvOp::Insert(2), 16); // chain: [2, 1]
        arena.drain_events().for_each(drop);
        kv.apply(&mut arena, KvOp::Delete(1), 16); // tail: rewrite node 2's next
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().any(|e| e.req.kind.is_write() && e.req.bytes == 8));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        HashKv::new(0);
    }

    #[test]
    fn distinct_keys_spread_over_buckets() {
        let kv = HashKv::new(64);
        let buckets: std::collections::HashSet<u64> =
            (0..1000u64).map(|k| kv.bucket_of(k)).collect();
        assert!(buckets.len() > 32, "hash too clustered: {}", buckets.len());
    }
}
