//! Storage-oriented in-memory key-value workloads (§5.1, Figures 9/10/12).
//!
//! Two stores, as in the paper: a chained [`hash::HashKv`] table and a
//! [`rbtree::RbTreeKv`] red-black tree. Both are *real* data structures —
//! lookups walk actual chains/subtrees, inserts rebalance — running on the
//! instrumented [`crate::Arena`], so the emitted traces carry the genuine
//! pointer-chasing and value-write patterns of in-memory storage engines.
//!
//! A workload is a deterministic stream of [`KvOp`]s (search / insert /
//! delete over a bounded key space) with a configurable request (value)
//! size; the paper sweeps request sizes from 16 B to 4 KiB.

pub mod btree;
pub mod hash;
pub mod rbtree;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thynvm_types::{PhysAddr, TraceEvent};

use crate::arena::Arena;

/// One key-value store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or update `key`.
    Insert(u64),
    /// Look up `key`.
    Search(u64),
    /// Remove `key`.
    Delete(u64),
}

/// A key-value store that can apply operations against an arena, emitting
/// its memory accesses as it goes.
pub trait KvStore {
    /// Applies one operation; `value_bytes` is the value size for inserts.
    fn apply(&mut self, arena: &mut Arena, op: KvOp, value_bytes: u32);

    /// Number of keys currently stored (for validation).
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of a key-value workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Value size per request, in bytes (the paper sweeps 16 B – 4 KiB).
    pub request_bytes: u32,
    /// Number of distinct keys the workload draws from.
    pub key_space: u64,
    /// Percentage of operations that are searches (the rest split 4:1
    /// between inserts and deletes).
    pub search_pct: u32,
    /// Non-memory instructions modeled between data-structure accesses.
    pub gap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl KvConfig {
    /// Defaults mirroring the paper's storage benchmarks: 50 % searches,
    /// 40 % inserts, 10 % deletes over 16 K keys.
    pub fn new(request_bytes: u32) -> Self {
        Self { request_bytes, key_space: 16 * 1024, search_pct: 50, gap: 8, seed: 0x5afa_1215 }
    }

    /// Deterministic operation stream.
    pub fn ops(&self, count: u64) -> impl Iterator<Item = KvOp> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let key_space = self.key_space.max(1);
        let search_pct = self.search_pct.min(100);
        (0..count).map(move |_| {
            let key = rng.gen_range(0..key_space);
            let roll = rng.gen_range(0..100u32);
            if roll < search_pct {
                KvOp::Search(key)
            } else if roll < search_pct + (100 - search_pct) * 4 / 5 {
                KvOp::Insert(key)
            } else {
                KvOp::Delete(key)
            }
        })
    }

    /// Runs `ops` operations against `store`, returning the full memory
    /// trace and the number of operations executed (one operation = one
    /// transaction for throughput purposes).
    pub fn trace<S: KvStore>(&self, store: &mut S, ops: u64) -> (Vec<TraceEvent>, u64) {
        let mut arena = Arena::new(self.gap);
        let mut events = Vec::new();
        for op in self.ops(ops) {
            store.apply(&mut arena, op, self.request_bytes);
            events.extend(arena.drain_events());
        }
        (events, ops)
    }

    /// Pre-populates `store` with `count` sequential keys (not part of the
    /// measured trace; the warm-up arena is discarded).
    pub fn populate<S: KvStore>(&self, store: &mut S, count: u64) {
        let mut arena = Arena::new(self.gap);
        for key in 0..count {
            store.apply(&mut arena, KvOp::Insert(key), self.request_bytes);
            arena.drain_events().for_each(drop);
        }
    }
}

/// Shared helper: write a value of `bytes` at `addr` as one logged store.
pub(crate) fn write_value(arena: &mut Arena, addr: PhysAddr, bytes: u32) {
    arena.write(addr, bytes);
}

#[cfg(test)]
mod tests {
    use super::hash::HashKv;
    use super::rbtree::RbTreeKv;
    use super::*;

    #[test]
    fn op_stream_is_deterministic() {
        let cfg = KvConfig::new(64);
        let a: Vec<_> = cfg.ops(50).collect();
        let b: Vec<_> = cfg.ops(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn op_mix_roughly_matches_percentages() {
        let cfg = KvConfig::new(64);
        let ops: Vec<_> = cfg.ops(10_000).collect();
        let searches = ops.iter().filter(|o| matches!(o, KvOp::Search(_))).count();
        let inserts = ops.iter().filter(|o| matches!(o, KvOp::Insert(_))).count();
        let deletes = ops.iter().filter(|o| matches!(o, KvOp::Delete(_))).count();
        assert!((4_500..5_500).contains(&searches), "searches={searches}");
        assert!((3_500..4_500).contains(&inserts), "inserts={inserts}");
        assert!((500..1_500).contains(&deletes), "deletes={deletes}");
    }

    #[test]
    fn keys_stay_in_key_space() {
        let mut cfg = KvConfig::new(64);
        cfg.key_space = 10;
        for op in cfg.ops(1_000) {
            let key = match op {
                KvOp::Insert(k) | KvOp::Search(k) | KvOp::Delete(k) => k,
            };
            assert!(key < 10);
        }
    }

    #[test]
    fn trace_produces_events_for_both_stores() {
        let cfg = KvConfig::new(256);
        let mut h = HashKv::new(1024);
        let (events_h, ops) = cfg.trace(&mut h, 500);
        assert_eq!(ops, 500);
        assert!(!events_h.is_empty());

        let mut t = RbTreeKv::new();
        let (events_t, _) = cfg.trace(&mut t, 500);
        assert!(!events_t.is_empty());
        // Tree traversal touches more nodes per op than hashing.
        assert!(events_t.len() > events_h.len() / 4);
    }

    #[test]
    fn larger_requests_move_more_bytes() {
        let small = KvConfig::new(16);
        let large = KvConfig::new(4096);
        let mut h1 = HashKv::new(1024);
        let mut h2 = HashKv::new(1024);
        let bytes = |events: &[thynvm_types::TraceEvent]| -> u64 {
            events.iter().map(|e| u64::from(e.req.bytes)).sum()
        };
        let (e1, _) = small.trace(&mut h1, 200);
        let (e2, _) = large.trace(&mut h2, 200);
        assert!(bytes(&e2) > bytes(&e1) * 10);
    }

    #[test]
    fn populate_fills_store_without_trace() {
        let cfg = KvConfig::new(64);
        let mut h = HashKv::new(256);
        cfg.populate(&mut h, 100);
        assert_eq!(h.len(), 100);
    }
}
