//! Red-black tree key-value store on the instrumented arena.
//!
//! A full CLRS-style red-black tree — insert with fixup, delete with
//! transplant and fixup, rotations — where every simulated-memory node
//! access is logged through the [`Arena`]. Tree traversal produces the
//! deep pointer-chasing read pattern, and rebalancing produces the
//! scattered small writes, that make tree-based stores the harder case for
//! checkpointing systems (Figure 9b).
//!
//! Nodes live in a slab; index 0 is the black sentinel `nil`, which never
//! touches simulated memory.

use thynvm_types::PhysAddr;

use super::{write_value, KvOp, KvStore};
use crate::arena::Arena;

/// Size of one tree node in simulated memory: key, color, left, right,
/// parent, value ptr, value len.
const NODE_BYTES: u32 = 48;
/// Index of the sentinel nil node.
const NIL: usize = 0;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    red: bool,
    left: usize,
    right: usize,
    parent: usize,
    addr: PhysAddr,
    value: PhysAddr,
    value_bytes: u32,
}

/// The red-black tree.
///
/// # Example
///
/// ```
/// use thynvm_workloads::{Arena, RbTreeKv};
/// use thynvm_workloads::kv::{KvOp, KvStore};
///
/// let mut arena = Arena::new(0);
/// let mut kv = RbTreeKv::new();
/// for k in 0..100 {
///     kv.apply(&mut arena, KvOp::Insert(k), 64);
/// }
/// assert_eq!(kv.len(), 100);
/// ```
#[derive(Debug)]
pub struct RbTreeKv {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    count: usize,
}

impl Default for RbTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl RbTreeKv {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let nil = Node {
            key: 0,
            red: false,
            left: NIL,
            right: NIL,
            parent: NIL,
            addr: PhysAddr::new(0),
            value: PhysAddr::new(0),
            value_bytes: 0,
        };
        Self { nodes: vec![nil], free: Vec::new(), root: NIL, count: 0 }
    }

    fn read_node(&self, arena: &mut Arena, x: usize) {
        if x != NIL {
            arena.read(self.nodes[x].addr, NODE_BYTES);
        }
    }

    fn write_node(&self, arena: &mut Arena, x: usize) {
        if x != NIL {
            arena.write(self.nodes[x].addr, NODE_BYTES);
        }
    }

    /// Writes only a node's color byte (recolors are cheaper than full node
    /// updates).
    fn write_color(&self, arena: &mut Arena, x: usize) {
        if x != NIL {
            arena.write(self.nodes[x].addr.offset(8), 8);
        }
    }

    fn alloc_node(&mut self, arena: &mut Arena, key: u64, value: PhysAddr, value_bytes: u32) -> usize {
        let addr = arena.alloc(u64::from(NODE_BYTES));
        let node = Node {
            key,
            red: true,
            left: NIL,
            right: NIL,
            parent: NIL,
            addr,
            value,
            value_bytes,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.write_node(arena, idx);
        idx
    }

    /// BST search emitting one node read per hop.
    fn find(&self, arena: &mut Arena, key: u64) -> usize {
        let mut x = self.root;
        while x != NIL {
            self.read_node(arena, x);
            let node = &self.nodes[x];
            if key == node.key {
                return x;
            }
            x = if key < node.key { node.left } else { node.right };
        }
        NIL
    }

    fn rotate_left(&mut self, arena: &mut Arena, x: usize) {
        let y = self.nodes[x].right;
        debug_assert_ne!(y, NIL, "rotate_left requires a right child");
        self.read_node(arena, y);
        let yl = self.nodes[y].left;
        self.nodes[x].right = yl;
        if yl != NIL {
            self.nodes[yl].parent = x;
            self.write_node(arena, yl);
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
            self.write_node(arena, xp);
        } else {
            self.nodes[xp].right = y;
            self.write_node(arena, xp);
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
        self.write_node(arena, x);
        self.write_node(arena, y);
    }

    fn rotate_right(&mut self, arena: &mut Arena, x: usize) {
        let y = self.nodes[x].left;
        debug_assert_ne!(y, NIL, "rotate_right requires a left child");
        self.read_node(arena, y);
        let yr = self.nodes[y].right;
        self.nodes[x].left = yr;
        if yr != NIL {
            self.nodes[yr].parent = x;
            self.write_node(arena, yr);
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].right == x {
            self.nodes[xp].right = y;
            self.write_node(arena, xp);
        } else {
            self.nodes[xp].left = y;
            self.write_node(arena, xp);
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
        self.write_node(arena, x);
        self.write_node(arena, y);
    }

    fn insert_fixup(&mut self, arena: &mut Arena, mut z: usize) {
        while self.nodes[self.nodes[z].parent].red {
            let zp = self.nodes[z].parent;
            let zpp = self.nodes[zp].parent;
            if zp == self.nodes[zpp].left {
                let y = self.nodes[zpp].right; // uncle
                if self.nodes[y].red {
                    self.nodes[zp].red = false;
                    self.nodes[y].red = false;
                    self.nodes[zpp].red = true;
                    self.write_color(arena, zp);
                    self.write_color(arena, y);
                    self.write_color(arena, zpp);
                    z = zpp;
                } else {
                    if z == self.nodes[zp].right {
                        z = zp;
                        self.rotate_left(arena, z);
                    }
                    let zp = self.nodes[z].parent;
                    let zpp = self.nodes[zp].parent;
                    self.nodes[zp].red = false;
                    self.nodes[zpp].red = true;
                    self.write_color(arena, zp);
                    self.write_color(arena, zpp);
                    self.rotate_right(arena, zpp);
                }
            } else {
                let y = self.nodes[zpp].left; // uncle (mirror)
                if self.nodes[y].red {
                    self.nodes[zp].red = false;
                    self.nodes[y].red = false;
                    self.nodes[zpp].red = true;
                    self.write_color(arena, zp);
                    self.write_color(arena, y);
                    self.write_color(arena, zpp);
                    z = zpp;
                } else {
                    if z == self.nodes[zp].left {
                        z = zp;
                        self.rotate_right(arena, z);
                    }
                    let zp = self.nodes[z].parent;
                    let zpp = self.nodes[zp].parent;
                    self.nodes[zp].red = false;
                    self.nodes[zpp].red = true;
                    self.write_color(arena, zp);
                    self.write_color(arena, zpp);
                    self.rotate_left(arena, zpp);
                }
            }
        }
        if self.nodes[self.root].red {
            self.nodes[self.root].red = false;
            self.write_color(arena, self.root);
        }
    }

    fn insert(&mut self, arena: &mut Arena, key: u64, value_bytes: u32) {
        // Descend, reading nodes, to find the insertion point or duplicate.
        let mut y = NIL;
        let mut x = self.root;
        while x != NIL {
            self.read_node(arena, x);
            y = x;
            if key == self.nodes[x].key {
                // Update in place: free the old value first.
                arena.free(self.nodes[x].value, u64::from(self.nodes[x].value_bytes));
                let value = arena.alloc(u64::from(value_bytes.max(1)));
                write_value(arena, value, value_bytes.max(1));
                self.nodes[x].value = value;
                self.nodes[x].value_bytes = value_bytes.max(1);
                arena.write(self.nodes[x].addr.offset(32), 16);
                return;
            }
            x = if key < self.nodes[x].key { self.nodes[x].left } else { self.nodes[x].right };
        }
        let value = arena.alloc(u64::from(value_bytes.max(1)));
        write_value(arena, value, value_bytes.max(1));
        let z = self.alloc_node(arena, key, value, value_bytes.max(1));
        self.nodes[z].parent = y;
        if y == NIL {
            self.root = z;
        } else if key < self.nodes[y].key {
            self.nodes[y].left = z;
            self.write_node(arena, y);
        } else {
            self.nodes[y].right = z;
            self.write_node(arena, y);
        }
        self.count += 1;
        self.insert_fixup(arena, z);
    }

    fn minimum(&self, arena: &mut Arena, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            x = self.nodes[x].left;
            self.read_node(arena, x);
        }
        x
    }

    fn transplant(&mut self, arena: &mut Arena, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if u == self.nodes[up].left {
            self.nodes[up].left = v;
            self.write_node(arena, up);
        } else {
            self.nodes[up].right = v;
            self.write_node(arena, up);
        }
        self.nodes[v].parent = up; // nil's parent is used by delete_fixup
        self.write_node(arena, v);
    }

    fn delete(&mut self, arena: &mut Arena, key: u64) {
        let z = self.find(arena, key);
        if z == NIL {
            return;
        }
        let mut y = z;
        let mut y_was_red = self.nodes[y].red;
        let x;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            self.transplant(arena, z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            self.transplant(arena, z, x);
        } else {
            y = self.minimum(arena, self.nodes[z].right);
            y_was_red = self.nodes[y].red;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                self.nodes[x].parent = y;
            } else {
                self.transplant(arena, y, x);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                self.nodes[zr].parent = y;
                self.write_node(arena, zr);
            }
            self.transplant(arena, z, y);
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            self.nodes[zl].parent = y;
            self.nodes[y].red = self.nodes[z].red;
            self.write_node(arena, zl);
            self.write_node(arena, y);
        }
        arena.free(self.nodes[z].value, u64::from(self.nodes[z].value_bytes));
        arena.free(self.nodes[z].addr, u64::from(NODE_BYTES));
        self.free.push(z);
        self.count -= 1;
        if !y_was_red {
            self.delete_fixup(arena, x);
        }
        // Reset the sentinel's parent (CLRS leaves it dangling).
        self.nodes[NIL].parent = NIL;
        self.nodes[NIL].red = false;
    }

    fn delete_fixup(&mut self, arena: &mut Arena, mut x: usize) {
        while x != self.root && !self.nodes[x].red {
            let xp = self.nodes[x].parent;
            if x == self.nodes[xp].left {
                let mut w = self.nodes[xp].right;
                self.read_node(arena, w);
                if self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[xp].red = true;
                    self.write_color(arena, w);
                    self.write_color(arena, xp);
                    self.rotate_left(arena, xp);
                    w = self.nodes[self.nodes[x].parent].right;
                }
                if !self.nodes[self.nodes[w].left].red && !self.nodes[self.nodes[w].right].red {
                    self.nodes[w].red = true;
                    self.write_color(arena, w);
                    x = self.nodes[x].parent;
                } else {
                    if !self.nodes[self.nodes[w].right].red {
                        let wl = self.nodes[w].left;
                        self.nodes[wl].red = false;
                        self.nodes[w].red = true;
                        self.write_color(arena, wl);
                        self.write_color(arena, w);
                        self.rotate_right(arena, w);
                        w = self.nodes[self.nodes[x].parent].right;
                    }
                    let xp = self.nodes[x].parent;
                    self.nodes[w].red = self.nodes[xp].red;
                    self.nodes[xp].red = false;
                    let wr = self.nodes[w].right;
                    self.nodes[wr].red = false;
                    self.write_color(arena, w);
                    self.write_color(arena, xp);
                    self.write_color(arena, wr);
                    self.rotate_left(arena, xp);
                    x = self.root;
                }
            } else {
                let mut w = self.nodes[xp].left;
                self.read_node(arena, w);
                if self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[xp].red = true;
                    self.write_color(arena, w);
                    self.write_color(arena, xp);
                    self.rotate_right(arena, xp);
                    w = self.nodes[self.nodes[x].parent].left;
                }
                if !self.nodes[self.nodes[w].right].red && !self.nodes[self.nodes[w].left].red {
                    self.nodes[w].red = true;
                    self.write_color(arena, w);
                    x = self.nodes[x].parent;
                } else {
                    if !self.nodes[self.nodes[w].left].red {
                        let wr = self.nodes[w].right;
                        self.nodes[wr].red = false;
                        self.nodes[w].red = true;
                        self.write_color(arena, wr);
                        self.write_color(arena, w);
                        self.rotate_left(arena, w);
                        w = self.nodes[self.nodes[x].parent].left;
                    }
                    let xp = self.nodes[x].parent;
                    self.nodes[w].red = self.nodes[xp].red;
                    self.nodes[xp].red = false;
                    let wl = self.nodes[w].left;
                    self.nodes[wl].red = false;
                    self.write_color(arena, w);
                    self.write_color(arena, xp);
                    self.write_color(arena, wl);
                    self.rotate_right(arena, xp);
                    x = self.root;
                }
            }
        }
        if self.nodes[x].red {
            self.nodes[x].red = false;
            self.write_color(arena, x);
        }
    }

    /// Validates the red-black invariants (test support): root is black, no
    /// red node has a red child, every root-to-leaf path has the same black
    /// height, and keys are in BST order. Returns the black height.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) -> usize {
        assert!(!self.nodes[self.root].red, "root must be black");
        fn walk(
            t: &RbTreeKv,
            x: usize,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> usize {
            if x == NIL {
                return 1;
            }
            let n = &t.nodes[x];
            if let Some(lo) = lo {
                assert!(n.key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(n.key < hi, "BST order violated");
            }
            if n.red {
                assert!(!t.nodes[n.left].red && !t.nodes[n.right].red, "red-red violation");
            }
            let lh = walk(t, n.left, lo, Some(n.key));
            let rh = walk(t, n.right, Some(n.key), hi);
            assert_eq!(lh, rh, "black height mismatch at key {}", n.key);
            lh + usize::from(!n.red)
        }
        walk(self, self.root, None, None)
    }

    /// Whether `key` is present (no trace emission; test support).
    pub fn contains(&self, key: u64) -> bool {
        let mut x = self.root;
        while x != NIL {
            let n = &self.nodes[x];
            if key == n.key {
                return true;
            }
            x = if key < n.key { n.left } else { n.right };
        }
        false
    }
}

impl KvStore for RbTreeKv {
    fn apply(&mut self, arena: &mut Arena, op: KvOp, value_bytes: u32) {
        match op {
            KvOp::Search(key) => {
                let x = self.find(arena, key);
                if x != NIL {
                    arena.read(self.nodes[x].value, self.nodes[x].value_bytes);
                }
            }
            KvOp::Insert(key) => self.insert(arena, key, value_bytes),
            KvOp::Delete(key) => self.delete(arena, key),
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn tree_with(keys: &[u64]) -> (Arena, RbTreeKv) {
        let mut arena = Arena::new(0);
        let mut t = RbTreeKv::new();
        for &k in keys {
            t.apply(&mut arena, KvOp::Insert(k), 16);
        }
        (arena, t)
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let keys: Vec<u64> = (0..1024).collect();
        let (_, t) = tree_with(&keys);
        assert_eq!(t.len(), 1024);
        let bh = t.check_invariants();
        // Black height of an n-node RB tree (counting the nil level) is at
        // most log2(n+1) + 1 = 11 for 1024 nodes.
        assert!(bh <= 11, "black height {bh} too large");
    }

    #[test]
    fn random_inserts_and_deletes_preserve_invariants() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut keys: Vec<u64> = (0..512).collect();
        keys.shuffle(&mut rng);
        let (mut arena, mut t) = tree_with(&keys);
        t.check_invariants();
        // Delete every third key in shuffled order.
        let mut to_delete: Vec<u64> = keys.iter().copied().step_by(3).collect();
        to_delete.shuffle(&mut rng);
        for k in &to_delete {
            t.apply(&mut arena, KvOp::Delete(*k), 16);
            t.check_invariants();
        }
        assert_eq!(t.len(), 512 - to_delete.len());
        for k in &to_delete {
            assert!(!t.contains(*k));
        }
    }

    #[test]
    fn delete_missing_key_is_noop() {
        let (mut arena, mut t) = tree_with(&[1, 2, 3]);
        t.apply(&mut arena, KvOp::Delete(99), 16);
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn duplicate_insert_updates_value() {
        let (mut arena, mut t) = tree_with(&[5]);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Insert(5), 256);
        assert_eq!(t.len(), 1);
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().any(|e| e.req.kind.is_write() && e.req.bytes == 256));
    }

    #[test]
    fn search_walks_path_length_reads() {
        let keys: Vec<u64> = (0..255).collect(); // ~8 levels
        let (mut arena, mut t) = tree_with(&keys);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Search(254), 16);
        let node_reads = arena
            .drain_events()
            .filter(|e| !e.req.kind.is_write() && e.req.bytes == NODE_BYTES)
            .count();
        assert!((4..=16).contains(&node_reads), "path length {node_reads}");
    }

    #[test]
    fn search_hit_reads_value() {
        let (mut arena, mut t) = tree_with(&[7]);
        arena.drain_events().for_each(drop);
        t.apply(&mut arena, KvOp::Search(7), 16);
        let events: Vec<_> = arena.drain_events().collect();
        assert!(events.iter().any(|e| e.req.bytes == 16 && !e.req.kind.is_write()));
    }

    #[test]
    fn node_slots_are_recycled_after_delete() {
        let (mut arena, mut t) = tree_with(&[1, 2, 3, 4]);
        let slab = t.nodes.len();
        t.apply(&mut arena, KvOp::Delete(2), 16);
        t.apply(&mut arena, KvOp::Insert(9), 16);
        assert_eq!(t.nodes.len(), slab, "freed slot reused");
        t.check_invariants();
    }

    #[test]
    fn empty_tree_operations() {
        let mut arena = Arena::new(0);
        let mut t = RbTreeKv::new();
        t.apply(&mut arena, KvOp::Search(1), 16);
        t.apply(&mut arena, KvOp::Delete(1), 16);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn interleaved_workload_consistency() {
        let mut arena = Arena::new(0);
        let mut t = RbTreeKv::new();
        let mut reference = std::collections::BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..2_000u64 {
            let k = i.wrapping_mul(0x9e37_79b9) % 300;
            if rand::Rng::gen_bool(&mut rng, 0.6) {
                t.apply(&mut arena, KvOp::Insert(k), 16);
                reference.insert(k);
            } else {
                t.apply(&mut arena, KvOp::Delete(k), 16);
                reference.remove(&k);
            }
            arena.drain_events().for_each(drop);
        }
        t.check_invariants();
        assert_eq!(t.len(), reference.len());
        for &k in &reference {
            assert!(t.contains(k), "missing key {k}");
        }
    }
}
