//! YCSB-style workload mixes for the key-value stores.
//!
//! The Yahoo! Cloud Serving Benchmark core workloads are the lingua franca
//! of KV-store evaluation; expressing them over this crate's instrumented
//! stores makes the ThyNVM results comparable to the wider persistent-
//! memory literature (which evaluates on YCSB far more often than on raw
//! request-size sweeps).
//!
//! | Mix | Operations | Skew |
//! |---|---|---|
//! | A | 50 % read / 50 % update | zipfian |
//! | B | 95 % read / 5 % update | zipfian |
//! | C | 100 % read | zipfian |
//! | D | 95 % read / 5 % insert | latest |
//! | F | 50 % read / 50 % read-modify-write | zipfian |
//!
//! (Workload E is a range-scan mix; it is exposed separately because only
//! the B+ tree supports scans.)
//!
//! Key popularity follows an approximate zipfian distribution via the
//! rejection-inversion sampler below, matching YCSB's default `zipfian`
//! request distribution with θ ≈ 0.99.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thynvm_types::TraceEvent;

use crate::arena::Arena;
use crate::kv::{KvOp, KvStore};

/// The YCSB core mixes implemented here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbMix {
    /// 50 % read, 50 % update — update-heavy.
    A,
    /// 95 % read, 5 % update — read-mostly.
    B,
    /// 100 % read.
    C,
    /// 95 % read, 5 % insert; reads skew to the latest inserts.
    D,
    /// 50 % read, 50 % read-modify-write.
    F,
}

impl YcsbMix {
    /// All implemented mixes.
    pub const ALL: [YcsbMix; 5] = [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::D, YcsbMix::F];

    /// Display name ("YCSB-A" …).
    pub fn as_str(self) -> &'static str {
        match self {
            YcsbMix::A => "YCSB-A",
            YcsbMix::B => "YCSB-B",
            YcsbMix::C => "YCSB-C",
            YcsbMix::D => "YCSB-D",
            YcsbMix::F => "YCSB-F",
        }
    }
}

/// Approximate zipfian sampler over `[0, n)` with the YCSB default skew.
///
/// Uses the standard `u^(1/(1-θ))` inversion approximation (θ = 0.99),
/// which concentrates ~65 % of requests on ~1 % of keys — close enough to
/// YCSB's scrambled-zipfian for memory-behaviour purposes.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
}

impl Zipf {
    /// Creates a sampler over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "zipf domain must be nonempty");
        const THETA: f64 = 0.99;
        Self { n, exponent: 1.0 / (1.0 - THETA) }
    }

    /// Draws a key; smaller keys are exponentially more popular. The key is
    /// scrambled by a fixed multiplier so popular keys spread over the
    /// address space (YCSB's "scrambled" variant).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        let rank = (self.n as f64 * u.powf(self.exponent)).min(self.n as f64 - 1.0) as u64;
        rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.n
    }
}

/// Configuration of a YCSB run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YcsbConfig {
    /// Which core mix to run.
    pub mix: YcsbMix,
    /// Records loaded before the measured phase.
    pub records: u64,
    /// Value size in bytes (YCSB default: 10 fields × 100 B; we default to
    /// a single 1 KiB value).
    pub value_bytes: u32,
    /// Non-memory instructions between accesses.
    pub gap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// Defaults: 16 K records of 1 KiB.
    pub fn new(mix: YcsbMix) -> Self {
        Self { mix, records: 16 * 1024, value_bytes: 1024, gap: 8, seed: 0x2010_5c5b }
    }

    /// Loads the store (untraced) and runs `ops` operations, returning the
    /// trace and the operation count.
    pub fn run<S: KvStore>(&self, store: &mut S, ops: u64) -> (Vec<TraceEvent>, u64) {
        let mut warmup = Arena::new(self.gap);
        for key in 0..self.records {
            store.apply(&mut warmup, KvOp::Insert(key), self.value_bytes);
            warmup.drain_events().for_each(drop);
        }

        let mut arena = Arena::new(self.gap);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.records);
        let mut next_key = self.records; // for workload D inserts
        let mut events = Vec::new();
        for _ in 0..ops {
            let roll = rng.gen_range(0..100u32);
            match self.mix {
                YcsbMix::A => {
                    let key = zipf.sample(&mut rng);
                    if roll < 50 {
                        store.apply(&mut arena, KvOp::Search(key), self.value_bytes);
                    } else {
                        store.apply(&mut arena, KvOp::Insert(key), self.value_bytes);
                    }
                }
                YcsbMix::B => {
                    let key = zipf.sample(&mut rng);
                    if roll < 95 {
                        store.apply(&mut arena, KvOp::Search(key), self.value_bytes);
                    } else {
                        store.apply(&mut arena, KvOp::Insert(key), self.value_bytes);
                    }
                }
                YcsbMix::C => {
                    store.apply(&mut arena, KvOp::Search(zipf.sample(&mut rng)), self.value_bytes);
                }
                YcsbMix::D => {
                    if roll < 95 {
                        // "Latest" distribution: recent inserts are hot.
                        let back = zipf.sample(&mut rng).min(next_key - 1);
                        store.apply(
                            &mut arena,
                            KvOp::Search(next_key - 1 - back),
                            self.value_bytes,
                        );
                    } else {
                        store.apply(&mut arena, KvOp::Insert(next_key), self.value_bytes);
                        next_key += 1;
                    }
                }
                YcsbMix::F => {
                    let key = zipf.sample(&mut rng);
                    store.apply(&mut arena, KvOp::Search(key), self.value_bytes);
                    if roll < 50 {
                        store.apply(&mut arena, KvOp::Insert(key), self.value_bytes);
                    }
                }
            }
            events.extend(arena.drain_events());
        }
        (events, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::hash::HashKv;

    #[test]
    fn zipf_is_skewed_toward_few_keys() {
        let zipf = Zipf::new(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(zipf.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 > 20_000 / 4,
            "top-10 keys should absorb >25% of requests: {top10}"
        );
        // Every sample stays in the domain.
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 10_000);
        }
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zipf_rejects_empty_domain() {
        Zipf::new(0);
    }

    #[test]
    fn workload_c_is_read_only() {
        let mut store = HashKv::new(4_096);
        let cfg = YcsbConfig { records: 1_000, ..YcsbConfig::new(YcsbMix::C) };
        let (events, ops) = cfg.run(&mut store, 500);
        assert_eq!(ops, 500);
        assert!(events.iter().all(|e| !e.req.kind.is_write()));
    }

    #[test]
    fn workload_a_is_half_updates() {
        let mut store = HashKv::new(4_096);
        let cfg = YcsbConfig { records: 1_000, ..YcsbConfig::new(YcsbMix::A) };
        let (events, _) = cfg.run(&mut store, 2_000);
        let writes = events.iter().filter(|e| e.req.kind.is_write()).count() as f64;
        let frac = writes / events.len() as f64;
        assert!((0.1..0.9).contains(&frac), "update traffic present: {frac}");
    }

    #[test]
    fn workload_d_grows_the_store() {
        let mut store = HashKv::new(4_096);
        let cfg = YcsbConfig { records: 1_000, ..YcsbConfig::new(YcsbMix::D) };
        let before = 1_000;
        cfg.run(&mut store, 2_000);
        assert!(store.len() > before, "inserts must grow the store: {}", store.len());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = YcsbConfig { records: 500, ..YcsbConfig::new(YcsbMix::F) };
        let mut s1 = HashKv::new(1_024);
        let mut s2 = HashKv::new(1_024);
        let (a, _) = cfg.run(&mut s1, 300);
        let (b, _) = cfg.run(&mut s2, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn all_mixes_run_on_the_hash_store() {
        for mix in YcsbMix::ALL {
            let mut store = HashKv::new(1_024);
            let cfg = YcsbConfig { records: 200, value_bytes: 64, ..YcsbConfig::new(mix) };
            let (events, _) = cfg.run(&mut store, 100);
            assert!(!events.is_empty(), "{} produced no events", mix.as_str());
        }
    }
}
