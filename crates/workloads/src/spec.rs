//! Synthetic stand-ins for the SPEC CPU2006 workloads of Figure 11.
//!
//! The paper runs the eight most memory-intensive SPEC CPU2006 applications
//! for one billion instructions each. SPEC sources and inputs are
//! proprietary, so this module substitutes parameterised generators (the
//! substitution is documented in DESIGN.md): each profile reproduces the
//! properties ThyNVM's behaviour actually depends on —
//!
//! * **footprint** — how much memory the working set spans (drives cache
//!   and DRAM-region pressure),
//! * **write fraction** — how much data must be made persistent,
//! * **sequentiality** — the probability an access continues a sequential
//!   run rather than jumping (drives the page/block scheme split),
//! * **gap** — non-memory instructions per memory access (drives memory
//!   intensity, i.e. MPKI).
//!
//! The parameter values are rough characterisations of each benchmark from
//! the public literature (e.g. lbm: huge, streaming, write-heavy;
//! omnetpp: pointer-chasing, low locality; bwaves/leslie3d/GemsFDTD:
//! large sequential scientific kernels; gcc/soplex: mixed, moderate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thynvm_types::{AccessKind, MemRequest, PhysAddr, TraceEvent, BLOCK_BYTES};

/// A synthetic SPEC-like workload profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name as shown in Figure 11.
    pub name: &'static str,
    /// Memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Fraction of accesses that are writes, in percent.
    pub write_pct: u32,
    /// Probability (percent) that an access continues the current
    /// sequential run.
    pub seq_pct: u32,
    /// Mean non-memory instructions between memory accesses.
    pub gap: u32,
}

/// The eight memory-intensive SPEC CPU2006 applications evaluated in
/// Figure 11, in the paper's order.
pub const SPEC_2006: [SpecProfile; 8] = [
    SpecProfile { name: "gcc", footprint_bytes: 24 << 20, write_pct: 30, seq_pct: 55, gap: 6 },
    SpecProfile { name: "bwaves", footprint_bytes: 48 << 20, write_pct: 20, seq_pct: 88, gap: 4 },
    SpecProfile { name: "milc", footprint_bytes: 44 << 20, write_pct: 35, seq_pct: 50, gap: 4 },
    SpecProfile { name: "leslie3d", footprint_bytes: 36 << 20, write_pct: 30, seq_pct: 80, gap: 5 },
    SpecProfile { name: "soplex", footprint_bytes: 28 << 20, write_pct: 25, seq_pct: 45, gap: 5 },
    SpecProfile { name: "GemsFDTD", footprint_bytes: 40 << 20, write_pct: 33, seq_pct: 75, gap: 4 },
    SpecProfile { name: "lbm", footprint_bytes: 56 << 20, write_pct: 45, seq_pct: 90, gap: 3 },
    SpecProfile { name: "omnetpp", footprint_bytes: 20 << 20, write_pct: 30, seq_pct: 25, gap: 7 },
];

/// Looks up a profile by name.
pub fn profile(name: &str) -> Option<SpecProfile> {
    SPEC_2006.iter().copied().find(|p| p.name == name)
}

/// A runnable instance of a [`SpecProfile`].
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    profile: SpecProfile,
    seed: u64,
}

impl SpecWorkload {
    /// Creates a workload from a profile with the default seed.
    pub fn new(profile: SpecProfile) -> Self {
        Self { profile, seed: 0x2006_0000_u64 ^ hash_name(profile.name) }
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The profile being generated.
    pub fn profile(&self) -> &SpecProfile {
        &self.profile
    }

    /// Lazily generates `accesses` trace events.
    ///
    /// The generator alternates sequential runs with random jumps. A
    /// fraction of jumps lands in a hot region (12.5 % of the footprint),
    /// giving the reuse behaviour caches rely on.
    pub fn events(&self, accesses: u64) -> impl Iterator<Item = TraceEvent> {
        let p = self.profile;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let blocks = (p.footprint_bytes / BLOCK_BYTES).max(1);
        // The hot set is sized to fit comfortably in the L2/L3 caches
        // (footprint/64 ≈ hundreds of KB), which is what keeps real SPEC
        // miss rates in the single-digit-MPKI range; only the cold tail of
        // jumps reaches main memory.
        let hot_blocks = (blocks / 64).max(1);
        let mut cursor = 0u64;

        (0..accesses).map(move |_| {
            if rng.gen_range(0..100u32) < p.seq_pct {
                cursor = (cursor + 1) % blocks;
            } else if rng.gen_bool(0.8) {
                cursor = rng.gen_range(0..hot_blocks);
            } else {
                cursor = rng.gen_range(0..blocks);
            }
            let kind = if rng.gen_range(0..100u32) < p.write_pct {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            // Gap jitter: ±50 % around the mean, at least 1.
            let gap = rng.gen_range((p.gap / 2).max(1)..=p.gap + p.gap / 2);
            TraceEvent::new(gap, MemRequest::new(PhysAddr::new(cursor * BLOCK_BYTES), kind, BLOCK_BYTES as u32))
        })
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_profiles_like_figure_11() {
        assert_eq!(SPEC_2006.len(), 8);
        let names: Vec<&str> = SPEC_2006.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["gcc", "bwaves", "milc", "leslie3d", "soplex", "GemsFDTD", "lbm", "omnetpp"]
        );
    }

    #[test]
    fn profile_lookup() {
        assert_eq!(profile("lbm").unwrap().name, "lbm");
        assert!(profile("nonexistent").is_none());
    }

    #[test]
    fn deterministic_per_profile() {
        let w = SpecWorkload::new(profile("gcc").unwrap());
        let a: Vec<_> = w.events(200).collect();
        let b: Vec<_> = w.events(200).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_profiles_produce_different_traces() {
        let a: Vec<_> = SpecWorkload::new(profile("gcc").unwrap()).events(100).collect();
        let b: Vec<_> = SpecWorkload::new(profile("lbm").unwrap()).events(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn write_fraction_matches_profile() {
        let p = profile("lbm").unwrap();
        let w = SpecWorkload::new(p);
        let writes =
            w.events(20_000).filter(|e| e.req.kind.is_write()).count() as f64 / 20_000.0;
        let target = f64::from(p.write_pct) / 100.0;
        assert!((writes - target).abs() < 0.03, "write frac {writes} vs {target}");
    }

    #[test]
    fn sequentiality_shows_in_address_deltas() {
        let seq = SpecWorkload::new(profile("lbm").unwrap()); // 90 % seq
        let rnd = SpecWorkload::new(profile("omnetpp").unwrap()); // 25 % seq
        let seq_runs = |w: &SpecWorkload| -> usize {
            let addrs: Vec<u64> = w.events(5_000).map(|e| e.req.addr.raw()).collect();
            addrs.windows(2).filter(|w| w[1] == w[0] + BLOCK_BYTES).count()
        };
        assert!(seq_runs(&seq) > 2 * seq_runs(&rnd));
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for p in SPEC_2006 {
            let w = SpecWorkload::new(p);
            assert!(
                w.events(2_000).all(|e| e.req.addr.raw() < p.footprint_bytes),
                "{} escaped footprint",
                p.name
            );
        }
    }

    #[test]
    fn gap_respects_profile_mean() {
        let p = profile("omnetpp").unwrap();
        let w = SpecWorkload::new(p);
        let mean: f64 =
            w.events(10_000).map(|e| f64::from(e.gap)).sum::<f64>() / 10_000.0;
        assert!((mean - f64::from(p.gap)).abs() < 1.5, "gap mean {mean}");
    }

    #[test]
    fn with_seed_changes_stream() {
        let w1 = SpecWorkload::new(profile("gcc").unwrap());
        let w2 = SpecWorkload::new(profile("gcc").unwrap()).with_seed(1234);
        let a: Vec<_> = w1.events(100).collect();
        let b: Vec<_> = w2.events(100).collect();
        assert_ne!(a, b);
    }
}
