//! Instrumented memory arena.
//!
//! The paper's storage benchmarks run real data-structure code against
//! persistent memory. To reproduce that without proprietary binaries, the
//! key-value stores in [`crate::kv`] are implemented as ordinary Rust data
//! structures whose every *simulated-memory* touch goes through this arena,
//! which allocates objects at physical addresses and records a
//! [`TraceEvent`] per load/store. Replaying the recorded trace against any
//! [`thynvm_types::MemorySystem`] then reproduces the data structure's true
//! access pattern: pointer chasing, node updates, value writes.

use std::collections::VecDeque;

use thynvm_types::{AccessKind, MemRequest, PhysAddr, TraceEvent};

/// A bump allocator over the simulated physical address space that logs
/// every access.
///
/// # Example
///
/// ```
/// use thynvm_workloads::Arena;
///
/// let mut arena = Arena::new(2);
/// let obj = arena.alloc(24);
/// arena.write(obj, 24);     // initialize the object
/// arena.read(obj, 8);       // follow its first field
/// assert_eq!(arena.drain_events().count(), 2);
/// ```
#[derive(Debug)]
pub struct Arena {
    next: u64,
    gap: u32,
    events: VecDeque<TraceEvent>,
    allocated_bytes: u64,
    /// Size-class free lists (rounded size → freed addresses), so workloads
    /// reuse memory like a real `malloc`/`free` heap instead of streaming
    /// through the address space forever.
    free_lists: std::collections::HashMap<u64, Vec<u64>>,
}

impl Arena {
    /// Creates an arena whose recorded events carry `gap` non-memory
    /// instructions each (compute work between accesses).
    pub fn new(gap: u32) -> Self {
        // Skip address 0 so "null" arena references are representable.
        Self {
            next: 64,
            gap,
            events: VecDeque::new(),
            allocated_bytes: 0,
            free_lists: std::collections::HashMap::new(),
        }
    }

    fn size_class(size: u64) -> u64 {
        size.div_ceil(8) * 8
    }

    /// Allocates `size` bytes, 8-byte aligned, and returns the address.
    /// Freed space of the same size class is reused first.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> PhysAddr {
        assert!(size > 0, "cannot allocate zero bytes");
        let class = Self::size_class(size);
        self.allocated_bytes += size;
        if let Some(list) = self.free_lists.get_mut(&class) {
            if let Some(addr) = list.pop() {
                return PhysAddr::new(addr);
            }
        }
        let addr = self.next;
        self.next += class;
        PhysAddr::new(addr)
    }

    /// Returns `size` bytes at `addr` to the allocator for reuse (the
    /// allocation must have been made with the same `size`).
    pub fn free(&mut self, addr: PhysAddr, size: u64) {
        let class = Self::size_class(size.max(1));
        self.free_lists.entry(class).or_default().push(addr.raw());
    }

    /// Total bytes handed out so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Records a read of `len` bytes at `addr`.
    pub fn read(&mut self, addr: PhysAddr, len: u32) {
        self.events.push_back(TraceEvent::new(
            self.gap,
            MemRequest::new(addr, AccessKind::Read, len),
        ));
    }

    /// Records a write of `len` bytes at `addr`.
    pub fn write(&mut self, addr: PhysAddr, len: u32) {
        self.events.push_back(TraceEvent::new(
            self.gap,
            MemRequest::new(addr, AccessKind::Write, len),
        ));
    }

    /// Number of recorded, not-yet-drained events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drains the recorded events in order.
    pub fn drain_events(&mut self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.events.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_monotonic() {
        let mut a = Arena::new(0);
        let x = a.alloc(3);
        let y = a.alloc(24);
        assert_eq!(x.raw() % 8, 0);
        assert_eq!(y.raw() % 8, 0);
        assert!(y.raw() >= x.raw() + 8, "3 bytes round up to one 8 B slot");
        assert_eq!(a.allocated_bytes(), 27);
    }

    #[test]
    fn null_address_never_allocated() {
        let mut a = Arena::new(0);
        assert_ne!(a.alloc(8).raw(), 0);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_alloc_panics() {
        Arena::new(0).alloc(0);
    }

    #[test]
    fn events_record_in_order_with_gap() {
        let mut a = Arena::new(7);
        let p = a.alloc(16);
        a.write(p, 16);
        a.read(p, 8);
        let events: Vec<_> = a.drain_events().collect();
        assert_eq!(events.len(), 2);
        assert!(events[0].req.kind.is_write());
        assert_eq!(events[0].req.bytes, 16);
        assert!(!events[1].req.kind.is_write());
        assert_eq!(events[1].gap, 7);
        assert_eq!(events[0].req.addr, p);
    }

    #[test]
    fn drain_empties_buffer() {
        let mut a = Arena::new(0);
        let p = a.alloc(8);
        a.write(p, 8);
        assert_eq!(a.pending_events(), 1);
        assert_eq!(a.drain_events().count(), 1);
        assert_eq!(a.pending_events(), 0);
    }
}
