//! The micro-benchmarks of §5.1/Figure 7.
//!
//! Three access patterns over a large array, each with a 1:1 read-to-write
//! ratio:
//!
//! * **Random** — every access targets a uniformly random 64 B block; the
//!   worst case for page-granularity schemes (shadow paging flushes a whole
//!   page per dirty block).
//! * **Streaming** — strictly sequential; the best case for page
//!   granularity, the worst for per-block metadata.
//! * **Sliding** — random accesses inside a window that advances through
//!   the array, modelling a moving working set; this is the pattern where
//!   adaptivity pays, as the paper's Figure 8(c) discussion explains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thynvm_types::{AccessKind, MemRequest, PhysAddr, TraceEvent, BLOCK_BYTES};

/// Which micro-benchmark pattern to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroPattern {
    /// Uniform random block accesses over the whole array.
    Random,
    /// Sequential walk over the array (wrapping).
    Streaming,
    /// Random accesses within a window that slides through the array.
    Sliding,
}

impl MicroPattern {
    /// Display name matching the paper's figures.
    pub const fn as_str(self) -> &'static str {
        match self {
            MicroPattern::Random => "Random",
            MicroPattern::Streaming => "Streaming",
            MicroPattern::Sliding => "Sliding",
        }
    }

    /// All three patterns, in the paper's presentation order.
    pub const fn all() -> [MicroPattern; 3] {
        [MicroPattern::Random, MicroPattern::Streaming, MicroPattern::Sliding]
    }
}

/// Configuration of a micro-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroConfig {
    /// The access pattern.
    pub pattern: MicroPattern,
    /// Size of the array being accessed, in bytes.
    pub array_bytes: u64,
    /// Sliding-window size in bytes (Sliding only).
    pub window_bytes: u64,
    /// Accesses per window position before the window slides (Sliding
    /// only).
    pub accesses_per_window: u32,
    /// Non-memory instructions between accesses.
    pub gap: u32,
    /// RNG seed (generators are deterministic).
    pub seed: u64,
}

impl MicroConfig {
    /// Paper-like defaults: a 64 MiB array (4× the DRAM working region),
    /// 64 KiB sliding window, small instruction gap.
    pub fn new(pattern: MicroPattern) -> Self {
        Self {
            pattern,
            array_bytes: 64 * 1024 * 1024,
            window_bytes: 64 * 1024,
            accesses_per_window: 2048,
            gap: 4,
            seed: 0x7417_2015,
        }
    }

    /// Returns a lazily generated trace of `accesses` events (alternating
    /// write/read for the 1:1 ratio).
    pub fn events(&self, accesses: u64) -> impl Iterator<Item = TraceEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let blocks = (self.array_bytes / BLOCK_BYTES).max(1);
        let window_blocks = (self.window_bytes / BLOCK_BYTES).max(1);
        let per_window = u64::from(self.accesses_per_window).max(1);
        let pattern = self.pattern;
        let gap = self.gap;
        let mut seq_block = 0u64;
        let mut window_base = 0u64;

        (0..accesses).map(move |i| {
            let block = match pattern {
                MicroPattern::Random => rng.gen_range(0..blocks),
                MicroPattern::Streaming => {
                    let b = seq_block;
                    seq_block = (seq_block + 1) % blocks;
                    b
                }
                MicroPattern::Sliding => {
                    if i > 0 && i % per_window == 0 {
                        window_base = (window_base + window_blocks) % blocks;
                    }
                    window_base + rng.gen_range(0..window_blocks.min(blocks - window_base).max(1))
                }
            };
            let kind = if i % 2 == 0 { AccessKind::Write } else { AccessKind::Read };
            let addr = PhysAddr::new(block * BLOCK_BYTES);
            TraceEvent::new(gap, MemRequest::new(addr, kind, BLOCK_BYTES as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_given_seed() {
        let cfg = MicroConfig::new(MicroPattern::Random);
        let a: Vec<_> = cfg.events(100).collect();
        let b: Vec<_> = cfg.events(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = MicroConfig::new(MicroPattern::Random);
        let a: Vec<_> = cfg.events(100).collect();
        cfg.seed = 42;
        let b: Vec<_> = cfg.events(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn one_to_one_read_write_ratio() {
        let cfg = MicroConfig::new(MicroPattern::Streaming);
        let events: Vec<_> = cfg.events(1000).collect();
        let writes = events.iter().filter(|e| e.req.kind.is_write()).count();
        assert_eq!(writes, 500);
    }

    #[test]
    fn streaming_is_sequential() {
        let cfg = MicroConfig::new(MicroPattern::Streaming);
        let events: Vec<_> = cfg.events(10).collect();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.req.addr.raw(), i as u64 * BLOCK_BYTES);
        }
    }

    #[test]
    fn streaming_wraps_at_array_end() {
        let mut cfg = MicroConfig::new(MicroPattern::Streaming);
        cfg.array_bytes = 4 * BLOCK_BYTES;
        let events: Vec<_> = cfg.events(6).collect();
        assert_eq!(events[4].req.addr.raw(), 0);
        assert_eq!(events[5].req.addr.raw(), BLOCK_BYTES);
    }

    #[test]
    fn random_spreads_over_array() {
        let cfg = MicroConfig::new(MicroPattern::Random);
        let pages: HashSet<u64> =
            cfg.events(2_000).map(|e| e.req.addr.page().raw()).collect();
        // 2000 random 64 B accesses over 64 MiB land on ~2000 distinct pages.
        assert!(pages.len() > 1_500, "random pattern too clustered: {}", pages.len());
    }

    #[test]
    fn sliding_stays_in_window_then_moves() {
        let mut cfg = MicroConfig::new(MicroPattern::Sliding);
        cfg.accesses_per_window = 100;
        let events: Vec<_> = cfg.events(200).collect();
        let first: Vec<_> = events[..100].iter().map(|e| e.req.addr.raw()).collect();
        let second: Vec<_> = events[100..].iter().map(|e| e.req.addr.raw()).collect();
        assert!(first.iter().all(|&a| a < cfg.window_bytes));
        assert!(second.iter().all(|&a| (cfg.window_bytes..2 * cfg.window_bytes).contains(&a)));
    }

    #[test]
    fn all_addresses_within_array() {
        for pattern in MicroPattern::all() {
            let mut cfg = MicroConfig::new(pattern);
            cfg.array_bytes = 1024 * 1024;
            assert!(
                cfg.events(5_000).all(|e| e.req.addr.raw() < cfg.array_bytes),
                "{pattern:?} escaped the array"
            );
        }
    }

    #[test]
    fn accesses_are_block_sized_and_aligned() {
        let cfg = MicroConfig::new(MicroPattern::Random);
        for e in cfg.events(100) {
            assert_eq!(e.req.bytes as u64, BLOCK_BYTES);
            assert_eq!(e.req.addr.block_offset(), 0);
            assert_eq!(e.gap, cfg.gap);
        }
    }

    #[test]
    fn names() {
        assert_eq!(MicroPattern::Random.as_str(), "Random");
        assert_eq!(MicroPattern::Streaming.as_str(), "Streaming");
        assert_eq!(MicroPattern::Sliding.as_str(), "Sliding");
    }
}
