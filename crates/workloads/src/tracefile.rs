//! Binary trace serialization.
//!
//! Workload traces are expensive to generate (KV stores replay millions of
//! structure operations) and sharing them is how simulation results are
//! made reproducible across machines. This module defines a compact binary
//! format — a 16-byte header plus one 20-byte record per event — with
//! writers/readers over any `std::io` stream. Reader functions accept `R:
//! Read` by value, so `&mut file` works for multi-section files.
//!
//! Format (all little-endian):
//!
//! ```text
//! header:  magic "THYT" | version u32 | event count u64
//! record:  addr u64 | gap u32 | bytes u32 | kind u8 | pad [u8; 3]
//! ```

use std::io::{self, Read, Write};

use thynvm_types::{AccessKind, MemRequest, PhysAddr, TraceEvent};

/// File magic: "THYT" (ThyNVM Trace).
pub const MAGIC: [u8; 4] = *b"THYT";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per serialized event record.
pub const RECORD_BYTES: usize = 20;

/// Writes `events` to `w` in the trace format. Returns the number of
/// events written.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
///
/// # Example
///
/// ```
/// use thynvm_workloads::tracefile::{read_trace, write_trace};
/// use thynvm_workloads::micro::{MicroConfig, MicroPattern};
///
/// # fn main() -> std::io::Result<()> {
/// let events: Vec<_> = MicroConfig::new(MicroPattern::Random).events(100).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, events.iter().copied())?;
/// assert_eq!(read_trace(&buf[..])?, events);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W, I>(mut w: W, events: I) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = TraceEvent>,
{
    // Buffer records so the count can be written up front.
    let mut body = Vec::new();
    let mut count = 0u64;
    for e in events {
        body.extend_from_slice(&e.req.addr.raw().to_le_bytes());
        body.extend_from_slice(&e.gap.to_le_bytes());
        body.extend_from_slice(&e.req.bytes.to_le_bytes());
        body.push(if e.req.kind.is_write() { 1 } else { 0 });
        body.extend_from_slice(&[0u8; 3]);
        count += 1;
    }
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&count.to_le_bytes())?;
    w.write_all(&body)?;
    Ok(count)
}

/// Reads a complete trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, unsupported version, malformed
/// record, or truncated stream; propagates underlying I/O errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceEvent>> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a ThyNVM trace (bad magic)"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut events = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut record = [0u8; RECORD_BYTES];
    for i in 0..count {
        r.read_exact(&mut record).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("truncated at record {i}: {e}"))
        })?;
        let addr = u64::from_le_bytes(record[0..8].try_into().expect("8 bytes"));
        let gap = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        let bytes = u32::from_le_bytes(record[12..16].try_into().expect("4 bytes"));
        let kind = match record[16] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("record {i}: invalid access kind {other}"),
                ))
            }
        };
        if bytes == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record {i}: zero-byte access"),
            ));
        }
        events.push(TraceEvent::new(gap, MemRequest::new(PhysAddr::new(addr), kind, bytes)));
    }
    Ok(events)
}

/// Saves a trace to `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save<P, I>(path: P, events: I) -> io::Result<u64>
where
    P: AsRef<std::path::Path>,
    I: IntoIterator<Item = TraceEvent>,
{
    let file = std::fs::File::create(path)?;
    write_trace(io::BufWriter::new(file), events)
}

/// Loads a trace from `path`.
///
/// # Errors
///
/// Propagates file-open and format errors.
pub fn load<P: AsRef<std::path::Path>>(path: P) -> io::Result<Vec<TraceEvent>> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{MicroConfig, MicroPattern};

    #[test]
    fn roundtrip_preserves_every_field() {
        let events: Vec<_> =
            MicroConfig::new(MicroPattern::Sliding).events(1_000).collect();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, events.iter().copied()).unwrap();
        assert_eq!(n, 1_000);
        assert_eq!(buf.len(), 16 + 1_000 * RECORD_BYTES);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn truncated_body_rejected() {
        let events: Vec<_> = MicroConfig::new(MicroPattern::Random).events(10).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn corrupt_kind_rejected() {
        let events: Vec<_> = MicroConfig::new(MicroPattern::Random).events(1).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        buf[16 + 16] = 7; // kind byte of record 0
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("invalid access kind"));
    }

    #[test]
    fn zero_byte_record_rejected() {
        let events: Vec<_> = MicroConfig::new(MicroPattern::Random).events(1).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        for b in &mut buf[16 + 12..16 + 16] {
            *b = 0; // bytes field of record 0
        }
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn file_save_and_load() {
        let dir = std::env::temp_dir().join("thynvm-tracefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.thyt");
        let events: Vec<_> = MicroConfig::new(MicroPattern::Streaming).events(500).collect();
        save(&path, events.iter().copied()).unwrap();
        assert_eq!(load(&path).unwrap(), events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_accepts_mut_reference() {
        // C-RW-VALUE: `&mut R` works where `R: Read` is taken by value.
        let events: Vec<_> = MicroConfig::new(MicroPattern::Random).events(3).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        let mut cursor = std::io::Cursor::new(&buf);
        assert_eq!(read_trace(&mut cursor).unwrap(), events);
    }
}
