//! Workload and trace generators for the ThyNVM evaluation (§5.1).
//!
//! Three families, mirroring the paper's benchmark suite:
//!
//! * [`micro`] — the three access-pattern micro-benchmarks of Figure 7:
//!   **Random** (uniform random over a large array), **Streaming**
//!   (sequential) and **Sliding** (random within a window that slides
//!   through the array), each with a 1:1 read-to-write ratio.
//! * [`kv`] — storage-oriented in-memory workloads: a chained **hash
//!   table** and a **red-black tree** key-value store, implemented for real
//!   on an instrumented [`arena`] that emits a physical memory trace for
//!   every touched word (Figures 9, 10, 12).
//! * [`spec`] — synthetic stand-ins for the eight memory-intensive SPEC
//!   CPU2006 applications of Figure 11. SPEC binaries are proprietary; the
//!   generators reproduce each application's memory *footprint, write
//!   fraction, spatial locality and access intensity* (the properties
//!   ThyNVM's behaviour depends on), as documented in DESIGN.md.
//!
//! All generators are deterministic given a seed and produce
//! [`thynvm_types::TraceEvent`] streams lazily, so arbitrarily long runs
//! use constant memory.
//!
//! # Example
//!
//! ```
//! use thynvm_workloads::micro::{MicroPattern, MicroConfig};
//!
//! let trace = MicroConfig::new(MicroPattern::Random).events(1_000);
//! assert_eq!(trace.count(), 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod arena;
pub mod kv;
pub mod micro;
pub mod spec;
pub mod tracefile;
pub mod vacation;
pub mod ycsb;

pub use analysis::TraceStats;
pub use arena::Arena;
pub use kv::{btree::BTreeKv, hash::HashKv, rbtree::RbTreeKv, KvConfig, KvOp};
pub use micro::{MicroConfig, MicroPattern};
pub use spec::{SpecProfile, SpecWorkload};
pub use vacation::{Vacation, VacationConfig};
pub use ycsb::{YcsbConfig, YcsbMix, Zipf};
