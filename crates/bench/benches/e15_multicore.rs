//! Multi-core scalability experiment; see thynvm_bench::experiments::e15_multicore.
//!
//! Run with `cargo bench -p thynvm-bench --bench e15_multicore`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e15_multicore(Scale::from_env());
    table.print();
}
