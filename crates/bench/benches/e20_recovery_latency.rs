//! Recovery latency vs nested-crash depth; see
//! thynvm_bench::experiments::e20_recovery_latency.
//!
//! Run with `cargo bench -p thynvm-bench --bench e20_recovery_latency`.

use thynvm_bench::experiments;

fn main() {
    experiments::e20_recovery_latency().print();
}
