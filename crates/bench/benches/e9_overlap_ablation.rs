//! Regenerates the paper artifact; see thynvm_bench::experiments::e9_overlap_ablation.
//!
//! Run with `cargo bench -p thynvm-bench --bench e9_overlap_ablation`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::e9_overlap_ablation(scale);
    table.print();
    println!("{}", experiments::summarize_vs_ideal(&cells));
}
