//! Persist-buffer fault domain; see thynvm_bench::experiments::e24_persist_buffer.
//!
//! Run with `cargo bench -p thynvm-bench --bench e24_persist_buffer`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e24_persist_buffer(Scale::from_env()).print();
}
