//! Sensitivity ablation; see thynvm_bench::experiments::e12_dram_size.
//!
//! Run with `cargo bench -p thynvm-bench --bench e12_dram_size`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e12_dram_size(Scale::from_env());
    table.print();
}
