//! Endurance ladder; see thynvm_bench::experiments::e23_endurance.
//!
//! Run with `cargo bench -p thynvm-bench --bench e23_endurance`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e23_endurance(Scale::from_env()).print();
}
