//! Sensitivity ablation; see thynvm_bench::experiments::e10_threshold_sensitivity.
//!
//! Run with `cargo bench -p thynvm-bench --bench e10_threshold_sensitivity`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e10_threshold_sensitivity(Scale::from_env());
    table.print();
}
