//! Sensitivity ablation; see thynvm_bench::experiments::e11_epoch_length.
//!
//! Run with `cargo bench -p thynvm-bench --bench e11_epoch_length`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e11_epoch_length(Scale::from_env());
    table.print();
}
