//! Regenerates the paper artifact; see thynvm_bench::experiments::fig7_micro_exec_time.
//!
//! Run with `cargo bench -p thynvm-bench --bench fig7_micro_exec_time`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::fig7_micro_exec_time(scale);
    table.print();
    println!("{}", experiments::summarize_vs_ideal(&cells));
}
