//! YCSB core-mix evaluation; see thynvm_bench::experiments::e17_ycsb.
//!
//! Run with `cargo bench -p thynvm-bench --bench e17_ycsb`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e17_ycsb(Scale::from_env());
    table.print();
}
