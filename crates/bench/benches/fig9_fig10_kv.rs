//! Regenerates Figures 9 and 10: key-value store transaction throughput
//! and write bandwidth across request sizes, for both the hash table and
//! the red-black tree.
//!
//! Run with `cargo bench -p thynvm-bench --bench fig9_fig10_kv`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, KvKind, Scale};

fn main() {
    let scale = Scale::from_env();
    for kv in [KvKind::HashTable, KvKind::RbTree] {
        let (throughput, bandwidth, cells) = experiments::fig9_fig10_kv(scale, kv);
        throughput.print();
        bandwidth.print();
        println!("{}", experiments::summarize_vs_ideal(&cells));
        println!();
    }
}
