//! Secure persistent memory mode; see thynvm_bench::experiments::e22_secure_mode.
//!
//! Run with `cargo bench -p thynvm-bench --bench e22_secure_mode`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e22_secure_mode(Scale::from_env()).print();
}
