//! Working-region placement exploration; see
//! thynvm_bench::experiments::e16_working_region.
//!
//! Run with `cargo bench -p thynvm-bench --bench e16_working_region`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let (table, _cells) = experiments::e16_working_region(Scale::from_env());
    table.print();
}
