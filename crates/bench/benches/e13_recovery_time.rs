//! Recovery-latency experiment; see thynvm_bench::experiments::e13_recovery_time.
//!
//! Run with `cargo bench -p thynvm-bench --bench e13_recovery_time`.

use thynvm_bench::experiments;

fn main() {
    experiments::e13_recovery_time().print();
}
