//! DRAM resilience ladder; see thynvm_bench::experiments::e21_dram_resilience.
//!
//! Run with `cargo bench -p thynvm-bench --bench e21_dram_resilience`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e21_dram_resilience(Scale::from_env()).print();
}
