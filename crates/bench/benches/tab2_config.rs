//! Prints the Table 2 system configuration used by every experiment.
//!
//! Run with `cargo bench -p thynvm-bench --bench tab2_config`.

use thynvm_bench::experiments;

fn main() {
    experiments::tab2_config().print();
}
