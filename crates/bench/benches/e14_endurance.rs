//! NVM endurance comparison; see thynvm_bench::experiments::e14_endurance.
//!
//! Run with `cargo bench -p thynvm-bench --bench e14_endurance`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e14_endurance(Scale::from_env()).print();
}
