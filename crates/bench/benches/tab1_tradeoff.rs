//! Regenerates the paper artifact; see thynvm_bench::experiments::tab1_tradeoff.
//!
//! Run with `cargo bench -p thynvm-bench --bench tab1_tradeoff`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::tab1_tradeoff(scale);
    table.print();
    println!("{}", experiments::summarize_vs_ideal(&cells));
}
