//! Regenerates the paper artifact; see thynvm_bench::experiments::fig8_write_traffic.
//!
//! Run with `cargo bench -p thynvm-bench --bench fig8_write_traffic`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::fig8_write_traffic(scale);
    table.print();
    let _ = cells; // per-cell data available for downstream tooling

}
