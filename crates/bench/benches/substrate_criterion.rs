//! Criterion micro-benchmarks of the simulator substrate's hot paths.
//!
//! These do not reproduce a paper artifact; they track the performance of
//! the simulator itself (device timing, cache lookups, the ThyNVM store
//! path) so regressions in simulation throughput are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thynvm_cache::CacheHierarchy;
use thynvm_core::ThyNvm;
use thynvm_mem::{Device, DeviceKind};
use thynvm_types::{
    AccessKind, Cycle, HwAddr, MemRequest, MemorySystem, PhysAddr, SystemConfig,
};

fn bench_device(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    c.bench_function("nvm_device_access", |b| {
        let mut dev = Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry);
        let mut now = Cycle::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let addr = HwAddr::new((i % (1 << 26)) & !63);
            now = dev.access(black_box(addr), AccessKind::Write, 64, now);
            black_box(now)
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    c.bench_function("cache_hierarchy_access", |b| {
        let mut h = CacheHierarchy::new(cfg.cache);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let addr = PhysAddr::new((i % (1 << 24)) & !63);
            black_box(h.access(black_box(addr), AccessKind::Write))
        });
    });
}

fn bench_store_path(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    c.bench_function("thynvm_store_path", |b| {
        let mut sys = ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let addr = PhysAddr::new((i % (1 << 26)) & !63);
            now = sys.access(&MemRequest::write(addr, 64), now);
            if sys.checkpoint_due(now) {
                now = sys.begin_checkpoint(now, &[]);
            }
            black_box(now)
        });
    });
}

criterion_group!(benches, bench_device, bench_cache, bench_store_path);
criterion_main!(benches);
