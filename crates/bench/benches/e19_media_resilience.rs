//! NVM media resilience; see thynvm_bench::experiments::e19_media_resilience.
//!
//! Run with `cargo bench -p thynvm-bench --bench e19_media_resilience`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    experiments::e19_media_resilience(Scale::from_env()).print();
}
