//! Regenerates the paper artifact; see thynvm_bench::experiments::fig12_btt_sensitivity.
//!
//! Run with `cargo bench -p thynvm-bench --bench fig12_btt_sensitivity`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::fig12_btt_sensitivity(scale);
    table.print();
    println!("{}", experiments::summarize_vs_ideal(&cells));
}
