//! Regenerates the paper artifact; see thynvm_bench::experiments::fig11_spec_ipc.
//!
//! Run with `cargo bench -p thynvm-bench --bench fig11_spec_ipc`.
//! Set `THYNVM_SCALE=test` for a quick smoke run.

use thynvm_bench::experiments::{self, Scale};

fn main() {
    let scale = Scale::from_env();
    let (table, cells) = experiments::fig11_spec_ipc(scale);
    table.print();
    println!("{}", experiments::summarize_vs_ideal(&cells));
}
