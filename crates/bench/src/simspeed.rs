//! Simulator-throughput harness: how fast does the *simulator itself* run?
//!
//! Every other experiment in this crate measures the simulated machine;
//! this one measures the host cost of simulating it. Five PRs of fault
//! machinery (per-64 B CRC charging, ECC/poison streams, splitmix64
//! decisions per read) each made the hot path heavier without anyone
//! noticing, because nothing recorded a trajectory. This module fixes
//! that: it runs a fixed set of workload × fault configurations through
//! the raw controller path, records simulated cycles per host second and
//! host nanoseconds per operation, and serializes the results to
//! `BENCH_simspeed.json` so CI can fail any PR that regresses throughput
//! by more than [`GATE_REGRESSION_PCT`].
//!
//! Two invariants make the artifact trustworthy:
//!
//! * **Simulated cycle totals are part of the schema.** A performance
//!   optimization must not change the simulated timeline; the gate
//!   compares `sim_cycles` *exactly* against the committed baseline, so a
//!   "speedup" that perturbs timing is caught even when every oracle sweep
//!   is green. Intentional timing changes update the baseline explicitly.
//! * **Host-time noise is bounded, not trusted.** Each case takes the
//!   best of N repeats (default 3) and the gate tolerates
//!   [`GATE_REGRESSION_PCT`] percent before failing, so shared-runner
//!   jitter does not flake the build.

use std::time::Instant;

use thynvm_types::{
    Cycle, DramFaultConfig, MediaFaultConfig, SystemConfig, TraceEvent,
};
use thynvm_workloads::{HashKv, MicroConfig, MicroPattern, YcsbConfig, YcsbMix};

use crate::report::Json;
use crate::runner::{run_raw, SystemKind};

/// Schema identifier stamped into every artifact; bump on layout changes.
pub const SCHEMA: &str = "thynvm-simspeed/v1";

/// Throughput regression (percent, vs the committed baseline) at which the
/// CI gate fails the build.
pub const GATE_REGRESSION_PCT: f64 = 15.0;

/// Default number of repeats per case; the best (fastest) repeat wins.
pub const DEFAULT_REPEATS: u32 = 3;

/// One workload × fault configuration the harness measures.
#[derive(Debug)]
pub struct SpeedCase {
    /// Stable case identifier; the gate matches cases by this name.
    pub name: &'static str,
    /// System configuration (fault models on or off).
    pub cfg: SystemConfig,
    /// Pre-generated trace, so event generation is excluded from timing.
    pub events: Vec<TraceEvent>,
}

/// One measured case: identity plus raw counters; ratios are derived.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case identifier (matches [`SpeedCase::name`]).
    pub name: String,
    /// Trace events executed.
    pub ops: u64,
    /// Total simulated cycles — must be bit-identical run to run and
    /// across performance-only changes.
    pub sim_cycles: u64,
    /// Host wall-clock nanoseconds for the best repeat.
    pub host_ns: u64,
}

impl CaseResult {
    /// Simulated cycles advanced per host second — the headline throughput
    /// number the gate protects.
    pub fn sim_cycles_per_host_sec(&self) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            self.sim_cycles as f64 * 1e9 / self.host_ns as f64
        }
    }

    /// Host nanoseconds per trace event.
    pub fn host_ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.host_ns as f64 / self.ops as f64
        }
    }
}

/// Fault-on media configuration: everything armed at rates high enough to
/// exercise the fault paths constantly but low enough that the run still
/// completes (retries are bounded).
fn faulty_media() -> MediaFaultConfig {
    MediaFaultConfig {
        bit_flip_rate: 1e-3,
        stuck_at_threshold: 10_000,
        ..MediaFaultConfig::hardened()
    }
}

/// Fault-on DRAM ECC configuration, correspondingly armed.
fn faulty_dram() -> DramFaultConfig {
    DramFaultConfig {
        flip_rate: 1e-3,
        poison_rate: 1e-4,
        ..DramFaultConfig::hardened()
    }
}

/// Builds the fixed case set: {micro-random, YCSB-A} × {fault-off,
/// fault-on}, plus micro-random with the secure persistent memory mode
/// armed, with the health ladder armed, and with the volatile persist
/// buffer armed, all through the ThyNVM controller on the paper
/// configuration. The health-on twin pins the graceful-degradation
/// claim: with no faults injected the monitor only observes, so its
/// sim-cycle total must stay bit-identical to `micro-random/fault-off`.
/// The wpq-on case prices the §4.4 fence bookkeeping on a clean run.
/// `micro_accesses` and `ycsb_ops` scale the traces; the
/// committed baseline uses [`cases`]'s defaults, and the gate refuses to
/// compare entries with different `ops`.
pub fn cases_scaled(micro_accesses: u64, ycsb_ops: u64) -> Vec<SpeedCase> {
    let micro_events: Vec<TraceEvent> =
        MicroConfig::new(MicroPattern::Random).events(micro_accesses).collect();
    let mut kv = HashKv::new(16 * 1024);
    let ycsb = YcsbConfig { records: 4 * 1024, ..YcsbConfig::new(YcsbMix::A) };
    let (ycsb_events, _) = ycsb.run(&mut kv, ycsb_ops);

    let base = SystemConfig::paper();
    let mut faulty = base;
    faulty.media = faulty_media();
    faulty.dram_fault = faulty_dram();
    faulty.validate().expect("fault-on simspeed configuration is valid");
    let mut secure = base;
    secure.security = thynvm_types::SecurityConfig::hardened();
    secure.validate().expect("secure simspeed configuration is valid");
    let mut health = base;
    health.health = thynvm_types::HealthConfig::hardened();
    health.validate().expect("health-on simspeed configuration is valid");
    let mut wpq = base;
    wpq.wpq = thynvm_types::PersistBufferConfig::armed();
    wpq.validate().expect("wpq-on simspeed configuration is valid");

    vec![
        SpeedCase { name: "micro-random/fault-off", cfg: base, events: micro_events.clone() },
        SpeedCase { name: "micro-random/fault-on", cfg: faulty, events: micro_events.clone() },
        SpeedCase { name: "micro-random/secure-on", cfg: secure, events: micro_events.clone() },
        SpeedCase { name: "micro-random/health-on", cfg: health, events: micro_events.clone() },
        SpeedCase { name: "micro-random/wpq-on", cfg: wpq, events: micro_events },
        SpeedCase { name: "ycsb-a/fault-off", cfg: base, events: ycsb_events.clone() },
        SpeedCase { name: "ycsb-a/fault-on", cfg: faulty, events: ycsb_events },
    ]
}

/// The default-scale case set the committed baseline is measured at.
pub fn cases() -> Vec<SpeedCase> {
    cases_scaled(60_000, 8_000)
}

/// Measures one case: `repeats` timed runs, best host time wins.
///
/// # Panics
///
/// Panics if the simulated cycle total differs between repeats — that
/// would mean the simulator is nondeterministic, which invalidates every
/// oracle sweep in the repo, not just this harness.
pub fn measure(case: &SpeedCase, repeats: u32) -> CaseResult {
    let mut best_ns = u64::MAX;
    let mut sim_cycles: Option<Cycle> = None;
    for _ in 0..repeats.max(1) {
        let events = case.events.iter().copied();
        let start = Instant::now();
        let res = run_raw(SystemKind::ThyNvm, case.cfg, events);
        let elapsed = start.elapsed().as_nanos() as u64;
        best_ns = best_ns.min(elapsed);
        match sim_cycles {
            None => sim_cycles = Some(res.cycles),
            Some(prev) => assert_eq!(
                prev, res.cycles,
                "{}: simulated cycle total changed between repeats",
                case.name
            ),
        }
    }
    CaseResult {
        name: case.name.to_owned(),
        ops: case.events.len() as u64,
        sim_cycles: sim_cycles.expect("at least one repeat ran").raw(),
        host_ns: best_ns,
    }
}

/// Runs every case at the committed-baseline scale.
pub fn run_all(repeats: u32) -> Vec<CaseResult> {
    cases().iter().map(|c| measure(c, repeats)).collect()
}

/// Serializes one trajectory entry.
fn entry_to_json(label: &str, results: &[CaseResult]) -> Json {
    Json::Obj(vec![
        ("label".to_owned(), Json::Str(label.to_owned())),
        (
            "cases".to_owned(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(r.name.clone())),
                            ("ops".to_owned(), Json::Int(r.ops)),
                            ("sim_cycles".to_owned(), Json::Int(r.sim_cycles)),
                            ("host_ns".to_owned(), Json::Int(r.host_ns)),
                            (
                                "sim_cycles_per_host_sec".to_owned(),
                                Json::Num(r.sim_cycles_per_host_sec()),
                            ),
                            ("host_ns_per_op".to_owned(), Json::Num(r.host_ns_per_op())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Appends a trajectory entry to an existing artifact (or starts a new
/// one), returning the updated document.
///
/// # Errors
///
/// Returns a message when `existing` is present but malformed.
pub fn append_entry(
    existing: Option<&Json>,
    label: &str,
    results: &[CaseResult],
) -> Result<Json, String> {
    let mut trajectory: Vec<Json> = match existing {
        None => Vec::new(),
        Some(doc) => {
            check_schema(doc)?;
            doc.get("trajectory")
                .and_then(Json::as_arr)
                .ok_or("artifact has no trajectory array")?
                .to_vec()
        }
    };
    trajectory.push(entry_to_json(label, results));
    Ok(Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("gate_regression_pct".to_owned(), Json::Num(GATE_REGRESSION_PCT)),
        ("trajectory".to_owned(), Json::Arr(trajectory)),
    ]))
}

fn check_schema(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => Ok(()),
        Some(other) => Err(format!("unsupported schema '{other}' (want '{SCHEMA}')")),
        None => Err("artifact has no schema field".to_owned()),
    }
}

/// Decodes the *latest* trajectory entry of an artifact into results.
///
/// # Errors
///
/// Returns a message when the document is malformed or empty.
pub fn latest_entry(doc: &Json) -> Result<(String, Vec<CaseResult>), String> {
    check_schema(doc)?;
    let trajectory =
        doc.get("trajectory").and_then(Json::as_arr).ok_or("no trajectory array")?;
    let entry = trajectory.last().ok_or("trajectory is empty")?;
    let label = entry
        .get("label")
        .and_then(Json::as_str)
        .ok_or("entry has no label")?
        .to_owned();
    let cases = entry.get("cases").and_then(Json::as_arr).ok_or("entry has no cases")?;
    let mut results = Vec::new();
    for case in cases {
        let field = |key: &str| {
            case.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("case missing integer field '{key}'"))
        };
        results.push(CaseResult {
            name: case
                .get("name")
                .and_then(Json::as_str)
                .ok_or("case has no name")?
                .to_owned(),
            ops: field("ops")?,
            sim_cycles: field("sim_cycles")?,
            host_ns: field("host_ns")?,
        });
    }
    Ok((label, results))
}

/// Outcome of gating one measured case against the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateLine {
    /// Case name.
    pub name: String,
    /// Human-readable verdict for the CI log.
    pub message: String,
    /// Whether this case passed.
    pub ok: bool,
}

/// Compares fresh measurements against the latest committed entry.
///
/// Fails a case when (a) it is missing from either side, (b) `ops`
/// differs (the scale changed — the baseline must be re-recorded), (c)
/// `sim_cycles` differs (the simulated timeline moved: either a bug or an
/// intentional timing change that needs a baseline update), or (d)
/// throughput dropped more than `gate_pct` percent.
///
/// # Errors
///
/// Returns the malformed-artifact message when `baseline` cannot be
/// decoded.
pub fn check_against(
    baseline: &Json,
    current: &[CaseResult],
    gate_pct: f64,
) -> Result<Vec<GateLine>, String> {
    let (label, base) = latest_entry(baseline)?;
    let mut lines = Vec::new();
    for b in &base {
        if !current.iter().any(|c| c.name == b.name) {
            lines.push(GateLine {
                name: b.name.clone(),
                message: format!("baseline case '{}' not measured", b.name),
                ok: false,
            });
        }
    }
    for c in current {
        let Some(b) = base.iter().find(|b| b.name == c.name) else {
            lines.push(GateLine {
                name: c.name.clone(),
                message: format!(
                    "case '{}' absent from baseline '{label}' — record it with --update",
                    c.name
                ),
                ok: false,
            });
            continue;
        };
        if c.ops != b.ops {
            lines.push(GateLine {
                name: c.name.clone(),
                message: format!(
                    "ops changed {} -> {} — harness scale moved, re-record the baseline",
                    b.ops, c.ops
                ),
                ok: false,
            });
            continue;
        }
        if c.sim_cycles != b.sim_cycles {
            lines.push(GateLine {
                name: c.name.clone(),
                message: format!(
                    "sim_cycles changed {} -> {} — simulated timeline moved; if the timing \
                     change is intentional, re-record the baseline with --update",
                    b.sim_cycles, c.sim_cycles
                ),
                ok: false,
            });
            continue;
        }
        let base_tput = b.sim_cycles_per_host_sec();
        let cur_tput = c.sim_cycles_per_host_sec();
        let floor = base_tput * (1.0 - gate_pct / 100.0);
        let ratio = if base_tput > 0.0 { cur_tput / base_tput } else { 0.0 };
        lines.push(GateLine {
            name: c.name.clone(),
            message: format!(
                "{:.2}x of baseline '{label}' ({:.3e} vs {:.3e} sim cycles/host sec, floor {:.0}%)",
                ratio,
                cur_tput,
                base_tput,
                100.0 - gate_pct
            ),
            ok: cur_tput >= floor,
        });
    }
    Ok(lines)
}

/// Formats measured results as a [`crate::Table`] for terminal output.
pub fn table(results: &[CaseResult]) -> crate::Table {
    let mut t = crate::Table::new(
        "Simulator throughput (simspeed)",
        &["case", "ops", "sim cycles", "host ms", "Msim-cyc/s", "ns/op"],
    );
    for r in results {
        t.row(&[
            r.name.clone(),
            r.ops.to_string(),
            r.sim_cycles.to_string(),
            format!("{:.1}", r.host_ns as f64 / 1e6),
            format!("{:.1}", r.sim_cycles_per_host_sec() / 1e6),
            format!("{:.0}", r.host_ns_per_op()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &str, sim_cycles: u64, host_ns: u64) -> CaseResult {
        CaseResult { name: name.to_owned(), ops: 100, sim_cycles, host_ns }
    }

    #[test]
    fn schema_roundtrip_every_field_parses_back() {
        let results =
            vec![fake("micro-random/fault-off", 123_456_789_012, 42_000_000), fake("b", 7, 9)];
        let doc = append_entry(None, "seed", &results).unwrap();
        let text = doc.render();
        assert!(!text.contains("NaN") && !text.contains("inf"), "no NaN/Inf: {text}");
        let back = Json::parse(&text).expect("artifact parses");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            back.get("gate_regression_pct").and_then(Json::as_f64),
            Some(GATE_REGRESSION_PCT)
        );
        let (label, decoded) = latest_entry(&back).unwrap();
        assert_eq!(label, "seed");
        assert_eq!(decoded, results);
        // Derived ratios serialize finite and reparse.
        let case0 = back.get("trajectory").unwrap().as_arr().unwrap()[0]
            .get("cases")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .clone();
        let tput = case0.get("sim_cycles_per_host_sec").unwrap().as_f64().unwrap();
        assert!((tput - results[0].sim_cycles_per_host_sec()).abs() < 1e-6);
        assert!(case0.get("host_ns_per_op").unwrap().as_f64().unwrap().is_finite());
    }

    #[test]
    fn zero_host_time_yields_zero_not_nan() {
        let r = fake("z", 100, 0);
        assert_eq!(r.sim_cycles_per_host_sec(), 0.0);
        let r2 = CaseResult { ops: 0, ..fake("z", 0, 0) };
        assert_eq!(r2.host_ns_per_op(), 0.0);
    }

    #[test]
    fn append_extends_trajectory() {
        let doc = append_entry(None, "first", &[fake("a", 10, 10)]).unwrap();
        let doc = append_entry(Some(&doc), "second", &[fake("a", 10, 5)]).unwrap();
        let trajectory = doc.get("trajectory").unwrap().as_arr().unwrap();
        assert_eq!(trajectory.len(), 2);
        let (label, results) = latest_entry(&doc).unwrap();
        assert_eq!(label, "second");
        assert_eq!(results[0].host_ns, 5);
    }

    #[test]
    fn append_rejects_malformed_artifact() {
        let bogus = Json::Obj(vec![("schema".into(), Json::Str("other/v9".into()))]);
        assert!(append_entry(Some(&bogus), "x", &[]).is_err());
        assert!(latest_entry(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn gate_passes_identical_measurements() {
        let results = vec![fake("a", 1000, 1000)];
        let doc = append_entry(None, "base", &results).unwrap();
        let lines = check_against(&doc, &results, GATE_REGRESSION_PCT).unwrap();
        assert!(lines.iter().all(|l| l.ok), "{lines:?}");
    }

    #[test]
    fn gate_fails_on_throughput_regression_beyond_pct() {
        let base = vec![fake("a", 1000, 1000)];
        let doc = append_entry(None, "base", &base).unwrap();
        // 30% slower host time -> ~23% throughput drop -> fails a 15% gate.
        let slow = vec![fake("a", 1000, 1300)];
        let lines = check_against(&doc, &slow, GATE_REGRESSION_PCT).unwrap();
        assert!(lines.iter().any(|l| !l.ok), "{lines:?}");
        // ...but passes a 50% gate.
        let lines = check_against(&doc, &slow, 50.0).unwrap();
        assert!(lines.iter().all(|l| l.ok), "{lines:?}");
    }

    #[test]
    fn gate_fails_on_sim_cycle_drift() {
        let doc = append_entry(None, "base", &[fake("a", 1000, 1000)]).unwrap();
        let drifted = vec![fake("a", 1001, 900)];
        let lines = check_against(&doc, &drifted, GATE_REGRESSION_PCT).unwrap();
        assert!(
            lines.iter().any(|l| !l.ok && l.message.contains("sim_cycles")),
            "{lines:?}"
        );
    }

    #[test]
    fn gate_fails_on_missing_or_extra_cases() {
        let doc = append_entry(None, "base", &[fake("a", 1, 1), fake("b", 1, 1)]).unwrap();
        let lines = check_against(&doc, &[fake("a", 1, 1)], GATE_REGRESSION_PCT).unwrap();
        assert!(lines.iter().any(|l| !l.ok && l.name == "b"), "{lines:?}");
        let lines =
            check_against(&doc, &[fake("a", 1, 1), fake("b", 1, 1), fake("c", 1, 1)], 15.0)
                .unwrap();
        assert!(lines.iter().any(|l| !l.ok && l.name == "c"), "{lines:?}");
    }

    #[test]
    fn gate_fails_on_ops_change() {
        let doc = append_entry(None, "base", &[fake("a", 1000, 1000)]).unwrap();
        let rescaled = vec![CaseResult { ops: 200, ..fake("a", 1000, 1000) }];
        let lines = check_against(&doc, &rescaled, GATE_REGRESSION_PCT).unwrap();
        assert!(lines.iter().any(|l| !l.ok && l.message.contains("ops")), "{lines:?}");
    }

    #[test]
    fn small_cases_measure_deterministically() {
        // A miniature end-to-end run: all seven cases execute, produce
        // nonzero simulated time, and the cycle totals are repeatable.
        let cases = cases_scaled(400, 100);
        assert_eq!(cases.len(), 7);
        let mut by_name = std::collections::HashMap::new();
        for case in &cases {
            let a = measure(case, 2);
            let b = measure(case, 1);
            assert_eq!(a.sim_cycles, b.sim_cycles, "{} is nondeterministic", case.name);
            assert!(a.sim_cycles > 0, "{} advanced no simulated time", case.name);
            assert_eq!(a.ops, case.events.len() as u64);
            by_name.insert(case.name, a.sim_cycles);
        }
        // The graceful-degradation twin: on a clean run an armed health
        // monitor pays only the per-checkpoint rung persist (the health
        // word sealed next to the commit record), a sliver of the total.
        // Health *off* stays bit-identical to pre-ladder behavior — that
        // side is pinned by the unchanged committed baseline entries.
        let (on, off) = (by_name["micro-random/health-on"], by_name["micro-random/fault-off"]);
        assert!(on >= off, "arming the monitor cannot make a clean run faster");
        assert!(
            (on - off) * 100 < off,
            "health-on overhead on a clean run must stay under 1% ({on} vs {off})"
        );
        // The persist-buffer twin: the serialized checkpoint timeline
        // retires every entry before each §4.4 fence fires, so arming the
        // WPQ costs fence bookkeeping, not stall cycles. Off stays
        // bit-identical to pre-buffer behavior — pinned by the unchanged
        // committed baseline entries.
        let wpq_on = by_name["micro-random/wpq-on"];
        assert!(wpq_on >= off, "arming the buffer cannot make a clean run faster");
        assert!(
            (wpq_on - off) * 100 < off,
            "wpq-on overhead on a clean run must stay under 1% ({wpq_on} vs {off})"
        );
    }

    #[test]
    fn fault_on_cases_really_arm_the_models() {
        let cases = cases_scaled(16, 4);
        assert!(cases.iter().any(|c| c.cfg.media.enabled && c.cfg.dram_fault.enabled));
        assert!(cases.iter().any(|c| !c.cfg.media.enabled && !c.cfg.dram_fault.enabled));
        assert!(cases.iter().any(|c| c.cfg.security.enabled), "secure case present");
        assert!(cases.iter().any(|c| c.cfg.wpq.enabled), "wpq case present");
        for case in cases {
            case.cfg.validate().expect("every simspeed config validates");
        }
    }

    #[test]
    fn table_has_one_row_per_case() {
        let t = table(&[fake("a", 1, 1), fake("b", 2, 2)]);
        assert_eq!(t.len(), 2);
    }
}
